"""Quickstart: jointly tune layouts and loops for one convolution.

Runs in under a minute::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    Tensor,
    conv2d,
    get_machine,
    lower_compute,
    run_compute,
    tune_alt,
    tune_ansor_like,
)
from repro.exec.reference import conv2d_ref


def main():
    # A 2-D convolution workload: 64 -> 64 channels, 56x56 output, 3x3.
    inp = Tensor("inp", (1, 64, 58, 58), role="input")
    ker = Tensor("ker", (64, 64, 3, 3), role="const")
    op = conv2d(inp, ker, stride=1, name="conv")

    machine = get_machine("intel_cpu")
    print(f"machine: {machine.name} ({machine.cores} cores, "
          f"{machine.vector_lanes}-wide SIMD)")

    # ALT: joint layout+loop tuning (30% of the budget explores layouts).
    print("\njoint tuning (ALT)...")
    alt = tune_alt(op, machine, budget=200, seed=0)
    print(f"  best latency: {alt.best_latency * 1e3:.4f} ms "
          f"({alt.measurements} simulated measurements)")
    for name, layout in sorted(alt.best_layouts.items()):
        print(f"  {name:10s} -> {layout}")

    # Ansor-like baseline: loop tuning on a predetermined packed layout.
    print("\nloop-only baseline (Ansor-like, fixed NCHWc layout)...")
    ansor = tune_ansor_like(op, machine, budget=200, seed=0)
    print(f"  best latency: {ansor.best_latency * 1e3:.4f} ms")
    print(f"\nALT speedup over the fixed-layout baseline: "
          f"{ansor.best_latency / alt.best_latency:.2f}x")

    # The tuned program still computes the right answer: execute the lowered
    # loop nest on a scaled-down copy of the workload and compare with numpy.
    small_inp = Tensor("inp", (1, 8, 14, 14), role="input")
    small_ker = Tensor("ker", (8, 8, 3, 3), role="const")
    small_op = conv2d(small_inp, small_ker, stride=1, name="conv")
    small = tune_alt(small_op, machine, budget=48, seed=0)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(small_inp.shape)
    k = rng.standard_normal(small_ker.shape)
    got = run_compute(small_op, {"inp": x, "ker": k},
                      small.best_layouts, small.best_schedule)
    assert np.allclose(got, conv2d_ref(x, k, 1))
    print("\ncorrectness check on the lowered program: OK")

    stage = lower_compute(small_op, small.best_layouts, small.best_schedule)
    print("\ntuned loop nest (scaled copy):")
    print(stage.pretty())


if __name__ == "__main__":
    main()
