"""End-to-end compilation of a (scaled) ResNet-18: ALT vs baselines.

Tunes every convolution class, propagates layouts across the graph, fuses
elementwise consumers, lowers to loop nests and prices the program on the
simulated Intel CPU.  A tiny variant is also executed numerically against
the reference to prove the compiled model is still the same function.

    python examples/end_to_end_resnet.py
"""

import numpy as np

from repro import CompileOptions, compile_graph, get_machine
from repro.exec.graph_runner import random_inputs, run_compiled, run_graph_reference
from repro.graph.models import resnet18


def main():
    machine = get_machine("intel_cpu")

    print("compiling scaled ResNet-18 (64x64 input, width 32)...")
    lat = {}
    for mode in ("vendor", "ansor", "alt-ol", "alt-wp", "alt"):
        graph = resnet18(batch=1, image=64, width=32, num_classes=100)
        model = compile_graph(
            graph, machine, CompileOptions(mode=mode, total_budget=500, seed=0)
        )
        lat[mode] = model.latency_s
        print(f"  {mode:8s} {model.latency_s * 1e3:9.4f} ms   "
              f"(fused stages: {len(model.fuse_groups)}, "
              f"conversions: {model.n_conversions}, "
              f"tuning tasks: {len(model.task_results)})")
    print(f"\nALT vs Ansor-like: {lat['ansor'] / lat['alt']:.2f}x")
    print(f"ALT vs loop-only ablation (ALT-OL): {lat['alt-ol'] / lat['alt']:.2f}x")

    print("\nnumeric check on a tiny ResNet variant...")
    tiny = resnet18(batch=1, image=32, width=4, num_classes=10)
    model = compile_graph(
        tiny, get_machine("intel_cpu"),
        CompileOptions(mode="alt", total_budget=120, seed=0),
    )
    inputs = random_inputs(model.graph, seed=1)
    ref = run_graph_reference(model.graph, inputs)
    got = run_compiled(model, inputs)
    out_name = model.graph.graph_outputs()[0].name
    assert np.allclose(got[out_name], ref[out_name], atol=1e-8)
    print("compiled model output matches the reference: OK")

    print("\nper-tensor layouts the joint tuner chose (first few):")
    shown = 0
    for name, layout in model.layouts.items():
        if not layout.is_identity:
            print(f"  {name:24s} {layout}")
            shown += 1
            if shown >= 8:
                break


if __name__ == "__main__":
    main()
