"""A tour of the layout transformation module (paper Section 4).

Replays the paper's own examples:

1. packing ``NOHW`` into ``N O/ot H W ot`` with split+reorder (Sec. 4.1.1);
2. the fuse/split/reorder chain that packs ``NHWO`` into spatial blocks,
   including the transformed accessing expressions;
3. the overlapped-tiling input layout of Fig. 2 via ``unfold`` -- with the
   generated program of Fig. 3 executed and checked against numpy.

    python examples/layout_transform_tour.py
"""

import numpy as np

from repro import Layout, Tensor, Var, conv2d, lower_compute, run_compute
from repro.exec.reference import conv2d_ref
from repro.layout.primitives import RewriteContext


def example_1_packing():
    print("=" * 70)
    print("1. NOHW -> N O/ot H W ot  (split + reorder)")
    N, O, H, W, ot = 1, 32, 8, 8, 8
    lay = Layout((N, O, H, W), ["N", "O", "H", "W"])
    packed = lay.split("O", [O // ot, ot]).reorder(["N", "O.0", "H", "W", "O.1"])
    print(f"   physical shape: {packed.physical_shape()}")
    exprs = packed.rewrite_access([Var("n"), Var("o"), Var("h"), Var("w")])
    print("   access T[n][o][h][w] becomes "
          f"T[{']['.join(str(e) for e in exprs)}]")


def example_2_spatial_blocks():
    print("=" * 70)
    print("2. NHWO -> N (O/4) (H*W) 4  (fuse + split + reorder, Sec. 4.1.1)")
    N, H, W, O = 1, 4, 6, 8
    lay = (
        Layout((N, H, W, O), ["N", "H", "W", "O"])
        .fuse(["H", "W", "O"])
        .split(1, [O // 4, 4, H * W])
        .reorder([0, 1, 3, 2])
    )
    print(f"   physical shape: {lay.physical_shape()}")
    exprs = lay.rewrite_access([Var("n"), Var("h"), Var("w"), Var("o")])
    for step, e in zip(["dim1", "dim2", "dim3"], exprs[1:]):
        print(f"   {step}: {e}")
    # data round-trips exactly
    arr = np.arange(N * H * W * O, dtype=float).reshape(N, H, W, O)
    assert np.array_equal(lay.unmaterialize(lay.materialize(arr)), arr)
    print("   materialize/unmaterialize round trip: OK")


def example_3_overlapped_tiling():
    print("=" * 70)
    print("3. Fig. 2: overlapped input tiling via unfold, executed (Fig. 3)")
    # C2D with stride 1; output spatial dims tiled in 2x2 blocks.
    inp = Tensor("Inp", (1, 4, 10, 10), role="input")
    ker = Tensor("Ker", (8, 4, 3, 3), role="const")
    comp = conv2d(inp, ker, stride=1, name="conv")
    OH = 8
    ht = wt = OH // 2
    KH = KW = 3
    out_lay = (
        Layout((1, 8, OH, OH), ["N", "O", "H", "W"])
        .split("H", [2, ht]).split("W", [2, wt]).split("O", [2, 4])
        .reorder(["N", "H.0", "W.0", "O.0", "H.1", "W.1", "O.1"])
    )
    in_lay = (
        Layout((1, 4, 10, 10), ["N", "I", "H", "W"])
        .unfold("H", ht + KH - 1, ht)
        .unfold("W", wt + KW - 1, wt)
        .reorder(["N", "H.t", "W.t", "I", "H.b", "W.b"])
    )
    ker_lay = (
        Layout((8, 4, 3, 3), ["O", "I", "KH", "KW"])
        .split("O", [2, 4]).reorder(["O.0", "I", "KH", "KW", "O.1"])
    )
    layouts = {"conv.out": out_lay, "Inp": in_lay, "Ker": ker_lay}
    print(f"   input physical shape (with overlap): {in_lay.physical_shape()}"
          f" ({in_lay.expansion_ratio():.2f}x data)")
    stage = lower_compute(comp, layouts)
    print("   generated loop nest:")
    for line in stage.pretty().splitlines():
        print("     " + line)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(inp.shape)
    k = rng.standard_normal(ker.shape)
    got = run_compute(comp, {"Inp": x, "Ker": k}, layouts)
    assert np.allclose(got, conv2d_ref(x, k, 1))
    print("   execution matches numpy reference: OK")


if __name__ == "__main__":
    example_1_packing()
    example_2_spatial_blocks()
    example_3_overlapped_tiling()
