"""Compile a BERT-tiny encoder: GMM-heavy workload with layout tuning.

The transformer's dense layers and batched attention GMMs are the paper's
``GMM`` workloads; the joint tuner picks ``M/mt N/nt mt nt``-style tiled
layouts per shape (the ``NKn`` family of Fig. 1c/1d) instead of a fixed
``KN``.

    python examples/bert_attention.py
"""

import numpy as np

from repro import CompileOptions, compile_graph, get_machine
from repro.exec.graph_runner import random_inputs, run_compiled, run_graph_reference
from repro.graph.models import bert


def main():
    machine = get_machine("intel_cpu")
    print("compiling BERT-tiny (2 layers, hidden 128, seq 32)...")
    lat = {}
    for mode in ("vendor", "ansor", "alt"):
        graph = bert(batch=1, seq=32, hidden=128, layers=2, heads=2, ff=256,
                     name="bert_tiny")
        model = compile_graph(
            graph, machine, CompileOptions(mode=mode, total_budget=400, seed=0)
        )
        lat[mode] = model.latency_s
        print(f"  {mode:8s} {model.latency_s * 1e3:9.4f} ms "
              f"({len(model.task_results)} unique GMM tasks)")
    print(f"\nALT vs Ansor-like: {lat['ansor'] / lat['alt']:.2f}x")

    print("\nnumeric check on a 1-layer micro-BERT...")
    micro = bert(batch=1, seq=4, hidden=8, layers=1, heads=2, ff=16,
                 name="bert_micro")
    model = compile_graph(
        micro, machine, CompileOptions(mode="alt", total_budget=80, seed=0)
    )
    inputs = random_inputs(model.graph, seed=2)
    ref = run_graph_reference(model.graph, inputs)
    got = run_compiled(model, inputs)
    out = model.graph.graph_outputs()[0].name
    assert np.allclose(got[out], ref[out], atol=1e-7)
    print("compiled encoder matches the reference: OK")


if __name__ == "__main__":
    main()
