#!/bin/bash
# Regenerates every paper table/figure; appends to bench_output.txt per file
# so partial runs still record results.
OUT=/root/repo/bench_output.txt
: > $OUT
FAILED=0
for f in test_table2_prefetch test_motivating_example test_fig13_sensitivity \
         test_fig12_propagation test_fig11_search_methods test_fig1_layout_sensitivity \
         test_fig9_single_op test_ablation_design test_table3_layout_profile \
         test_fig10_end_to_end; do
  echo "=== benchmarks/$f.py ===" >> $OUT
  if python -m pytest benchmarks/$f.py --benchmark-only -q -s >> $OUT 2>&1; then
    echo "PASS benchmarks/$f.py"
  else
    echo "FAIL benchmarks/$f.py (see $OUT)"
    FAILED=1
  fi
done
# Re-author the tuner throughput baseline (candidates/sec + per-phase
# attribution on the pinned CI gate workloads); commit the refreshed
# BENCH_tuner_throughput.json when the machine is representative.
echo "=== tuner throughput (BENCH_tuner_throughput.json) ===" >> $OUT
if PYTHONPATH=/root/repo/src python -m repro profile gate --repeats 3 \
    --out /root/repo/BENCH_tuner_throughput.json >> $OUT 2>&1; then
  echo "PASS tuner throughput bench"
else
  echo "FAIL tuner throughput bench (see $OUT)"
  FAILED=1
fi
echo "ALL BENCH FILES DONE" >> $OUT
exit $FAILED
