#!/bin/bash
# Regenerates every paper table/figure; appends to bench_output.txt per file
# so partial runs still record results.
OUT=/root/repo/bench_output.txt
: > $OUT
FAILED=0
for f in test_table2_prefetch test_motivating_example test_fig13_sensitivity \
         test_fig12_propagation test_fig11_search_methods test_fig1_layout_sensitivity \
         test_fig9_single_op test_ablation_design test_table3_layout_profile \
         test_fig10_end_to_end; do
  echo "=== benchmarks/$f.py ===" >> $OUT
  if python -m pytest benchmarks/$f.py --benchmark-only -q -s >> $OUT 2>&1; then
    echo "PASS benchmarks/$f.py"
  else
    echo "FAIL benchmarks/$f.py (see $OUT)"
    FAILED=1
  fi
done
echo "ALL BENCH FILES DONE" >> $OUT
exit $FAILED
