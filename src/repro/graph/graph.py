"""Computational graph: operators as nodes, tensors as edges.

Kept deliberately close to the paper's model (Section 2): a directed acyclic
graph whose nodes are :class:`~repro.ir.compute.ComputeDef` operators and
whose edges are :class:`~repro.ir.tensor.Tensor` objects.  Layouts are edge
attributes managed outside the graph (``repro.layout``); the graph itself
only provides structure, topological order and rewiring support for
conversion-operator insertion.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..ir.compute import Access, ComputeDef
from ..ir.tensor import Tensor


class GraphError(ValueError):
    pass


class Graph:
    """A DAG of compute definitions in topological (insertion) order."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: List[ComputeDef] = []
        self.tensors: Dict[str, Tensor] = {}
        self._producer: Dict[str, str] = {}  # tensor -> node name
        self._node_by_name: Dict[str, ComputeDef] = {}

    # -- construction -------------------------------------------------------------
    def add_tensor(self, tensor: Tensor) -> Tensor:
        existing = self.tensors.get(tensor.name)
        if existing is not None and existing is not tensor:
            raise GraphError(f"duplicate tensor name {tensor.name!r}")
        self.tensors[tensor.name] = tensor
        return tensor

    def add(self, comp: ComputeDef) -> ComputeDef:
        if comp.name in self._node_by_name:
            raise GraphError(f"duplicate node name {comp.name!r}")
        for t in comp.inputs:
            if t.name not in self.tensors:
                self.add_tensor(t)
        if comp.output.name in self._producer:
            raise GraphError(f"tensor {comp.output.name!r} already produced")
        self.add_tensor(comp.output)
        self.nodes.append(comp)
        self._node_by_name[comp.name] = comp
        self._producer[comp.output.name] = comp.name
        return comp

    def add_all(self, comps: Iterable[ComputeDef]) -> None:
        for c in comps:
            self.add(c)

    # -- queries ---------------------------------------------------------------------
    def node(self, name: str) -> ComputeDef:
        try:
            return self._node_by_name[name]
        except KeyError:
            raise KeyError(f"no node {name!r}") from None

    def producer_of(self, tensor_name: str) -> Optional[ComputeDef]:
        node = self._producer.get(tensor_name)
        return self._node_by_name[node] if node else None

    def consumers_of(self, tensor_name: str) -> List[ComputeDef]:
        return [
            n for n in self.nodes if any(t.name == tensor_name for t in n.inputs)
        ]

    def graph_inputs(self) -> List[Tensor]:
        """Tensors consumed but never produced, excluding constants."""
        return [
            t
            for name, t in self.tensors.items()
            if name not in self._producer and t.role in ("input", "intermediate")
            and self.consumers_of(name)
        ]

    def constants(self) -> List[Tensor]:
        return [
            t
            for name, t in self.tensors.items()
            if name not in self._producer and t.role == "const"
        ]

    def graph_outputs(self) -> List[Tensor]:
        """Produced tensors with no consumer."""
        return [
            self.tensors[name]
            for name in self._producer
            if not self.consumers_of(name)
        ]

    def complex_nodes(self) -> List[ComputeDef]:
        return [n for n in self.nodes if n.is_complex]

    # -- rewiring (conversion-operator insertion) ---------------------------------
    def insert_before(
        self, comp: ComputeDef, consumer: ComputeDef, replaced_tensor: str
    ) -> None:
        """Insert ``comp`` (producing a fresh tensor) so that ``consumer``
        reads ``comp.output`` where it used to read ``replaced_tensor``."""
        if replaced_tensor not in {t.name for t in consumer.inputs}:
            raise GraphError(
                f"{consumer.name} does not read {replaced_tensor!r}"
            )
        pos = self.nodes.index(consumer)
        # register new node
        if comp.name in self._node_by_name:
            raise GraphError(f"duplicate node name {comp.name!r}")
        for t in comp.inputs:
            if t.name not in self.tensors:
                self.add_tensor(t)
        self.add_tensor(comp.output)
        self.nodes.insert(pos, comp)
        self._node_by_name[comp.name] = comp
        self._producer[comp.output.name] = comp.name

        new_tensor = comp.output

        def rewire(acc: Access):
            if acc.tensor.name == replaced_tensor:
                return Access(new_tensor, acc.indices)
            return acc

        consumer.body = consumer.body.map_accesses(rewire)

    def validate(self) -> None:
        seen: Set[str] = set()
        for node in self.nodes:
            for t in node.inputs:
                if t.name in self._producer and t.name not in seen:
                    raise GraphError(
                        f"{node.name} reads {t.name} before it is produced"
                    )
            node.validate()
            seen.add(node.output.name)

    def flops(self) -> int:
        return sum(n.flops() for n in self.nodes)

    def __repr__(self) -> str:
        return f"Graph({self.name!r}, {len(self.nodes)} nodes)"

    def summary(self) -> str:
        lines = [f"graph {self.name}:"]
        for n in self.nodes:
            ins = ", ".join(t.name for t in n.inputs)
            tag = "*" if n.is_complex else " "
            lines.append(f" {tag} {n.name}({ins}) -> {n.output}")
        return "\n".join(lines)
