"""MobileNet-V2 (Sandler et al., CVPR 2018) -- the paper's MV2 workload.

Inverted residual bottlenecks exercise depthwise convolution (DEP) and
1x1 convolutions, the memory-bound operators where the paper reports ALT's
largest wins.
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..graph import Graph

#: (expansion t, output channels c, repeats n, first stride s)
_SETTINGS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _make_divisible(v: float, divisor: int = 8) -> int:
    out = max(divisor, int(v + divisor / 2) // divisor * divisor)
    if out < 0.9 * v:
        out += divisor
    return out


def _inverted_residual(b: GraphBuilder, x, out_ch: int, stride: int, expand: int):
    in_ch = x.shape[1]
    hidden = in_ch * expand
    identity = x
    out = x
    if expand != 1:
        out = b.conv_bn_act(out, hidden, 1, act="relu6")
    out = b.depthwise_conv2d(out, 3, stride=stride)
    out = b.batch_norm(out)
    out = b.activate(out, "relu6")
    out = b.conv2d(out, out_ch, 1)
    out = b.batch_norm(out)
    if stride == 1 and in_ch == out_ch:
        out = b.add(out, identity)
    return out


def mobilenet_v2(
    batch: int = 1,
    image: int = 224,
    width_mult: float = 1.0,
    num_classes: int = 1000,
    name: str = "mobilenet_v2",
) -> Graph:
    """Build the MobileNet-V2 inference graph."""
    if image % 32:
        raise ValueError("image size must be divisible by 32")
    b = GraphBuilder(name)
    x = b.input((batch, 3, image, image))
    first = _make_divisible(32 * width_mult)
    x = b.conv_bn_act(x, first, 3, stride=2, act="relu6")
    for t, c, n, s in _SETTINGS:
        out_ch = _make_divisible(c * width_mult)
        for i in range(n):
            x = _inverted_residual(b, x, out_ch, s if i == 0 else 1, t)
    last = _make_divisible(1280 * max(1.0, width_mult))
    x = b.conv_bn_act(x, last, 1, act="relu6")
    x = b.global_avg_pool(x)
    x = b.dense(x, num_classes)
    return b.build()
