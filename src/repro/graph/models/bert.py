"""BERT encoder stack (Devlin et al.) -- the paper's BB/BT workloads.

The embedding lookup is outside the compiled region (as in the paper's
setting, where the compiler sees the ``N x 128`` encoded input); the graph
covers the transformer layers: QKV projections, scaled dot-product
attention (batched GMM + softmax), output projection, layer norms and the
feed-forward block.  Dense layers dominate -- these are the GMM workloads
layout tuning targets.
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..graph import Graph


def _encoder_layer(b: GraphBuilder, x, hidden: int, heads: int, ff: int, seq: int):
    dh = hidden // heads
    q = b.dense(x, hidden)
    k = b.dense(x, hidden)
    v = b.dense(x, hidden)
    qh = b.reshape_heads(q, heads, seq)
    kh = b.reshape_heads(k, heads, seq)
    vh = b.reshape_heads(v, heads, seq)
    scores = b.batch_gemm(qh, b.transpose_last(kh))       # [N*h, L, L]
    scores = b.scale(scores, dh ** -0.5)
    probs = b.softmax_last(scores)
    context = b.batch_gemm(probs, vh)                     # [N*h, L, dh]
    merged = b.merge_heads(context, heads, seq)           # [N*L, H]
    attn_out = b.dense(merged, hidden)
    x = b.layer_norm(b.add(x, attn_out))
    ffn = b.dense(x, ff, act="gelu")
    ffn = b.dense(ffn, hidden)
    return b.layer_norm(b.add(x, ffn))


def bert(
    batch: int = 1,
    seq: int = 128,
    hidden: int = 768,
    layers: int = 12,
    heads: int = 12,
    ff: int = 3072,
    name: str = "bert",
) -> Graph:
    """Generic BERT encoder; see :func:`bert_base` / :func:`bert_tiny`."""
    if hidden % heads:
        raise ValueError("hidden size must divide by head count")
    b = GraphBuilder(name)
    x = b.input((batch * seq, hidden))
    for _ in range(layers):
        x = _encoder_layer(b, x, hidden, heads, ff, seq)
    return b.build()


def bert_base(batch: int = 1, seq: int = 128) -> Graph:
    """BERT-base (BB): 12 layers, hidden 768, 12 heads, FF 3072."""
    return bert(batch, seq, 768, 12, 12, 3072, name="bert_base")


def bert_tiny(batch: int = 1, seq: int = 128) -> Graph:
    """BERT-tiny (BT): 2 layers, hidden 128, 2 heads, FF 512."""
    return bert(batch, seq, 128, 2, 2, 512, name="bert_tiny")
