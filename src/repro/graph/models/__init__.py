"""Model zoo: the paper's end-to-end workloads (Section 7.2)."""

from .bert import bert, bert_base, bert_tiny
from .mobilenet_v2 import mobilenet_v2
from .resnet18 import resnet18
from .resnet3d import resnet3d18

__all__ = ["bert", "bert_base", "bert_tiny", "mobilenet_v2", "resnet18", "resnet3d18"]
