"""ResNet-18 (He et al., CVPR 2016) -- the paper's R18 workload.

``width`` and ``image`` let tests build scaled-down variants with the same
topology; defaults match the paper's input (``N x 3 x 224 x 224``).
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..graph import Graph


def _basic_block(b: GraphBuilder, x, channels: int, stride: int):
    identity = x
    out = b.conv_bn_act(x, channels, 3, stride=stride)
    out = b.conv2d(out, channels, 3, stride=1)
    out = b.batch_norm(out)
    if stride != 1 or identity.shape[1] != channels:
        identity = b.conv2d(identity, channels, 1, stride=stride, pad=0)
        identity = b.batch_norm(identity)
    out = b.add(out, identity)
    return b.relu(out)


def resnet18(
    batch: int = 1,
    image: int = 224,
    width: int = 64,
    num_classes: int = 1000,
    name: str = "resnet18",
) -> Graph:
    """Build the ResNet-18 inference graph."""
    if image % 32:
        raise ValueError("image size must be divisible by 32")
    b = GraphBuilder(name)
    x = b.input((batch, 3, image, image))
    x = b.conv_bn_act(x, width, 7, stride=2)
    x = b.max_pool2d(x, 3, 2, pad=1)
    for i, (channels, blocks, stride) in enumerate(
        [(width, 2, 1), (width * 2, 2, 2), (width * 4, 2, 2), (width * 8, 2, 2)]
    ):
        for j in range(blocks):
            x = _basic_block(b, x, channels, stride if j == 0 else 1)
    x = b.global_avg_pool(x)
    x = b.dense(x, num_classes)
    return b.build()
