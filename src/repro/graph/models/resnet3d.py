"""ResNet3D-18 (Hara et al., ICCV workshops 2017) -- the paper's R3D workload.

3-D convolutions over video clips (``N x 3 x 16 x 112 x 112`` in the paper);
the C3D layers exercise the 5-D layout templates.
"""

from __future__ import annotations

from ..builder import GraphBuilder
from ..graph import Graph
from ...ops import pool as pool_ops
from ...ir.compute import Access, Axis, ComputeDef, ConstF
from ...ir.expr import Var
from ...ir.tensor import Tensor


def _gap3d(b: GraphBuilder, x):
    """Global average pool over (D, H, W)."""
    n, c, d, h, w = x.shape
    out = Tensor(b._name("gap3d") + ".out", (n, c))
    vn, vc = Var("n"), Var("c")
    rd, rh, rw = Var("rd"), Var("rh"), Var("rw")
    comp = ComputeDef(
        name=b._name("gap3d"),
        output=out,
        axes=[Axis("n", n), Axis("c", c)],
        reduce_axes=[Axis("rd", d), Axis("rh", h), Axis("rw", w)],
        body=Access(x, [vn, vc, rd, rh, rw]) * ConstF(1.0 / (d * h * w)),
        reduce_op="sum",
        tags=("pool", "reduce"),
    )
    return b._emit(comp)


def _basic_block3d(b: GraphBuilder, x, channels: int, stride: int):
    identity = x
    out = b.conv3d(x, channels, 3, stride=stride)
    out = b.batch_norm(out)
    out = b.relu(out)
    out = b.conv3d(out, channels, 3, stride=1)
    out = b.batch_norm(out)
    if stride != 1 or identity.shape[1] != channels:
        identity = b.conv3d(identity, channels, 1, stride=stride, pad=0)
        identity = b.batch_norm(identity)
    out = b.add(out, identity)
    return b.relu(out)


def resnet3d18(
    batch: int = 1,
    frames: int = 16,
    image: int = 112,
    width: int = 64,
    num_classes: int = 400,
    name: str = "resnet3d18",
) -> Graph:
    """Build the ResNet3D-18 inference graph."""
    b = GraphBuilder(name)
    x = b.input((batch, 3, frames, image, image))
    x = b.conv3d(x, width, 3, stride=2)
    x = b.batch_norm(x)
    x = b.relu(x)
    for channels, blocks, stride in [
        (width, 2, 1), (width * 2, 2, 2), (width * 4, 2, 2), (width * 8, 2, 2),
    ]:
        for j in range(blocks):
            x = _basic_block3d(b, x, channels, stride if j == 0 else 1)
    x = _gap3d(b, x)
    x = b.dense(x, num_classes)
    return b.build()
