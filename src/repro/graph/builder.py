"""Fluent graph construction for model definitions.

Wraps :class:`~repro.graph.graph.Graph` with layer-level helpers that take
care of tensor naming, explicit padding operators (padding is a first-class
node so layout propagation can absorb conversions into it), inference-time
batch-norm folding (``scale_shift``) and activation insertion.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..ir.compute import ComputeDef
from ..ir.tensor import Tensor
from ..ops import conv as conv_ops
from ..ops import elementwise as ew
from ..ops import gemm as gemm_ops
from ..ops import pool as pool_ops
from ..ops import reduce as reduce_ops
from ..ops import transform as tf_ops
from .graph import Graph


class GraphBuilder:
    """Builds a :class:`Graph` layer by layer."""

    def __init__(self, name: str):
        self.graph = Graph(name)
        self._counter = itertools.count()

    def _name(self, base: str) -> str:
        return f"{base}_{next(self._counter)}"

    # -- graph I/O -----------------------------------------------------------------
    def input(self, shape: Sequence[int], name: str = "input") -> Tensor:
        t = Tensor(name, shape, role="input")
        self.graph.add_tensor(t)
        return t

    def const(self, base: str, shape: Sequence[int]) -> Tensor:
        t = Tensor(self._name(base), shape, role="const")
        self.graph.add_tensor(t)
        return t

    def _emit(self, comp: ComputeDef) -> Tensor:
        self.graph.add(comp)
        return comp.output

    def build(self) -> Graph:
        self.graph.validate()
        return self.graph

    # -- convolution blocks -------------------------------------------------------
    def pad(self, x: Tensor, pad: Sequence[int]) -> Tensor:
        if all(p == 0 for p in pad):
            return x
        return self._emit(tf_ops.pad_spatial(x, pad, name=self._name("pad")))

    def conv2d(
        self,
        x: Tensor,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: Optional[int] = None,
        groups: int = 1,
        dilation: int = 1,
    ) -> Tensor:
        if pad is None:
            pad = ((kernel - 1) * dilation) // 2
        x = self.pad(x, (pad, pad))
        ker = self.const("w", (out_channels, x.shape[1] // groups, kernel, kernel))
        return self._emit(
            conv_ops.conv2d(
                x, ker, stride=stride, dilation=dilation, groups=groups,
                name=self._name("conv2d"),
            )
        )

    def depthwise_conv2d(
        self, x: Tensor, kernel: int, stride: int = 1, pad: Optional[int] = None,
        dilation: int = 1,
    ) -> Tensor:
        if pad is None:
            pad = ((kernel - 1) * dilation) // 2
        x = self.pad(x, (pad, pad))
        ker = self.const("dw", (x.shape[1], kernel, kernel))
        return self._emit(
            conv_ops.depthwise_conv2d(
                x, ker, stride=stride, dilation=dilation, name=self._name("dwconv")
            )
        )

    def conv1d(
        self, x: Tensor, out_channels: int, kernel: int, stride: int = 1,
        pad: Optional[int] = None, dilation: int = 1,
    ) -> Tensor:
        if pad is None:
            pad = ((kernel - 1) * dilation) // 2
        x = self.pad(x, (pad,))
        ker = self.const("w1", (out_channels, x.shape[1], kernel))
        return self._emit(
            conv_ops.conv1d(
                x, ker, stride=stride, dilation=dilation, name=self._name("conv1d")
            )
        )

    def conv3d(
        self, x: Tensor, out_channels: int, kernel: int, stride: int = 1,
        pad: Optional[int] = None,
    ) -> Tensor:
        if pad is None:
            pad = (kernel - 1) // 2
        x = self.pad(x, (pad, pad, pad))
        ker = self.const(
            "w3", (out_channels, x.shape[1], kernel, kernel, kernel)
        )
        return self._emit(
            conv_ops.conv3d(x, ker, stride=stride, name=self._name("conv3d"))
        )

    def batch_norm(self, x: Tensor) -> Tensor:
        scale = self.const("bn_s", (x.shape[1],))
        shift = self.const("bn_b", (x.shape[1],))
        return self._emit(
            ew.scale_shift(x, scale, shift, name=self._name("bn"))
        )

    def conv_bn_act(
        self,
        x: Tensor,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        groups: int = 1,
        act: Optional[str] = "relu",
        dilation: int = 1,
    ) -> Tensor:
        x = self.conv2d(x, out_channels, kernel, stride, groups=groups, dilation=dilation)
        x = self.batch_norm(x)
        return self.activate(x, act)

    def activate(self, x: Tensor, act: Optional[str]) -> Tensor:
        if act is None:
            return x
        fns = {
            "relu": ew.relu, "relu6": ew.relu6, "sigmoid": ew.sigmoid,
            "tanh": ew.tanh, "gelu": ew.gelu,
        }
        return self._emit(fns[act](x, name=self._name(act)))

    # -- elementwise / pooling ---------------------------------------------------------
    def add(self, a: Tensor, b: Tensor) -> Tensor:
        return self._emit(ew.add(a, b, name=self._name("add")))

    def relu(self, x: Tensor) -> Tensor:
        return self.activate(x, "relu")

    def bias_add(self, x: Tensor, channel_dim: str = "last") -> Tensor:
        if channel_dim == "last":
            bias = self.const("b", (x.shape[-1],))
            return self._emit(ew.bias_add_last(x, bias, name=self._name("bias")))
        bias = self.const("b", (x.shape[1],))
        return self._emit(ew.bias_add_channel(x, bias, name=self._name("bias")))

    def max_pool2d(self, x: Tensor, window: int, stride: int, pad: int = 0) -> Tensor:
        x = self.pad(x, (pad, pad))
        return self._emit(
            pool_ops.max_pool2d(x, window, stride, name=self._name("maxpool"))
        )

    def avg_pool2d(self, x: Tensor, window: int, stride: int, pad: int = 0) -> Tensor:
        x = self.pad(x, (pad, pad))
        return self._emit(
            pool_ops.avg_pool2d(x, window, stride, name=self._name("avgpool"))
        )

    def global_avg_pool(self, x: Tensor) -> Tensor:
        return self._emit(pool_ops.global_avg_pool(x, name=self._name("gap")))

    # -- dense / attention ----------------------------------------------------------------
    def dense(
        self, x: Tensor, units: int, bias: bool = True, act: Optional[str] = None
    ) -> Tensor:
        w = self.const("fc_w", (x.shape[-1], units))
        if x.ndim != 2:
            raise ValueError("dense expects a 2-D input; reshape first")
        out = self._emit(gemm_ops.dense(x, w, name=self._name("dense")))
        if bias:
            out = self.bias_add(out, "last")
        return self.activate(out, act)

    def batch_gemm(self, a: Tensor, b: Tensor) -> Tensor:
        return self._emit(gemm_ops.batch_gemm(a, b, name=self._name("bgemm")))

    def softmax_last(self, x: Tensor) -> Tensor:
        comps = reduce_ops.softmax_last(x, name=self._name("softmax"))
        self.graph.add_all(comps)
        return comps[-1].output

    def layer_norm(self, x: Tensor) -> Tensor:
        gamma = self.const("ln_g", (x.shape[-1],))
        beta = self.const("ln_b", (x.shape[-1],))
        comps = reduce_ops.layer_norm_last(x, gamma, beta, name=self._name("ln"))
        self.graph.add_all(comps)
        return comps[-1].output

    def reshape_heads(self, x: Tensor, heads: int, seq: int) -> Tensor:
        """``[N*L, H] -> [N*heads, L, H/heads]`` multi-head split (copy op)."""
        from ..ir.compute import Access, Axis
        from ..ir.expr import Var

        nl, hidden = x.shape
        n = nl // seq
        dh = hidden // heads
        out = Tensor(self._name("heads") + ".out", (n * heads, seq, dh))
        b, l, d = Var("b"), Var("l"), Var("d")
        body = Access(x, [(b // heads) * seq + l, (b % heads) * dh + d])
        comp = ComputeDef(
            name=self._name("split_heads"),
            output=out,
            axes=[Axis("b", n * heads), Axis("l", seq), Axis("d", dh)],
            reduce_axes=[],
            body=body,
            tags=("data_movement", "reshape"),
        )
        return self._emit(comp)

    def merge_heads(self, x: Tensor, heads: int, seq: int) -> Tensor:
        """``[N*heads, L, dh] -> [N*L, heads*dh]`` (copy op)."""
        from ..ir.compute import Access, Axis
        from ..ir.expr import Var

        bh, l_, dh = x.shape
        n = bh // heads
        out = Tensor(self._name("merged") + ".out", (n * seq, heads * dh))
        i, j = Var("i"), Var("j")
        body = Access(x, [(i // seq) * heads + j // dh, i % seq, j % dh])
        comp = ComputeDef(
            name=self._name("merge_heads"),
            output=out,
            axes=[Axis("i", n * seq), Axis("j", heads * dh)],
            reduce_axes=[],
            body=body,
            tags=("data_movement", "reshape"),
        )
        return self._emit(comp)

    def transpose_last(self, x: Tensor) -> Tensor:
        """``[B, M, N] -> [B, N, M]`` copy (for K^T in attention)."""
        from ..ir.compute import Access, Axis
        from ..ir.expr import Var

        b_, m_, n_ = x.shape
        out = Tensor(self._name("transposed") + ".out", (b_, n_, m_))
        b, i, j = Var("b"), Var("i"), Var("j")
        comp = ComputeDef(
            name=self._name("transpose"),
            output=out,
            axes=[Axis("b", b_), Axis("i", n_), Axis("j", m_)],
            reduce_axes=[],
            body=Access(x, [b, j, i]),
            tags=("data_movement", "transpose"),
        )
        return self._emit(comp)

    def scale(self, x: Tensor, factor: float) -> Tensor:
        from ..ir.compute import Access, ConstF

        axes, vars_ = ew._axes_for(x)
        out = Tensor(self._name("scaled") + ".out", x.shape)
        comp = ComputeDef(
            name=self._name("scale"),
            output=out,
            axes=axes,
            reduce_axes=[],
            body=Access(x, vars_) * ConstF(factor),
            tags=("elementwise",),
        )
        return self._emit(comp)
