"""End-to-end compilation: graph -> tuned, fused, lowered program.

This is ALT's outer loop (paper Section 6): the joint stage tunes each
complex operator **in topological order** and propagates the resulting
layouts; simple operators inherit layouts (or absorb conversions); loop
schedules come from the per-task tuning results; elementwise consumers whose
loop nests align with their producers are fused; finally every node lowers
to a stage and the machine model prices the program.

``mode`` selects the system being emulated:

=============  ==============================================================
``alt``        full ALT: joint tuning + absorption + replication (fusion OK)
``alt-wp``     ablation: absorption only, no replication (fusion conflicts)
``alt-ol``     ablation: loop tuning only on fixed channel-last layouts
``ansor``      loop tuning w/ cost model, fixed packed layouts (NeoCPU-style)
``autotvm``    template-restricted loop tuning, fixed packed layouts
``vendor``     fixed expert kernels (OpenVINO / TensorRT / Torch stand-in)
=============  ==============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from .graph.graph import Graph
from .ir.compute import ComputeDef
from .ir.nest import Program, Stage
from .layout.layout import Layout
from .layout.presets import fixed_scheme_layouts
from .layout.propagation import PropagationEngine, PropagationState
from .loops.schedule import LoopSchedule
from .lower.lower import LoweringError, lower_compute
from .machine.latency import estimate_program
from .machine.spec import MachineSpec
from .obs.log import log
from .obs.profiler import NULL_PROFILER, Profiler
from .obs.trace import NULL_TRACE, Trace
from .tuning.baselines import (
    tune_alt,
    tune_alt_ol,
    tune_ansor_like,
    tune_autotvm_like,
    tune_flextensor_like,
    vendor_library,
)
from .tuning.explorer import TuneResult
from .tuning.measurer import MeasureOptions

MODES = ("alt", "alt-wp", "alt-ol", "ansor", "autotvm", "flextensor", "vendor")


@dataclass
class CompileOptions:
    mode: str = "alt"
    total_budget: int = 2000
    joint_fraction: float = 0.3
    levels: int = 1
    seed: int = 0
    searcher: str = "ppo"
    use_cost_model: bool = True
    pretrained: Optional[Dict] = None
    #: exported (features, score) pairs to seed the cost model with (the
    #: warm-start transfer path; see ``repro.tuning.database``)
    cost_model_seed: Optional[Dict] = None
    #: optional cross-compile tuning cache; matching tasks reuse records
    #: instead of re-searching (and deposit their results back).  Pass a
    #: :class:`~repro.tuning.database.TuningDatabase` to additionally get
    #: persistent cross-run reuse and nearest-neighbor warm starts.
    records: Optional[object] = None
    #: measurement-engine knobs (jobs, disk cache, timeouts); ``None`` uses
    #: the environment defaults (``REPRO_MEASURE_JOBS`` etc.)
    measure: Optional[MeasureOptions] = None
    #: observability context (``repro.obs.Trace``): spans, tuning timelines
    #: and metrics for the whole compile; ``None`` disables tracing at zero
    #: cost (results are bit-identical either way)
    trace: Optional[Trace] = None
    #: phase profiler (``repro.obs.Profiler``): aggregated wall-time
    #: attribution across the compile/tuning phases; ``None`` disables
    #: profiling at zero cost (results are bit-identical either way)
    profiler: Optional[Profiler] = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")


@dataclass
class CompiledModel:
    graph: Graph
    program: Program
    machine: MachineSpec
    latency_s: float
    layouts: Dict[str, Layout]
    schedules: Dict[str, LoopSchedule]
    task_results: Dict[str, TuneResult]
    n_conversions: int
    fuse_groups: Dict[str, str] = field(default_factory=dict)


def task_signature(comp: ComputeDef) -> Tuple:
    """Workload class key: identical ops share one tuning task (Ansor-style)."""
    return (
        comp.tags,
        comp.output.shape,
        tuple(t.shape for t in comp.inputs),
        tuple(sorted((k, str(v)) for k, v in comp.attrs.items())),
    )


def _tune_representative(
    comp: ComputeDef, machine: MachineSpec, budget: int, opts: CompileOptions
) -> TuneResult:
    mode = opts.mode
    measure = opts.measure
    trace = opts.trace
    if mode == "alt" or mode == "alt-wp":
        return tune_alt(
            comp,
            machine,
            budget=budget,
            joint_fraction=opts.joint_fraction,
            seed=opts.seed,
            levels=opts.levels,
            searcher=opts.searcher,
            use_cost_model=opts.use_cost_model,
            pretrained=opts.pretrained,
            cost_model_seed=opts.cost_model_seed,
            measure=measure,
            trace=trace,
            profiler=opts.profiler,
        )
    if mode == "alt-ol":
        return tune_alt_ol(
            comp, machine, budget=budget, seed=opts.seed, measure=measure,
            trace=trace,
        )
    if mode == "ansor":
        return tune_ansor_like(
            comp, machine, budget=budget, seed=opts.seed, measure=measure,
            trace=trace,
        )
    if mode == "autotvm":
        return tune_autotvm_like(
            comp, machine, budget=budget, seed=opts.seed, measure=measure,
            trace=trace,
        )
    if mode == "flextensor":
        return tune_flextensor_like(
            comp, machine, budget=budget, seed=opts.seed, measure=measure,
            trace=trace,
        )
    return vendor_library(
        comp, machine, seed=opts.seed, measure=measure, trace=trace
    )


def _cached_or_tuned(
    rep: ComputeDef, machine: MachineSpec, budget: int, opts: CompileOptions
) -> TuneResult:
    """Serve a tuning task from the record store/database when possible.

    Cache-first compile path: an exact ``(task_signature, machine)`` hit
    rebuilds (layouts, schedule) from the record with **zero** fresh
    measurements.  On a miss against a :class:`TuningDatabase`, the nearest
    similar record (if any) warm-starts the search -- PPO weights through
    ``pretrained=``, cost-model training pairs through ``cost_model_seed=``
    -- and the fresh result is deposited back with its own warm payload.
    """
    store = opts.records
    trace = opts.trace if opts.trace is not None else NULL_TRACE
    if store is not None:
        cached = store.lookup(rep, machine.name)
        if cached is not None:
            from .tuning.records import apply_record

            layouts, schedule = apply_record(cached, rep)
            trace.event(
                "record_cache_hit", task=rep.name, latency=cached.latency_s
            )
            trace.metrics.counter("pipeline.record_cache_hits").inc()
            return TuneResult(
                task_name=rep.name,
                best_latency=cached.latency_s,
                best_layouts=layouts,
                best_schedule=schedule,
                measurements=0,
            )
        if hasattr(store, "warm_start"):
            warm = store.warm_start(rep, machine.name)
            if warm is not None:
                trace.event(
                    "record_warm_start", task=rep.name,
                    distance=warm.get("distance"),
                )
                trace.metrics.counter("pipeline.record_warm_starts").inc()
                opts = replace(
                    opts,
                    pretrained=warm.get("pretrained") or opts.pretrained,
                    cost_model_seed=(
                        warm.get("cost_model_seed") or opts.cost_model_seed
                    ),
                )
    result = _tune_representative(rep, machine, budget, opts)
    if store is not None and result.best_schedule is not None:
        from .tuning.records import record_from_result

        store.add(record_from_result(rep, machine.name, result, warm=True))
    return result


def _remap_layouts(
    result_layouts: Mapping[str, Layout], source: ComputeDef, target: ComputeDef
) -> Dict[str, Layout]:
    """Re-key a representative's tuned layouts onto an identical node."""
    out: Dict[str, Layout] = {}
    pairs = [(source.output, target.output)] + list(zip(source.inputs, target.inputs))
    for src_t, dst_t in pairs:
        lay = result_layouts.get(src_t.name)
        if lay is None:
            continue
        out[dst_t.name] = lay.replay_onto(Layout(dst_t.shape))
    return out


def default_schedule(stage: Stage, machine: MachineSpec) -> LoopSchedule:
    """Untuned schedule for simple operators: the best of a few standard
    shapes (parallel outers + vectorized inner, with or without splitting
    the innermost loop) as priced by the machine model.

    Splitting the innermost loop matters when a tensor was channel-packed:
    a ``C`` loop over an ``N C/16 H W 16`` layout only becomes an affine,
    parallel-friendly access pattern once it is split by the tile size.
    """
    from .machine.latency import estimate_stage
    from .lower.lower import apply_schedule

    best_sched: Optional[LoopSchedule] = None
    best_cost = math.inf
    for sched in _default_candidates(stage, machine):
        try:
            cost = estimate_stage(apply_schedule(stage, sched), machine)
        except (LoweringError, ValueError):
            continue
        if cost.total_cycles < best_cost:
            best_cost = cost.total_cycles
            best_sched = sched
    return best_sched if best_sched is not None else LoopSchedule()


def _default_candidates(stage: Stage, machine: MachineSpec) -> List[LoopSchedule]:
    spatial = [l for l in stage.loops if l.var not in stage.reduce_vars]
    red = [l.var for l in stage.loops if l.var in stage.reduce_vars]
    if not spatial:
        return [LoopSchedule()]
    outer_vars = [l.var for l in spatial[:-1]]
    inner = spatial[-1]

    def parallel_prefix(sched: LoopSchedule, order: List[str], extents: Dict[str, int]):
        par = 1
        for v in order:
            if v not in extents:
                break  # reached the reductions
            sched.parallel(v)
            par *= extents[v]
            if par >= 2 * machine.cores:
                break

    candidates: List[LoopSchedule] = []

    # (a) plain: outers parallel, inner vectorized
    sched = LoopSchedule()
    order = outer_vars + red + [inner.var]
    sched.reorder(order)
    if inner.extent > 1:
        sched.vectorize(inner.var)
    parallel_prefix(sched, order, {l.var: l.extent for l in spatial[:-1]})
    candidates.append(sched)

    # (b/c) split the innermost loop so its outer half parallelizes and its
    # inner half matches a SIMD/layout tile
    for target in (machine.vector_lanes, 16):
        if inner.extent < 2 * target:
            continue
        f = max(d for d in _divisors(inner.extent) if d <= target)
        if f <= 1 or f == inner.extent:
            continue
        sched = LoopSchedule()
        sched.split(inner.var, [inner.extent // f, f])
        order = outer_vars + [f"{inner.var}.0"] + red + [f"{inner.var}.1"]
        sched.reorder(order)
        sched.vectorize(f"{inner.var}.1")
        extents = {l.var: l.extent for l in spatial[:-1]}
        extents[f"{inner.var}.0"] = inner.extent // f
        parallel_prefix(sched, order, extents)
        candidates.append(sched)

    return candidates


def _divisors(n: int) -> List[int]:
    from .tuning.space import divisors

    return divisors(n)


def compile_graph(
    graph: Graph, machine: MachineSpec, options: Optional[CompileOptions] = None
) -> CompiledModel:
    """Tune, propagate, fuse and lower a whole model graph.

    Mutates ``graph`` (conversion-operator insertion); build a fresh graph
    per compile call.
    """
    opts = options or CompileOptions()
    trace = opts.trace if opts.trace is not None else NULL_TRACE
    profiler = opts.profiler if opts.profiler is not None else NULL_PROFILER
    graph.validate()

    with trace.span(
        "compile", graph=graph.name, machine=machine.name, mode=opts.mode,
        budget=opts.total_budget,
    ) as compile_sp:
        # span attrs only reach the stream when the span *ends*; a live
        # consumer learns what is being compiled from this start event
        trace.event(
            "compile_start", graph=graph.name, machine=machine.name,
            mode=opts.mode, budget=opts.total_budget,
        )
        # ---- 1. deduplicated tuning tasks over complex operators ------------------
        complex_nodes = graph.complex_nodes()
        classes: Dict[Tuple, List[ComputeDef]] = {}
        for node in complex_nodes:
            classes.setdefault(task_signature(node), []).append(node)
        n_tasks = max(len(classes), 1)
        per_task_budget = max(opts.total_budget // n_tasks, 16)

        task_results: Dict[str, TuneResult] = {}
        class_of: Dict[str, Tuple[ComputeDef, TuneResult]] = {}
        with trace.span(
            "tuning", tasks=len(classes), per_task_budget=per_task_budget
        ):
            for sig, nodes in classes.items():
                rep = nodes[0]
                result = _cached_or_tuned(rep, machine, per_task_budget, opts)
                log.debug(
                    "task %s: best %.3e s after %d measurements",
                    rep.name, result.best_latency, result.measurements,
                )
                # one summary event per task: the run registry / comparator
                # reconstruct per-task results from the trace alone
                trace.event(
                    "task_result",
                    task=rep.name,
                    best_latency=result.best_latency,
                    measurements=result.measurements,
                    instances=len(nodes),
                )
                task_results[rep.name] = result
                for node in nodes:
                    class_of[node.name] = (rep, result)

        # ---- 2. layout assignment + propagation (topological order) ----------------
        state = PropagationState()
        engine = PropagationEngine(
            graph,
            state,
            enable_replication=(opts.mode != "alt-wp"),
            enable_absorption=True,
            trace=trace,
        )
        schedules: Dict[str, LoopSchedule] = {}
        with profiler.phase("compile.propagation"), trace.span(
            "propagation"
        ) as prop_sp:
            for node in list(graph.nodes):  # conversion inserts mutate graph.nodes
                pair = class_of.get(node.name)
                if pair is None:
                    continue
                rep, result = pair
                chosen = _remap_layouts(result.best_layouts, rep, node)
                engine.assign_operator_layouts(node, chosen)
                if result.best_schedule is not None:
                    schedules[node.name] = result.best_schedule
            prop_sp.set(
                conversions=len(state.conversions),
                replicated=len(state.replicated),
            )

        # ---- 3. fusion grouping ---------------------------------------------------------
        with profiler.phase("compile.fusion"), trace.span("fusion") as fuse_sp:
            fuse_groups = _assign_fuse_groups(graph, state.layouts)
            fuse_sp.set(fused=len(fuse_groups))
        trace.metrics.counter("pipeline.fused_stages").inc(len(fuse_groups))

        # ---- 4. lowering ------------------------------------------------------------------
        with profiler.phase("compile.lowering"), trace.span(
            "lowering"
        ) as lower_sp:
            fallbacks = 0
            stages: List[Stage] = []
            for node in graph.nodes:
                sched = schedules.get(node.name)
                if sched is None:
                    bare = lower_compute(node, state.layouts)
                    sched = default_schedule(bare, machine)
                else:
                    sched = sched.copy()
                group = fuse_groups.get(node.name)
                if group is not None:
                    sched.set_fuse_group(group)
                try:
                    stages.append(lower_compute(node, state.layouts, sched))
                except LoweringError:
                    # tuned schedule may not transfer (rare); fall back to default
                    fallbacks += 1
                    log.debug("schedule fallback while lowering %s", node.name)
                    bare = lower_compute(node, state.layouts)
                    sched = default_schedule(bare, machine)
                    if group is not None:
                        sched.set_fuse_group(group)
                    stages.append(lower_compute(node, state.layouts, sched))
            lower_sp.set(stages=len(stages), schedule_fallbacks=fallbacks)
        trace.metrics.counter("pipeline.schedule_fallbacks").inc(fallbacks)

        program = Program(stages, name=graph.name)
        with profiler.phase("compile.estimate"), trace.span("estimate"):
            latency = estimate_program(program, machine)
        compile_sp.set(latency_s=latency, conversions=len(state.conversions))
        trace.metrics.gauge("pipeline.latency_s").set(latency)
    return CompiledModel(
        graph=graph,
        program=program,
        machine=machine,
        latency_s=latency,
        layouts=dict(state.layouts),
        schedules=schedules,
        task_results=task_results,
        n_conversions=len(state.conversions),
        fuse_groups=fuse_groups,
    )


def compile_untuned(
    graph: Graph, machine: MachineSpec, trace: Optional[Trace] = None
) -> CompiledModel:
    """Lower a graph with identity layouts and default schedules.

    The whole-network tuning baseline: no layout transformation, no search
    -- every node gets :func:`default_schedule` on its natural loop nest,
    elementwise fusion still applies (all signatures trivially align).
    Does not mutate ``graph`` (no conversions are ever inserted).
    """
    trace = trace if trace is not None else NULL_TRACE
    graph.validate()
    with trace.span(
        "compile_untuned", graph=graph.name, machine=machine.name
    ) as sp:
        layouts: Dict[str, Layout] = {}
        fuse_groups = _assign_fuse_groups(graph, layouts)
        schedules: Dict[str, LoopSchedule] = {}
        stages: List[Stage] = []
        for node in graph.nodes:
            bare = lower_compute(node, layouts)
            sched = default_schedule(bare, machine)
            group = fuse_groups.get(node.name)
            if group is not None:
                sched.set_fuse_group(group)
            schedules[node.name] = sched
            stages.append(lower_compute(node, layouts, sched))
        program = Program(stages, name=graph.name)
        latency = estimate_program(program, machine)
        sp.set(latency_s=latency)
    return CompiledModel(
        graph=graph,
        program=program,
        machine=machine,
        latency_s=latency,
        layouts=layouts,
        schedules=schedules,
        task_results={},
        n_conversions=0,
        fuse_groups=fuse_groups,
    )


def _assign_fuse_groups(
    graph: Graph, layouts: Mapping[str, Layout]
) -> Dict[str, str]:
    """Fuse elementwise consumers whose loop nests align with the producer.

    Alignment requires the consumer's *output* layout to replay the exact
    primitive signature of the producer's output layout on the same shape --
    precisely what layout replication guarantees and what its absence
    (ALT-WP) breaks, reproducing the fusion-conflict overhead of Fig. 6.
    """

    def sig(tname: str) -> Tuple:
        lay = layouts.get(tname)
        return lay.signature() if lay is not None else ()

    groups: Dict[str, str] = {}
    for node in graph.nodes:
        if "conversion" in node.tags:
            continue
        out_name = node.output.name
        consumers = graph.consumers_of(out_name)
        if len(consumers) != 1:
            continue
        consumer = consumers[0]
        if not consumer.is_elementwise or "conversion" in consumer.tags:
            continue
        if consumer.output.shape != node.output.shape:
            continue
        if sig(consumer.output.name) != sig(out_name):
            continue  # fusion conflict: loop nests no longer align
        group = groups.get(node.name, f"fuse:{node.name}")
        groups[node.name] = group
        groups[consumer.name] = group
    return groups
