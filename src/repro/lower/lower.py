"""Lowering: (ComputeDef, layouts, loop schedule) -> executable loop nest.

This is the compiler pass described in paper Section 6.  For an operator
``Y = F(X)``:

1. The output tensor's layout ``S_Y`` is applied to deduce the final physical
   shape; the loop nest is reconstructed with **one spatial loop per physical
   output dimension** (the one-to-one mapping between output dims and loops).
2. Every access of an input ``X`` is remapped in two steps:
   ``S_X(S_Y^{-1}(L'))`` -- old logical coordinates are recovered through the
   *inverse* of the output layout, then pushed through the *forward* layout
   of the input tensor.
3. The loop schedule (splits/reorder/annotations) is applied on top.

No operator is ever re-implemented by hand: any layout expressible with the
primitive chain lowers through this one code path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..ir.compute import Access, ComputeDef, substitute_value
from ..ir.expr import Expr, Var, simplify, simplify_ranges, to_expr
from ..ir.nest import (
    PARALLEL,
    SERIAL,
    UNROLL,
    VECTORIZE,
    BufRead,
    Buffer,
    Loop,
    Program,
    Stage,
)
from ..layout.layout import Layout
from ..layout.primitives import RewriteContext, StoreAt
from ..loops.schedule import LoopSchedule


class LoweringError(ValueError):
    """Raised when a layout or schedule cannot be lowered legally."""


def identity_layout(tensor) -> Layout:
    return Layout(tensor.shape, [f"d{i}" for i in range(tensor.ndim)])


def _layout_of(tensor, layouts: Mapping[str, Layout]) -> Layout:
    lay = layouts.get(tensor.name)
    if lay is None:
        return identity_layout(tensor)
    if lay.logical_shape != tensor.shape:
        raise LoweringError(
            f"layout for {tensor.name} built for shape {lay.logical_shape}, "
            f"tensor has {tensor.shape}"
        )
    return lay


def _merged_buffers(
    comp_tensors, layouts: Mapping[str, Layout]
) -> Tuple[Dict[str, Buffer], Dict[str, Tuple[str, int]]]:
    """Resolve store_at bindings into merged physical buffers.

    Returns ``(buffers, merges)`` where ``merges[attached] = (host, host_dim)``.
    The merged buffer keeps the host's name with ``host_dim`` extended by one
    slot per attached tensor; attached data lives in the extra trailing slots.
    """
    merges: Dict[str, Tuple[str, int]] = {}
    extensions: Dict[Tuple[str, int], List[str]] = {}
    by_name = {t.name: t for t in comp_tensors}
    for t in comp_tensors:
        binding = _layout_of(t, layouts).store_at_binding()
        if binding is None:
            continue
        if binding.host not in by_name:
            raise LoweringError(
                f"store_at host {binding.host!r} of {t.name} not visible here"
            )
        merges[t.name] = (binding.host, binding.host_dim)
        extensions.setdefault((binding.host, binding.host_dim), []).append(t.name)

    buffers: Dict[str, Buffer] = {}
    for t in comp_tensors:
        if t.name in merges:
            continue  # attached tensors share the host buffer
        shape = list(_layout_of(t, layouts).physical_shape())
        for (host, dim), attached in extensions.items():
            if host == t.name:
                if dim >= len(shape):
                    raise LoweringError(
                        f"store_at host dim {dim} out of range for {t.name}"
                    )
                shape[dim] += len(attached)
        buffers[t.name] = Buffer(t.name, shape, t.itemsize)
    return buffers, merges


def lower_compute(
    comp: ComputeDef,
    layouts: Optional[Mapping[str, Layout]] = None,
    schedule: Optional[LoopSchedule] = None,
) -> Stage:
    """Lower one operator to a :class:`Stage`."""
    layouts = dict(layouts or {})
    comp.validate()
    out_layout = _layout_of(comp.output, layouts)
    for prim in out_layout.primitives:
        from ..layout.primitives import Pad

        if isinstance(prim, Pad):
            raise LoweringError(
                f"{comp.name}: pad on the *output* layout would compute "
                "out-of-domain elements; pad input/weight tensors instead"
            )

    # 1. spatial loops: one per physical output dimension.
    phys_dims = out_layout.dims
    spatial_vars = [f"s{i}" for i in range(len(phys_dims))]
    loops = [Loop(v, d.size) for v, d in zip(spatial_vars, phys_dims)]
    spatial_names = {v: d.name for v, d in zip(spatial_vars, phys_dims)}

    # 2. recover logical coordinates: L = S_Y^{-1}(L').
    logical_exprs = out_layout.inverse_access([Var(v) for v in spatial_vars])
    axis_map: Dict[str, Expr] = {
        axis.name: expr for axis, expr in zip(comp.axes, logical_exprs)
    }

    # 3. reduction loops keep their axis names.
    reduce_vars = {a.name for a in comp.reduce_axes}
    loops += [Loop(a.name, a.extent) for a in comp.reduce_axes]

    var_extents = {l.var: l.extent for l in loops}
    ranges = {l.var: (0, l.extent - 1) for l in loops}

    # 4. substitute logical axis variables throughout the body.
    body = substitute_value(comp.body, axis_map)

    # 5. rewrite every access through its tensor's forward layout.
    tensors = [comp.output] + comp.inputs
    buffers, merges = _merged_buffers(tensors, layouts)
    ctx = RewriteContext(var_extents, reduce_vars)

    def to_bufread(acc: Access) -> BufRead:
        t = acc.tensor
        lay = _layout_of(t, layouts)
        idx = lay.rewrite_access(list(acc.indices), ctx)
        idx = [simplify_ranges(e, ranges) for e in idx]
        if t.name in merges:
            host, host_dim = merges[t.name]
            host_buf = buffers[host]
            # Attached tensor occupies the trailing slot along host_dim.
            slot = host_buf.shape[host_dim] - 1
            idx = idx[:host_dim] + [to_expr(slot)] + idx[host_dim:]
            if len(idx) != len(host_buf.shape):
                raise LoweringError(
                    f"store_at of {t.name} onto {host}: rank mismatch "
                    f"({len(idx)} vs {len(host_buf.shape)})"
                )
            return BufRead(host_buf, idx)
        return BufRead(buffers[t.name], idx)

    body = body.map_accesses(to_bufread)
    out_indices: List[Expr] = [Var(v) for v in spatial_vars]

    stage = Stage(
        name=comp.name,
        loops=loops,
        out=buffers[comp.output.name],
        out_indices=out_indices,
        update=body,
        reduce_op=comp.reduce_op,
        reduce_vars=reduce_vars,
        init_value=comp.init if comp.reduce_op else None,
        annotations={
            "op_tags": comp.tags,
            "spatial_names": spatial_names,
            "flops": comp.flops(),
            "layout_signature": out_layout.signature(),
        },
    )
    if schedule is not None:
        stage = apply_schedule(stage, schedule)
    return stage


# ---------------------------------------------------------------------------
# Loop schedule application
# ---------------------------------------------------------------------------

def apply_schedule(stage: Stage, schedule: LoopSchedule) -> Stage:
    loops = list(stage.loops)
    out_indices = list(stage.out_indices)
    update = stage.update
    reduce_vars = set(stage.reduce_vars)

    # splits
    for var, factors in schedule.splits:
        pos = _find_loop(loops, var)
        extent = loops[pos].extent
        if math.prod(factors) != extent:
            raise LoweringError(
                f"split of {var} (extent {extent}) by {factors} is not exact"
            )
        children = [Loop(f"{var}.{j}", f) for j, f in enumerate(factors)]
        loops[pos : pos + 1] = children
        # var = sum(child_j * suffix_j)
        repl: Expr = to_expr(0)
        suffix = extent
        for child in children:
            suffix //= child.extent
            repl = repl + Var(child.var) * suffix
        mapping = {var: simplify(repl)}
        out_indices = [simplify(e.substitute(mapping)) for e in out_indices]
        update = substitute_value(update, mapping)
        if var in reduce_vars:
            reduce_vars.discard(var)
            reduce_vars.update(c.var for c in children)

    ranges = {l.var: (0, l.extent - 1) for l in loops}
    out_indices = [simplify_ranges(e, ranges) for e in out_indices]
    update = _simplify_value(update, ranges)

    # reorder
    if schedule.order is not None:
        current = {l.var: l for l in loops}
        if sorted(schedule.order) != sorted(current):
            raise LoweringError(
                f"reorder {schedule.order} does not match loops "
                f"{sorted(current)}"
            )
        loops = [current[v] for v in schedule.order]

    # annotations
    for v in schedule.parallel_vars:
        pos = _find_loop(loops, v)
        if loops[pos].var in reduce_vars:
            raise LoweringError(f"cannot parallelize reduction loop {v}")
        loops[pos] = loops[pos].with_kind(PARALLEL)
    prefix = [l.kind == PARALLEL for l in loops]
    if any(prefix) and not all(
        prefix[i] for i in range(sum(prefix))
    ):
        raise LoweringError("parallel loops must form an outermost prefix")

    if schedule.vectorize_var is not None:
        pos = _find_loop(loops, schedule.vectorize_var)
        if pos != len(loops) - 1:
            raise LoweringError(
                f"vectorize target {schedule.vectorize_var} must be the "
                "innermost loop"
            )
        if loops[pos].var in reduce_vars:
            raise LoweringError("cannot vectorize a reduction loop")
        loops[pos] = loops[pos].with_kind(VECTORIZE)

    for v in schedule.unroll_vars:
        pos = _find_loop(loops, v)
        if loops[pos].kind == SERIAL:
            loops[pos] = loops[pos].with_kind(UNROLL)

    annotations = dict(stage.annotations)
    if schedule.compute_at is not None:
        annotations["compute_at"] = schedule.compute_at
    if schedule.fuse_group is not None:
        annotations["fuse_group"] = schedule.fuse_group
    annotations["schedule_signature"] = schedule.signature()

    return Stage(
        name=stage.name,
        loops=loops,
        out=stage.out,
        out_indices=out_indices,
        update=update,
        reduce_op=stage.reduce_op,
        reduce_vars=reduce_vars,
        init_value=stage.init_value,
        annotations=annotations,
    )


def _find_loop(loops: List[Loop], var: str) -> int:
    for i, l in enumerate(loops):
        if l.var == var:
            return i
    raise LoweringError(f"no loop named {var!r}; have {[l.var for l in loops]}")


def _simplify_value(value, ranges):
    from ..ir.compute import BinOp, Call, ConstF, Select

    if isinstance(value, Select):
        return Select(
            value.cond.map_exprs(lambda e: simplify_ranges(e, ranges)),
            _simplify_value(value.then_value, ranges),
            _simplify_value(value.else_value, ranges),
        )
    if isinstance(value, BinOp):
        return BinOp(
            value.op,
            _simplify_value(value.a, ranges),
            _simplify_value(value.b, ranges),
        )
    if isinstance(value, Call):
        return Call(value.fn, tuple(_simplify_value(a, ranges) for a in value.args))
    if isinstance(value, ConstF):
        return value
    acc = value
    new_idx = tuple(simplify_ranges(e, ranges) for e in acc.indices)
    if isinstance(acc, BufRead):
        return BufRead(acc.buffer, new_idx)
    return Access(acc.tensor, new_idx)
