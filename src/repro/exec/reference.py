"""Numpy reference implementations and a generic logical-space evaluator.

Two independent oracles:

- :func:`evaluate_compute` interprets a :class:`ComputeDef` directly in
  logical space (no layouts, no lowering) -- it validates the lowering and
  layout pipeline.
- The ``*_ref`` functions are hand-written vectorized numpy kernels -- they
  validate that the :class:`ComputeDef` constructions themselves encode the
  intended operator.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

import numpy as np

from ..ir.compute import ComputeDef
from .interpreter import _Namer, _value_src, _expr_src


def evaluate_compute(
    comp: ComputeDef, inputs: Mapping[str, np.ndarray], dtype=np.float64
) -> np.ndarray:
    """Naive logical-space evaluation of one operator (small shapes only)."""
    comp.validate()
    for t in comp.inputs:
        arr = inputs.get(t.name)
        if arr is None:
            raise KeyError(f"missing input {t.name}")
        if tuple(arr.shape) != t.shape:
            raise ValueError(f"{t.name}: shape {arr.shape} != {t.shape}")

    vnames = _Namer("v")
    bnames = _Namer("B")

    # Build source directly from the logical compute definition.
    class _TensorReadShim:
        pass

    # Reuse _value_src by treating Access.tensor like BufRead.buffer.
    from ..ir.compute import Access, BinOp, Call, ConstF, Select, Value

    def value_src(v: Value) -> str:
        if isinstance(v, ConstF):
            return repr(v.value)
        if isinstance(v, Access):
            idx = ", ".join(_expr_src(i, vnames) for i in v.indices)
            return f"{bnames[v.tensor.name]}[{idx}]"
        if isinstance(v, BinOp):
            return f"({value_src(v.a)} {v.op} {value_src(v.b)})"
        if isinstance(v, Call):
            args = ", ".join(value_src(a) for a in v.args)
            table = {
                "exp": "math.exp", "sqrt": "math.sqrt", "tanh": "math.tanh",
                "erf": "math.erf", "abs": "abs", "log": "math.log",
                "max": "max", "min": "min",
            }
            if v.fn == "sigmoid":
                return f"(1.0 / (1.0 + math.exp(-({value_src(v.args[0])}))))"
            return f"{table[v.fn]}({args})"
        if isinstance(v, Select):
            from .interpreter import _cond_src

            return (
                f"({value_src(v.then_value)} if {_cond_src(v.cond, vnames)} "
                f"else {value_src(v.else_value)})"
            )
        raise TypeError(type(v))

    lines = ["def _run(out, bufs):", "    import math"]
    for t in comp.inputs:
        lines.append(f"    {bnames[t.name]} = bufs[{t.name!r}]")
    indent = "    "
    for axis in comp.all_axes:
        lines.append(f"{indent}for {vnames[axis.name]} in range({axis.extent}):")
        indent += "    "
    out_idx = ", ".join(vnames[a.name] for a in comp.axes)
    rhs = value_src(comp.body)
    if comp.reduce_op == "sum":
        lines.append(f"{indent}out[{out_idx}] += {rhs}")
    elif comp.reduce_op == "max":
        lines.append(f"{indent}out[{out_idx}] = max(out[{out_idx}], {rhs})")
    else:
        lines.append(f"{indent}out[{out_idx}] = {rhs}")
    namespace: Dict = {"math": math}
    exec(compile("\n".join(lines), f"<ref:{comp.name}>", "exec"), namespace)

    out = np.full(
        comp.output.shape, comp.init if comp.reduce_op else 0.0, dtype=dtype
    )
    namespace["_run"](out, {t.name: np.asarray(inputs[t.name], dtype=dtype) for t in comp.inputs})
    return out


# ---------------------------------------------------------------------------
# Vectorized numpy kernels
# ---------------------------------------------------------------------------

def conv2d_ref(inp, ker, stride=1, dilation=1, groups=1):
    n, i, h, w = inp.shape
    o, ig, kh, kw = ker.shape
    oh = (h - ((kh - 1) * dilation + 1)) // stride + 1
    ow = (w - ((kw - 1) * dilation + 1)) // stride + 1
    og = o // groups
    out = np.zeros((n, o, oh, ow), dtype=inp.dtype)
    for g in range(groups):
        xin = inp[:, g * ig : (g + 1) * ig]
        kg = ker[g * og : (g + 1) * og]
        for rh in range(kh):
            for rw in range(kw):
                window = xin[
                    :,
                    :,
                    rh * dilation : rh * dilation + oh * stride : stride,
                    rw * dilation : rw * dilation + ow * stride : stride,
                ]
                out[:, g * og : (g + 1) * og] += np.einsum(
                    "nihw,oi->nohw", window, kg[:, :, rh, rw]
                )
    return out


def depthwise_conv2d_ref(inp, ker, stride=1, dilation=1):
    n, c, h, w = inp.shape
    kc, kh, kw = ker.shape
    oh = (h - ((kh - 1) * dilation + 1)) // stride + 1
    ow = (w - ((kw - 1) * dilation + 1)) // stride + 1
    out = np.zeros((n, c, oh, ow), dtype=inp.dtype)
    for rh in range(kh):
        for rw in range(kw):
            window = inp[
                :,
                :,
                rh * dilation : rh * dilation + oh * stride : stride,
                rw * dilation : rw * dilation + ow * stride : stride,
            ]
            out += window * ker[None, :, rh, rw, None, None]
    return out


def conv1d_ref(inp, ker, stride=1, dilation=1):
    n, i, w = inp.shape
    o, _, k = ker.shape
    ow = (w - ((k - 1) * dilation + 1)) // stride + 1
    out = np.zeros((n, o, ow), dtype=inp.dtype)
    for r in range(k):
        window = inp[:, :, r * dilation : r * dilation + ow * stride : stride]
        out += np.einsum("niw,oi->now", window, ker[:, :, r])
    return out


def conv3d_ref(inp, ker, stride=1, dilation=1):
    n, i, d, h, w = inp.shape
    o, _, kd, kh, kw = ker.shape
    od = (d - ((kd - 1) * dilation + 1)) // stride + 1
    oh = (h - ((kh - 1) * dilation + 1)) // stride + 1
    ow = (w - ((kw - 1) * dilation + 1)) // stride + 1
    out = np.zeros((n, o, od, oh, ow), dtype=inp.dtype)
    for rd in range(kd):
        for rh in range(kh):
            for rw in range(kw):
                window = inp[
                    :,
                    :,
                    rd * dilation : rd * dilation + od * stride : stride,
                    rh * dilation : rh * dilation + oh * stride : stride,
                    rw * dilation : rw * dilation + ow * stride : stride,
                ]
                out += np.einsum("nidhw,oi->nodhw", window, ker[:, :, rd, rh, rw])
    return out


def pad_spatial_ref(inp, pad):
    widths = [(0, 0), (0, 0)] + [(p, p) for p in pad]
    return np.pad(inp, widths)


def zero_stuff_ref(inp, stride):
    if stride == 1:
        return inp.copy()
    out_shape = list(inp.shape[:2]) + [(s - 1) * stride + 1 for s in inp.shape[2:]]
    out = np.zeros(out_shape, dtype=inp.dtype)
    slices = [slice(None), slice(None)] + [slice(None, None, stride)] * (inp.ndim - 2)
    out[tuple(slices)] = inp
    return out


def max_pool2d_ref(inp, window, stride):
    n, c, h, w = inp.shape
    oh = (h - window) // stride + 1
    ow = (w - window) // stride + 1
    out = np.full((n, c, oh, ow), -np.inf, dtype=inp.dtype)
    for rh in range(window):
        for rw in range(window):
            out = np.maximum(
                out, inp[:, :, rh : rh + oh * stride : stride, rw : rw + ow * stride : stride]
            )
    return out


def avg_pool2d_ref(inp, window, stride):
    n, c, h, w = inp.shape
    oh = (h - window) // stride + 1
    ow = (w - window) // stride + 1
    out = np.zeros((n, c, oh, ow), dtype=inp.dtype)
    for rh in range(window):
        for rw in range(window):
            out += inp[:, :, rh : rh + oh * stride : stride, rw : rw + ow * stride : stride]
    return out / (window * window)


def softmax_last_ref(inp):
    shifted = inp - inp.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def layer_norm_last_ref(inp, gamma, beta, eps=1e-5):
    mu = inp.mean(axis=-1, keepdims=True)
    var = inp.var(axis=-1, keepdims=True)
    return (inp - mu) / np.sqrt(var + eps) * gamma + beta
