"""Run one operator end-to-end through the transformation stack.

``run_compute`` is the bridge used throughout the tests: it lowers an
operator with arbitrary layouts and a loop schedule, materializes input data
into the physical layouts, executes the lowered loop nest, and converts the
result back to logical space.  A result equal to the numpy reference proves
the whole (layout + schedule + lowering + access rewriting) pipeline.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..ir.compute import ComputeDef
from ..layout.layout import Layout
from ..loops.schedule import LoopSchedule
from ..lower.lower import identity_layout, lower_compute, _layout_of, _merged_buffers
from .interpreter import run_stage


def run_compute(
    comp: ComputeDef,
    inputs: Mapping[str, np.ndarray],
    layouts: Optional[Mapping[str, Layout]] = None,
    schedule: Optional[LoopSchedule] = None,
    dtype=np.float64,
) -> np.ndarray:
    """Execute one operator with the given layouts/schedule.

    ``inputs`` are *logical* arrays; the return value is the *logical*
    output array.
    """
    layouts = dict(layouts or {})
    stage = lower_compute(comp, layouts, schedule)

    tensors = [comp.output] + comp.inputs
    buffers, merges = _merged_buffers(tensors, layouts)

    arrays: Dict[str, np.ndarray] = {}
    for name, buf in buffers.items():
        arrays[name] = np.zeros(buf.shape, dtype=dtype)

    # Materialize inputs into physical layouts (store_at merges included).
    for t in comp.inputs:
        lay = _layout_of(t, layouts)
        data = np.asarray(inputs[t.name], dtype=dtype)
        phys = lay.materialize(data)
        if t.name in merges:
            host, host_dim = merges[t.name]
            slot = arrays[host].shape[host_dim] - 1
            index = [slice(None)] * arrays[host].ndim
            index[host_dim] = slot
            arrays[host][tuple(index)] = phys
        elif arrays[t.name].shape != phys.shape:
            # host buffer extended by store_at attachments: data fills the
            # leading slice, attachments land in the trailing slots
            index = tuple(slice(0, s) for s in phys.shape)
            arrays[t.name][index] = phys
        else:
            arrays[t.name][...] = phys

    run_stage(stage, arrays)

    out_layout = _layout_of(comp.output, layouts)
    phys_out = arrays[comp.output.name]
    if comp.output.name in merges:
        raise ValueError("store_at on the output tensor is not supported")
    # Trim any store_at extension slots before unmaterializing.
    expect = out_layout.physical_shape()
    if tuple(phys_out.shape) != expect:
        index = tuple(slice(0, s) for s in expect)
        phys_out = phys_out[index]
    return out_layout.unmaterialize(phys_out)
