"""Whole-graph execution: reference (logical) and compiled (physical).

``run_graph_reference`` evaluates every node in logical space with the
naive evaluator -- the semantics oracle.  ``run_compiled`` executes a
:class:`~repro.pipeline.CompiledModel`'s lowered program over physically
laid-out buffers and converts the outputs back.  Agreement between the two
proves the *entire* compiler (layout assignment, propagation, conversion
insertion, schedule application, lowering) preserved the model's semantics.

Small shapes only -- this is a correctness harness, not an inference engine.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..graph.graph import Graph
from ..layout.layout import Layout
from .interpreter import run_program
from .reference import evaluate_compute


def random_inputs(graph: Graph, seed: int = 0) -> Dict[str, np.ndarray]:
    """Deterministic random values for every graph input and constant."""
    rng = np.random.default_rng(seed)
    out: Dict[str, np.ndarray] = {}
    for t in graph.graph_inputs() + graph.constants():
        out[t.name] = rng.standard_normal(t.shape) * 0.5
    return out


def run_graph_reference(
    graph: Graph, inputs: Mapping[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Logical-space evaluation of the whole graph (the oracle)."""
    values: Dict[str, np.ndarray] = dict(inputs)
    for node in graph.nodes:
        node_inputs = {t.name: values[t.name] for t in node.inputs}
        values[node.output.name] = evaluate_compute(node, node_inputs)
    return values


def run_compiled(model, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Execute a compiled model; returns *logical* graph-output arrays.

    ``model`` is a :class:`repro.pipeline.CompiledModel`.  Graph inputs and
    constants from ``inputs`` are materialized into their assigned physical
    layouts before execution; outputs are unmaterialized after.
    """
    graph: Graph = model.graph
    layouts: Dict[str, Layout] = model.layouts
    physical: Dict[str, np.ndarray] = {}
    for t in graph.graph_inputs() + graph.constants():
        lay = layouts.get(t.name)
        arr = np.asarray(inputs[t.name], dtype=np.float64)
        physical[t.name] = lay.materialize(arr) if lay is not None else arr

    buffers = run_program(model.program, physical)

    out: Dict[str, np.ndarray] = {}
    for t in graph.graph_outputs():
        lay = layouts.get(t.name)
        arr = buffers[t.name]
        out[t.name] = lay.unmaterialize(arr) if lay is not None else arr
    return out
