"""Reference interpreter for lowered programs.

Compiles each :class:`~repro.ir.nest.Stage` into a Python nested-loop
function (via ``compile``/``exec``) and runs it over numpy buffers.  This is
the correctness oracle for the whole transformation stack: whatever layouts
and loop schedules were applied, running the lowered program must reproduce
the numpy reference bit-for-bit (up to float associativity).

It is deliberately scalar and simple -- use small shapes.  Performance
numbers come from ``repro.machine``, never from here.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

import numpy as np

from ..ir.compute import All, BinOp, Call, Cond, ConstF, DivisibleBy, InBounds, Select, Value
from ..ir.expr import (
    Add,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Sub,
    Var,
)
from ..ir.nest import BufRead, Program, Stage

_INTRINSICS = {
    "exp": "math.exp",
    "sqrt": "math.sqrt",
    "tanh": "math.tanh",
    "erf": "math.erf",
    "abs": "abs",
    "log": "math.log",
}


class _Namer:
    """Maps IR names (which may contain dots/parens) to Python identifiers."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.mapping: Dict[str, str] = {}

    def __getitem__(self, name: str) -> str:
        if name not in self.mapping:
            self.mapping[name] = f"{self.prefix}{len(self.mapping)}"
        return self.mapping[name]


def _expr_src(e: Expr, names: _Namer) -> str:
    if isinstance(e, Const):
        return str(e.value)
    if isinstance(e, Var):
        return names[e.name]
    if isinstance(e, Add):
        return f"({_expr_src(e.a, names)} + {_expr_src(e.b, names)})"
    if isinstance(e, Sub):
        return f"({_expr_src(e.a, names)} - {_expr_src(e.b, names)})"
    if isinstance(e, Mul):
        return f"({_expr_src(e.a, names)} * {_expr_src(e.b, names)})"
    if isinstance(e, FloorDiv):
        return f"({_expr_src(e.a, names)} // {_expr_src(e.b, names)})"
    if isinstance(e, Mod):
        return f"({_expr_src(e.a, names)} % {_expr_src(e.b, names)})"
    if isinstance(e, Min):
        return f"min({_expr_src(e.a, names)}, {_expr_src(e.b, names)})"
    if isinstance(e, Max):
        return f"max({_expr_src(e.a, names)}, {_expr_src(e.b, names)})"
    raise TypeError(f"cannot compile expression {e!r}")


def _cond_src(c: Cond, names: _Namer) -> str:
    if isinstance(c, InBounds):
        return f"({c.lo} <= {_expr_src(c.expr, names)} < {c.hi})"
    if isinstance(c, DivisibleBy):
        return f"({_expr_src(c.expr, names)} % {c.k} == 0)"
    if isinstance(c, All):
        return "(" + " and ".join(_cond_src(x, names) for x in c.conds) + ")"
    raise TypeError(f"cannot compile condition {c!r}")


def _value_src(v: Value, vnames: _Namer, bnames: _Namer) -> str:
    if isinstance(v, ConstF):
        return repr(v.value)
    if isinstance(v, BufRead):
        idx = ", ".join(_expr_src(i, vnames) for i in v.indices)
        return f"{bnames[v.buffer.name]}[{idx}]"
    if isinstance(v, BinOp):
        return f"({_value_src(v.a, vnames, bnames)} {v.op} {_value_src(v.b, vnames, bnames)})"
    if isinstance(v, Call):
        args = ", ".join(_value_src(a, vnames, bnames) for a in v.args)
        fn = _INTRINSICS.get(v.fn)
        if fn is None:
            if v.fn == "max":
                return f"max({args})"
            if v.fn == "min":
                return f"min({args})"
            if v.fn == "sigmoid":
                inner = _value_src(v.args[0], vnames, bnames)
                return f"(1.0 / (1.0 + math.exp(-({inner}))))"
            raise TypeError(f"cannot compile intrinsic {v.fn}")
        return f"{fn}({args})"
    if isinstance(v, Select):
        return (
            f"({_value_src(v.then_value, vnames, bnames)} "
            f"if {_cond_src(v.cond, vnames)} "
            f"else {_value_src(v.else_value, vnames, bnames)})"
        )
    raise TypeError(f"cannot compile value {v!r}")


def compile_stage(stage: Stage):
    """Compile a stage into ``fn(buffers: dict) -> None``."""
    vnames = _Namer("v")
    bnames = _Namer("B")
    lines = ["def _stage(bufs):", "    import math"]
    for name in stage.buffers():
        lines.append(f"    {bnames[name]} = bufs[{name!r}]")
    indent = "    "
    for loop in stage.loops:
        lines.append(f"{indent}for {vnames[loop.var]} in range({loop.extent}):")
        indent += "    "
    out_idx = ", ".join(_expr_src(e, vnames) for e in stage.out_indices)
    out_ref = f"{bnames[stage.out.name]}[{out_idx}]"
    rhs = _value_src(stage.update, vnames, bnames)
    if stage.reduce_op == "sum":
        lines.append(f"{indent}{out_ref} += {rhs}")
    elif stage.reduce_op == "max":
        lines.append(f"{indent}{out_ref} = max({out_ref}, {rhs})")
    else:
        lines.append(f"{indent}{out_ref} = {rhs}")
    src = "\n".join(lines)
    namespace: Dict = {"math": math}
    exec(compile(src, f"<stage:{stage.name}>", "exec"), namespace)
    fn = namespace["_stage"]
    fn.__source__ = src
    return fn


def run_stage(stage: Stage, buffers: Dict[str, np.ndarray]) -> None:
    """Execute one stage in place over ``buffers``."""
    for name, buf in stage.buffers().items():
        arr = buffers.get(name)
        if arr is None:
            raise KeyError(f"missing buffer {name}")
        if tuple(arr.shape) != buf.shape:
            raise ValueError(
                f"buffer {name}: array shape {arr.shape} != {buf.shape}"
            )
    if stage.init_value is not None:
        buffers[stage.out.name].fill(stage.init_value)
    compile_stage(stage)(buffers)


def run_program(
    program: Program, inputs: Mapping[str, np.ndarray], dtype=np.float64
) -> Dict[str, np.ndarray]:
    """Run all stages in order; returns the full buffer dict.

    ``inputs`` holds *physical* arrays for graph inputs and constants; every
    other buffer is allocated as zeros.
    """
    buffers: Dict[str, np.ndarray] = {}
    for name, buf in program.buffers().items():
        if name in inputs:
            arr = np.asarray(inputs[name], dtype=dtype)
            if tuple(arr.shape) != buf.shape:
                raise ValueError(
                    f"input {name}: shape {arr.shape} != physical {buf.shape}"
                )
            buffers[name] = arr.copy()
        else:
            buffers[name] = np.zeros(buf.shape, dtype=dtype)
    for stage in program.stages:
        run_stage(stage, buffers)
    return buffers
