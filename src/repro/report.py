"""Human-readable reports for compiled models and tuning results.

Real compiler stacks ship introspection; this module renders what ALT
decided -- per-tensor layouts, per-stage cost breakdowns, fusion groups and
conversion operators -- as plain text for logs and notebooks.
"""

from __future__ import annotations

from typing import Dict, List

from .machine.latency import estimate_stage
from .obs.diagnostics import render_diagnostics, run_diagnostics
from .obs.render import timeline_report, trace_report  # noqa: F401  (re-export)
from .pipeline import CompiledModel


def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:9.2f} us"


def layout_report(model: CompiledModel, include_identity: bool = False) -> str:
    """Per-tensor physical layouts chosen by the tuner/propagation."""
    lines = [f"layouts for {model.graph.name} on {model.machine.name}:"]
    for name in sorted(model.layouts):
        lay = model.layouts[name]
        if lay.is_identity and not include_identity:
            continue
        tags = []
        if lay.has_nontrivial_advanced():
            tags.append("advanced")
        if lay.expansion_ratio() > 1.0:
            tags.append(f"{lay.expansion_ratio():.2f}x data")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        lines.append(f"  {name:28s} {lay}{suffix}")
    if len(lines) == 1:
        lines.append("  (all tensors keep their logical layout)")
    return "\n".join(lines)


def stage_cost_report(model: CompiledModel, top: int = 0) -> str:
    """Per-stage latency breakdown, most expensive first."""
    machine = model.machine
    rows: List = []
    for stage in model.program.stages:
        cost = estimate_stage(stage, machine)
        rows.append(
            (
                machine.cycles_to_seconds(cost.total_cycles),
                stage.name,
                cost.parallelism,
                stage.innermost().kind,
                model.fuse_groups.get(stage.name, "-"),
            )
        )
    rows.sort(reverse=True)
    if top:
        rows = rows[:top]
    lines = [
        f"stage costs for {model.graph.name} "
        f"(total {model.latency_s * 1e3:.4f} ms):",
        f"  {'stage':24s} {'latency':>12s} {'par':>6s} {'inner':>10s} fuse",
    ]
    for seconds, name, par, kind, group in rows:
        lines.append(
            f"  {name:24s} {_fmt_us(seconds):>12s} {par:6.1f} {kind:>10s} {group}"
        )
    return "\n".join(lines)


def tuning_report(model: CompiledModel) -> str:
    """Summary of the tuning tasks behind a compiled model."""
    lines = [f"tuning tasks for {model.graph.name}:"]
    for name, result in model.task_results.items():
        lines.append(
            f"  {name:24s} best {result.best_latency * 1e6:9.2f} us "
            f"after {result.measurements} measurements"
        )
        if result.best_layout_config:
            pretty = {
                k.split(".", 1)[-1]: v for k, v in result.best_layout_config.items()
            }
            lines.append(f"    layout config: {pretty}")
        telemetry = getattr(result, "telemetry", None)
        if telemetry:
            lines.append(
                "    measure: "
                f"{telemetry.get('fresh_evaluations', 0)} fresh evals, "
                f"{telemetry.get('cache_hit_rate', 0.0) * 100:.0f}% cache hits, "
                f"{telemetry.get('wall_time_s', 0.0):.2f}s wall"
            )
    lines.append(
        f"  conversions inserted: {model.n_conversions}; "
        f"fused stages: {len(model.fuse_groups)}"
    )
    return "\n".join(lines)


def network_report(result) -> str:
    """Human-readable summary of a whole-network tuning run.

    ``result`` is a :class:`~repro.tuning.scheduler.NetworkTuneResult`:
    the deduplicated task table with occurrence weights and the scheduler's
    budget split, then the end-to-end latency against the untuned baseline.
    """
    lines = [
        f"network tune of {result.graph_name} on {result.machine} "
        f"(budget {result.budget}, seed {result.seed}):",
        f"  {result.n_complex_nodes} complex operators deduplicated into "
        f"{len(result.reports)} tasks ({result.n_nodes} graph nodes)",
        f"  {'task':24s} {'weight':>6s} {'granted':>8s} {'spent':>6s} "
        f"{'grants':>6s} {'best':>12s}",
    ]
    for r in sorted(result.reports, key=lambda r: -r.weight * r.best_latency):
        lines.append(
            f"  {r.name:24s} {r.weight:6d} {r.granted:8d} "
            f"{r.measurements:6d} {r.grants:6d} {_fmt_us(r.best_latency):>12s}"
        )
    spent = sum(r.measurements for r in result.reports)
    lines.append(f"  budget spent: {spent}/{result.budget} measurements "
                 f"over {len(result.allocations)} grants")
    lines.append(
        f"  end-to-end: {result.network_latency_s * 1e3:.4f} ms tuned vs "
        f"{result.baseline_latency_s * 1e3:.4f} ms untuned baseline "
        f"({result.speedup:.2f}x)"
    )
    if not result.used_tuned:
        lines.append(
            "  note: tuned assembly lost to the baseline; the untuned "
            "program was kept"
        )
    if result.verified is not None:
        lines.append(
            "  numerics vs reference: "
            + ("OK" if result.verified else "MISMATCH")
        )
    return "\n".join(lines)


def full_report(model: CompiledModel, trace=None) -> str:
    """Layout + stage-cost + tuning reports; pass the run's ``Trace`` to
    append the span flamegraph, per-task tuning timeline and the
    search-quality diagnostics (cost-model rank accuracy, PPO curves)."""
    parts = [
        layout_report(model), stage_cost_report(model, top=12), tuning_report(model)
    ]
    if trace is not None:
        parts.append(trace_report(trace))
        parts.append(timeline_report(trace))
        parts.append(render_diagnostics(
            run_diagnostics(trace.events, trace.metrics.snapshot())
        ))
    return "\n\n".join(parts)
