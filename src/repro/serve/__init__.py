"""Compile-as-a-service: coordinator / worker / client for `repro serve`.

The tuning fleet splits the single-process tuner into three roles:

- :mod:`repro.serve.coordinator` -- the daemon.  Owns a job queue of
  tune requests and a :class:`~repro.serve.coordinator.FleetDispatcher`
  that leases candidate measurement batches to registered workers,
  retries/re-dispatches on worker failure, and degrades to local serial
  measurement when the fleet is empty.
- :mod:`repro.serve.worker` -- a measurement worker process.  Evaluates
  leased candidate batches with the same pure evaluation function the
  in-process measurer uses and sends heartbeats.
- :mod:`repro.serve.client` -- a thin blocking client used by
  ``repro serve tune`` / ``status`` / ``stop``.

All three speak the length-prefixed JSON frame protocol defined in
:mod:`repro.serve.protocol`.
"""

from .protocol import PROTOCOL_VERSION, ProtocolError  # noqa: F401
