"""Wire protocol for the tuning fleet: length-prefixed JSON frames.

Every message is one *frame*: a 4-byte big-endian unsigned length followed
by that many bytes of UTF-8 JSON encoding a single object (a dict with a
``"type"`` key).  The format is deliberately boring -- TVM's RPC layer uses
the same shape -- because the interesting robustness lives above it (lease
retry, eviction, dedup), not inside the framing.

Binary tuning objects (:class:`~repro.ir.compute.ComputeDef`, layouts,
schedules) ride inside frames as base64-encoded pickles via
:func:`pack_payload` / :func:`unpack_payload`; the fleet is a same-trust
single-user system (coordinator and workers run the same code from the
same checkout), which is the only setting where pickle over a socket is
acceptable.

Malformed input never crashes a peer: short reads mid-frame, oversized
lengths, non-JSON bodies and non-dict values all raise
:class:`ProtocolError`, which the coordinator turns into "drop this
connection" and a worker turns into "exit and let the supervisor respawn
me".  A clean EOF *between* frames returns ``None`` from
:func:`recv_frame` -- that is the normal way a connection ends.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any, Dict, Optional

#: bump on any incompatible change to frame semantics; peers with a
#: different version are rejected at hello time
PROTOCOL_VERSION = 1

#: hard cap on a single frame body -- a garbage length prefix (e.g. a peer
#: speaking HTTP at us) must not trigger a multi-gigabyte allocation
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")

#: frame types, coordinator <-> worker
HELLO = "hello"  # first frame on any connection, both directions' gate
WELCOME = "welcome"  # coordinator accepts the peer
REJECT = "reject"  # coordinator refuses the peer (version/role), then closes
LEASE = "lease"  # coordinator -> worker: evaluate this candidate batch
LEASE_RESULT = "lease_result"  # worker -> coordinator: latencies for a lease
LEASE_ERROR = "lease_error"  # worker -> coordinator: lease failed in-worker
HEARTBEAT = "heartbeat"  # worker -> coordinator liveness beacon

#: frame types, client <-> coordinator
SUBMIT = "submit"  # client -> coordinator: enqueue a tune job
JOB_QUEUED = "job_queued"  # coordinator ack with job id + queue position
JOB_RESULT = "job_result"  # coordinator -> client: terminal job outcome
STATUS = "status"  # client -> coordinator: fleet/queue snapshot request
STATUS_REPLY = "status_reply"
SHUTDOWN = "shutdown"  # client -> coordinator: drain and exit (CI/tests)


class ProtocolError(RuntimeError):
    """The peer violated the framing or message contract."""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialize ``message`` and write one frame; raises ``OSError`` on a
    dead socket (callers treat that as peer loss, not a protocol bug)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send oversized frame ({len(body)} bytes)"
        )
    sock.sendall(_LEN.pack(len(body)) + body)


def recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes.

    Returns ``None`` on a clean EOF before the first byte; raises
    :class:`ProtocolError` on EOF mid-read (a truncated frame).
    """
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`ProtocolError` for truncated frames, oversized lengths,
    bodies that are not JSON, and JSON values that are not objects.
    """
    header = recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}"
        )
    return message


# ---------------------------------------------------------------------------
# Payloads (pickled tuning objects inside JSON frames)
# ---------------------------------------------------------------------------

def pack_payload(obj: Any) -> str:
    """Base64-encode a pickle of ``obj`` for embedding in a frame."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def unpack_payload(blob: str) -> Any:
    try:
        return pickle.loads(base64.b64decode(blob.encode("ascii")))
    except Exception as exc:  # noqa: BLE001 - any corrupt payload is protocol abuse
        raise ProtocolError(f"undecodable payload: {exc}") from exc


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------

def hello(role: str, name: Optional[str] = None) -> Dict[str, Any]:
    """First frame either peer sends after connecting."""
    msg: Dict[str, Any] = {
        "type": HELLO,
        "version": PROTOCOL_VERSION,
        "role": role,
    }
    if name is not None:
        msg["name"] = name
    return msg


def check_hello(message: Optional[Dict[str, Any]]) -> Optional[str]:
    """Validate an incoming hello; returns a rejection reason or ``None``.

    The coordinator never trusts a connection that cannot produce a
    well-formed, version-matched hello as its very first frame.
    """
    if message is None:
        return "connection closed before hello"
    if message.get("type") != HELLO:
        return f"expected hello, got {message.get('type')!r}"
    version = message.get("version")
    if version != PROTOCOL_VERSION:
        return (
            f"protocol version mismatch: peer={version!r} "
            f"coordinator={PROTOCOL_VERSION}"
        )
    role = message.get("role")
    if role not in ("worker", "client"):
        return f"unknown role {role!r}"
    if role == "worker" and not isinstance(message.get("name"), str):
        return "worker hello missing a name"
    return None
