"""Thin blocking client for the `repro serve` coordinator.

Used by ``repro serve tune`` / ``status`` / ``stop`` and by tests; the
protocol is simple enough that anything speaking length-prefixed JSON
frames (:mod:`repro.serve.protocol`) can drive the daemon directly.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional, Tuple

from . import protocol


def parse_addr(spec: str) -> Tuple[str, int]:
    """``host:port`` (or bare ``:port`` for localhost) -> address tuple."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"address {spec!r} is not host:port")
    return (host or "127.0.0.1", int(port))


def connect(
    addr: Tuple[str, int],
    timeout: float = 10.0,
    retries: int = 0,
    retry_delay: float = 0.2,
) -> socket.socket:
    """Open a client connection and complete the hello/welcome handshake.

    ``retries`` extra attempts are made when the TCP connect itself fails
    (coordinator not up yet / transient refusal), with exponential backoff
    starting at ``retry_delay`` seconds.  Handshake rejections and protocol
    errors are **not** retried: the daemon is reachable and said no --
    retrying would just repeat the answer.
    """
    attempt = 0
    while True:
        try:
            sock = socket.create_connection(addr, timeout=timeout)
        except OSError:
            if attempt >= retries:
                raise
            time.sleep(retry_delay * (2 ** attempt))
            attempt += 1
            continue
        try:
            protocol.send_frame(sock, protocol.hello("client"))
            reply = protocol.recv_frame(sock)
            if reply is None or reply.get("type") != protocol.WELCOME:
                reason = (reply or {}).get("reason", "connection closed")
                raise ConnectionError(f"coordinator rejected client: {reason}")
            sock.settimeout(None)
            return sock
        except BaseException:
            sock.close()
            raise


def submit_and_wait(
    addr: Tuple[str, int],
    job: Dict[str, Any],
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Enqueue one tune job and block until its terminal ``job_result``.

    Raises ``ValueError`` if the coordinator refuses the job and
    ``ConnectionError``/``TimeoutError`` if the daemon goes away first --
    the run registry still has the result if the job completed.
    """
    sock = connect(addr)
    try:
        sock.settimeout(timeout)
        protocol.send_frame(sock, {"type": protocol.SUBMIT, "job": job})
        ack = protocol.recv_frame(sock)
        if ack is None:
            raise ConnectionError("coordinator closed before acknowledging")
        if ack.get("type") == protocol.JOB_QUEUED and not ack.get("ok", True):
            raise ValueError(f"job refused: {ack.get('error')}")
        while True:
            frame = protocol.recv_frame(sock)
            if frame is None:
                raise ConnectionError("coordinator closed mid-job")
            if frame.get("type") == protocol.JOB_RESULT:
                return frame
    finally:
        sock.close()


def fetch_status(addr: Tuple[str, int],
                 timeout: float = 10.0) -> Dict[str, Any]:
    sock = connect(addr, timeout=timeout)
    try:
        sock.settimeout(timeout)
        protocol.send_frame(sock, {"type": protocol.STATUS})
        while True:
            frame = protocol.recv_frame(sock)
            if frame is None:
                raise ConnectionError("coordinator closed during status")
            if frame.get("type") == protocol.STATUS_REPLY:
                return frame.get("status") or {}
    finally:
        sock.close()


def request_shutdown(addr: Tuple[str, int], timeout: float = 10.0) -> bool:
    """Ask the daemon to stop; True if it acknowledged."""
    try:
        sock = connect(addr, timeout=timeout)
    except (OSError, ConnectionError):
        return False  # already down
    try:
        sock.settimeout(timeout)
        protocol.send_frame(sock, {"type": protocol.SHUTDOWN})
        frame = protocol.recv_frame(sock)
        return bool(frame and frame.get("ok"))
    except (OSError, protocol.ProtocolError):
        return False
    finally:
        sock.close()
