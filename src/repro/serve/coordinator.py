"""The `repro serve` coordinator: job queue + candidate-lease dispatcher.

Architecture (the TVM RPC-tracker shape, collapsed into one daemon):

- A TCP listener accepts *workers* (which register and then evaluate
  leased candidate batches) and *clients* (which submit tune jobs and
  block for results).  Every connection starts with a version-checked
  hello; a connection that cannot produce one is rejected without
  disturbing anything else.
- Jobs run strictly one at a time from a FIFO queue (determinism beats
  throughput at the job level -- parallelism lives *inside* a job, in
  candidate measurement).  Each job is recorded in the run registry
  exactly like a local ``repro tune --run-store`` run: manifest, streamed
  trace, watchdog health, checkpoint -- which is what makes the
  coordinator crash-safe: kill it mid-job and ``repro serve --resume``
  picks the job up from its checkpoint, bit-identically.
- The :class:`FleetDispatcher` is the measurement engine's fleet backend:
  the in-process :class:`~repro.tuning.measurer.Measurer` hands it
  ``(candidates, indices)`` and gets back latencies plus the indices it
  must evaluate locally.  Batches are chunked into *leases*; a lease is
  dispatched to an idle worker, re-dispatched with bounded exponential
  backoff when the worker dies / times out / errors, quarantined as
  ``inf`` after ``max_lease_retries`` (the measurer's own convention),
  and deduped by an idempotency key when a stale worker completes it
  twice.  When the fleet is empty the dispatcher *degrades*: the measurer
  evaluates locally, serially -- a request never fails -- and the sticky
  degraded flag heals the moment a worker (re-)registers.

Determinism argument, spelled out because CI enforces it: candidate
evaluation is a pure function of ``(comp, machine, layouts, schedule)``;
crash/timeout/error faults never produce a *value*, they only force a
retry or a re-dispatch, and the local serial fallback computes exactly
what a worker would have; the measurer merges latencies by submission
index.  Hence a tune through a flaky fleet, through a healthy fleet, and
through no fleet at all are bit-identical (``flaky`` faults excepted --
they perturb values by design and stay out of determinism gates).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
import os
import queue
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.log import log
from ..obs.runstore import (
    LEASES_FILE,
    STATUS_COMPLETED,
    STATUS_FAILED,
    TRACE_FILE,
    RunRecord,
    RunStore,
    RunWriter,
    task_result_dict,
    trace_meta,
)
from ..obs.trace import Trace
from ..obs.watch import Watchdog, WatchRules
from ..tuning.checkpoint import CheckpointError, CheckpointManager, load_checkpoint
from ..tuning.measurer import (
    MeasureOptions,
    comp_fingerprint,
    machine_fingerprint,
)
from . import protocol

#: cap on a single lease-retry backoff sleep, seconds
_LEASE_BACKOFF_CAP_S = 2.0


@dataclass
class ServeOptions:
    """Coordinator knobs (``repro serve start`` flags map 1:1).

    ``lease_size``          candidates per lease; batches amortize the
                            socket round-trip (evaluation is ~1-2ms per
                            candidate, a frame exchange ~0.1ms)
    ``lease_timeout_s``     a worker holding a lease past this is evicted
                            and the lease re-dispatched
    ``heartbeat_timeout_s`` a worker silent past this is evicted
    ``max_lease_retries``   re-dispatches a lease gets before its
                            candidates are quarantined as ``inf``
    ``backoff_s``           base of the bounded exponential backoff
                            between re-dispatches of the same lease
    ``degrade_wait_s``      grace the dispatcher waits for a worker to
                            (re-)register before degrading to local
                            serial measurement
    ``device_ms``           simulated per-candidate device occupancy on
                            workers: models the on-accelerator execution
                            a real fleet overlaps (0 = off; the scaling
                            bench relies on it -- see ``serve bench``)
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read back from Coordinator.port
    lease_size: int = 8
    lease_timeout_s: float = 30.0
    heartbeat_timeout_s: float = 10.0
    max_lease_retries: int = 5
    backoff_s: float = 0.05
    degrade_wait_s: float = 2.0
    device_ms: float = 0.0


class _WorkerHandle:
    """Coordinator-side state for one registered worker connection."""

    def __init__(self, name: str, sock: socket.socket):
        self.name = name
        self.sock = sock
        self.alive = True
        self.last_heartbeat = time.monotonic()
        self.lease: Optional["_Lease"] = None
        self.send_lock = threading.Lock()


class _Lease:
    """One dispatched slice of a measurement batch."""

    __slots__ = (
        "id", "key", "indices", "payload", "attempts", "worker",
        "deadline", "not_before", "done", "quarantined", "latencies",
    )

    def __init__(self, lease_id: int, key: str, indices: List[int],
                 payload: str):
        self.id = lease_id
        self.key = key  # idempotency: (task fingerprint, candidate hashes)
        self.indices = indices
        self.payload = payload
        self.attempts = 0
        self.worker: Optional[_WorkerHandle] = None
        self.deadline = math.inf
        self.not_before = 0.0  # backoff gate for re-dispatch
        self.done = False
        self.quarantined = False
        self.latencies: Optional[List[float]] = None


class LeaseLog:
    """Append-only ``leases.jsonl`` grant log inside a run directory.

    The fleet analog of the network tuner's ``allocations.jsonl``: one row
    per lease-lifecycle step (register/dispatch/complete/retry/quarantine/
    evict/degrade), consumed by ``repro runs show`` for the per-worker
    stats table.  Best-effort: a write failure never gates a run.
    """

    def __init__(self, run_dir: str):
        self.path = os.path.join(run_dir, LEASES_FILE)
        try:
            self._f = open(self.path, "a")
        except OSError:
            self._f = None

    def row(self, event: str, **attrs: Any) -> None:
        if self._f is None:
            return
        rec = {"ts": time.time(), "event": event}
        rec.update({k: v for k, v in attrs.items() if v is not None})
        try:
            self._f.write(json.dumps(rec) + "\n")
            self._f.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._f is not None:
            try:
                self._f.close()
            except OSError:
                pass
            self._f = None


class FleetDispatcher:
    """Leases measurement batches to the worker fleet; heals around it.

    All mutable state is guarded by one condition variable.  Worker
    receiver threads and the heartbeat monitor only *record* state changes
    (completions, evictions) and enqueue trace events; the job thread
    inside :meth:`evaluate` drains events, writes lease-log rows and emits
    into the (single-threaded) trace stream, so the run's artifacts are
    written from exactly one thread.
    """

    def __init__(self, options: Optional[ServeOptions] = None):
        self.options = options or ServeOptions()
        self._cond = threading.Condition()
        self._workers: Dict[str, _WorkerHandle] = {}
        #: lifetime per-worker stats, survive eviction and re-admission
        self._stats: Dict[str, Dict[str, int]] = {}
        self._lease_seq = itertools.count(1)
        self._active: Dict[int, _Lease] = {}
        #: idempotency keys completed in the *current* batch only; cleared
        #: when evaluate() finishes.  Keys are deterministic hashes of
        #: (task fingerprint, candidate keys), so a second job with the
        #: same op/seed/machine regenerates them -- a lifetime set would
        #: drop every fresh completion of the repeat job as a duplicate
        #: (and grow without bound in a long-running daemon)
        self._completed_keys: set = set()
        self._degraded = False  # sticky until a worker (re-)registers
        self._measurer = None  # bound while a job's evaluate() runs
        self._events: List[Tuple[str, Dict[str, Any]]] = []
        self._trace: Optional[Trace] = None
        self._lease_log: Optional[LeaseLog] = None
        self._batch_task_payload: str = ""
        self.counters: Dict[str, int] = {
            "workers_registered": 0,
            "workers_evicted": 0,
            "leases_dispatched": 0,
            "leases_completed": 0,
            "lease_retries": 0,
            "lease_quarantined": 0,
            "duplicate_completions": 0,
            "stale_results": 0,
            "degraded_batches": 0,
        }

    # -- per-job binding ----------------------------------------------------
    def bind_run(self, trace: Optional[Trace],
                 lease_log: Optional[LeaseLog]) -> None:
        """Point trace events and the lease log at the active job's run."""
        with self._cond:
            self._trace = trace
            self._lease_log = lease_log
            # announce the current fleet into the new run's stream so its
            # watchdog starts from the true worker count
            for w in self._workers.values():
                if w.alive:
                    self._events.append(
                        ("worker_registered", {"worker": w.name,
                                               "rejoined": True}))

    def unbind_run(self) -> None:
        with self._cond:
            self._drain_events_locked()
            if self._lease_log is not None:
                self._lease_log.close()
            self._trace = None
            self._lease_log = None

    # -- worker registry ----------------------------------------------------
    def register_worker(self, name: str, sock: socket.socket) -> None:
        """Admit (or re-admit) a worker and start its receiver thread."""
        with self._cond:
            old = self._workers.get(name)
            if old is not None and old.alive:
                # a reconnect under a live name supersedes the old
                # connection (its socket is stale); evict it first
                self._evict_locked(old, "superseded")
            handle = _WorkerHandle(name, sock)
            self._workers[name] = handle
            stats = self._stats.setdefault(name, {
                "dispatched": 0, "completed": 0, "retried": 0, "evicted": 0,
            })
            stats["registrations"] = stats.get("registrations", 0) + 1
            self.counters["workers_registered"] += 1
            if self._degraded:
                self._degraded = False
                self._events.append(("fleet_restored", {"worker": name}))
            self._events.append(("worker_registered", {"worker": name}))
            self._row("register", worker=name)
            self._cond.notify_all()
        log.info("serve: worker %s registered", name)
        t = threading.Thread(
            target=self._receiver_loop, args=(handle,), daemon=True,
            name=f"serve-recv-{name}",
        )
        t.start()

    def live_workers(self) -> int:
        with self._cond:
            return sum(1 for w in self._workers.values() if w.alive)

    @property
    def degraded(self) -> bool:
        with self._cond:
            return self._degraded

    def worker_stats(self) -> Dict[str, Dict[str, int]]:
        with self._cond:
            out = {}
            for name, stats in sorted(self._stats.items()):
                d = dict(stats)
                w = self._workers.get(name)
                d["alive"] = bool(w is not None and w.alive)
                out[name] = d
            return out

    def check_heartbeats(self, now: Optional[float] = None) -> None:
        """Evict workers silent past the heartbeat timeout."""
        now = time.monotonic() if now is None else now
        with self._cond:
            for w in list(self._workers.values()):
                if w.alive and (
                    now - w.last_heartbeat > self.options.heartbeat_timeout_s
                ):
                    self._evict_locked(w, "heartbeat")

    def start_monitor(self, stop: threading.Event) -> threading.Thread:
        interval = max(self.options.heartbeat_timeout_s / 4.0, 0.05)

        def loop():
            while not stop.wait(interval):
                self.check_heartbeats()

        t = threading.Thread(target=loop, daemon=True, name="serve-monitor")
        t.start()
        return t

    # -- receiver side ------------------------------------------------------
    def _receiver_loop(self, worker: _WorkerHandle) -> None:
        reason = "disconnect"
        try:
            while True:
                frame = protocol.recv_frame(worker.sock)
                if frame is None:
                    break
                kind = frame.get("type")
                if kind == protocol.HEARTBEAT:
                    with self._cond:
                        worker.last_heartbeat = time.monotonic()
                elif kind == protocol.LEASE_RESULT:
                    self._on_lease_result(worker, frame)
                elif kind == protocol.LEASE_ERROR:
                    self._on_lease_error(worker, frame)
                # unknown frame types from a registered worker are ignored
        except protocol.ProtocolError as exc:
            reason = f"protocol: {exc}"
        except OSError:
            reason = "socket"
        except Exception as exc:  # a bad frame must never leak the thread
            reason = f"receiver error: {exc!r}"
            log.warning("serve: receiver for %s died: %r", worker.name, exc)
        with self._cond:
            if worker.alive:
                self._evict_locked(worker, reason)

    @staticmethod
    def _lease_id(frame: Dict[str, Any]) -> Optional[int]:
        """Lease ids are ints; anything else (e.g. an unhashable JSON
        array from a broken worker) is treated as an unknown lease."""
        lease_id = frame.get("lease")
        return lease_id if isinstance(lease_id, int) else None

    def _on_lease_result(self, worker: _WorkerHandle,
                         frame: Dict[str, Any]) -> None:
        lease_id = self._lease_id(frame)
        raw = frame.get("latencies")
        latencies = [
            float(v) if v is not None else math.inf
            for v in (raw if isinstance(raw, list) else [])
        ]
        with self._cond:
            lease = self._active.get(lease_id)
            if lease is None or lease.done or lease.key in self._completed_keys:
                # a stale worker finishing a lease that was already
                # re-dispatched and completed elsewhere: idempotent drop
                self.counters["duplicate_completions"] += 1
                self._events.append(("lease_duplicate", {
                    "lease": lease_id, "worker": worker.name,
                }))
                self._row("duplicate", lease=lease_id, worker=worker.name)
                return
            if lease.worker is not worker:
                # the lease is live but owned by another worker now (this
                # sender was evicted and re-admitted mid-lease): its
                # result is valid *data* (evaluation is pure) but the
                # owning dispatch is the one we account; drop as stale
                self.counters["stale_results"] += 1
                self._events.append(("lease_stale", {
                    "lease": lease_id, "worker": worker.name,
                }))
                self._row("stale", lease=lease_id, worker=worker.name)
                return
            if len(latencies) != len(lease.indices):
                self._fail_lease_locked(lease, "short result", charge=True)
                self._release_worker_locked(worker, lease)
                self._cond.notify_all()
                return
            lease.latencies = latencies
            lease.done = True
            self._completed_keys.add(lease.key)
            self.counters["leases_completed"] += 1
            stats = self._stats.get(worker.name)
            if stats is not None:
                stats["completed"] += 1
            faults = frame.get("faults")
            if isinstance(faults, dict) and self._measurer is not None:
                self._measurer.absorb_remote_counters(
                    faults, worker=worker.name
                )
            self._release_worker_locked(worker, lease)
            self._events.append(("lease_complete", {
                "lease": lease.id, "worker": worker.name,
                "n": len(lease.indices), "attempts": lease.attempts + 1,
            }))
            self._row("complete", lease=lease.id, worker=worker.name,
                      n=len(lease.indices))
            self._cond.notify_all()

    def _on_lease_error(self, worker: _WorkerHandle,
                        frame: Dict[str, Any]) -> None:
        lease_id = self._lease_id(frame)
        kind = str(frame.get("kind") or "WorkerError")
        message = str(frame.get("message") or "")
        with self._cond:
            if self._measurer is not None:
                self._measurer.note_remote_error(
                    kind, message, worker=worker.name
                )
            lease = self._active.get(lease_id)
            if lease is None or lease.done or lease.worker is not worker:
                self.counters["stale_results"] += 1
                return
            self._fail_lease_locked(lease, f"worker error: {kind}",
                                    charge=True)
            self._release_worker_locked(worker, lease)
            self._cond.notify_all()

    def _release_worker_locked(self, worker: _WorkerHandle,
                               lease: _Lease) -> None:
        if worker.lease is lease:
            worker.lease = None

    # -- eviction -----------------------------------------------------------
    def _evict_locked(self, worker: _WorkerHandle, reason: str) -> None:
        if not worker.alive:
            return
        worker.alive = False
        try:
            worker.sock.close()
        except OSError:
            pass
        stats = self._stats.get(worker.name)
        if stats is not None:
            stats["evicted"] += 1
        self.counters["workers_evicted"] += 1
        lease = worker.lease
        worker.lease = None
        if lease is not None and not lease.done:
            # the lease died with its worker; an eviction for cause
            # (timeout, crash, protocol abuse) charges the attempt, a
            # supersede/shutdown does not
            charge = reason not in ("superseded", "shutdown")
            self._fail_lease_locked(lease, f"evicted: {reason}", charge=charge)
        self._events.append(("worker_evicted", {
            "worker": worker.name, "reason": reason,
        }))
        self._row("evict", worker=worker.name, reason=reason)
        log.warning("serve: worker %s evicted (%s)", worker.name, reason)
        self._cond.notify_all()

    def _fail_lease_locked(self, lease: _Lease, reason: str,
                           charge: bool) -> None:
        """Requeue (with backoff) or quarantine a failed lease."""
        holder = lease.worker.name if lease.worker is not None else None
        lease.worker = None
        lease.deadline = math.inf
        if not charge:
            return
        lease.attempts += 1
        if lease.attempts > self.options.max_lease_retries:
            lease.quarantined = True
            lease.done = True
            self.counters["lease_quarantined"] += 1
            self._events.append(("lease_quarantined", {
                "lease": lease.id, "n": len(lease.indices), "reason": reason,
            }))
            self._row("quarantine", lease=lease.id, n=len(lease.indices),
                      reason=reason, worker=holder)
            return
        self.counters["lease_retries"] += 1
        lease.not_before = time.monotonic() + min(
            self.options.backoff_s * 2 ** (lease.attempts - 1),
            _LEASE_BACKOFF_CAP_S,
        )
        self._events.append(("lease_retry", {
            "lease": lease.id, "attempt": lease.attempts, "reason": reason,
        }))
        self._row("retry", lease=lease.id, attempt=lease.attempts,
                  reason=reason, worker=holder)

    # -- event / log plumbing (job thread only) -----------------------------
    def _row(self, event: str, **attrs: Any) -> None:
        if self._lease_log is not None:
            self._lease_log.row(event, **attrs)

    def _drain_events_locked(self) -> None:
        events, self._events = self._events, []
        trace = self._trace
        if trace is None:
            return
        for name, attrs in events:
            trace.event(name, **attrs)

    def drain_events(self) -> None:
        with self._cond:
            self._drain_events_locked()

    # -- the measurement backend -------------------------------------------
    def evaluate(
        self, measurer, candidates: Sequence, idxs: List[int],
    ) -> Tuple[Dict[int, float], List[int]]:
        """Evaluate ``candidates[i] for i in idxs`` on the fleet.

        Returns ``(latencies-by-index, leftover-indices)``; leftover goes
        to the measurer's local serial path (the degradation ladder's last
        rung) and is empty whenever the fleet finished the batch.
        """
        if not idxs:
            return {}, []
        opts = self.options
        task = measurer.task
        leases: List[_Lease] = []
        with self._cond:
            self._measurer = measurer
        try:
            if not self._await_fleet(task):
                self.counters["degraded_batches"] += 1
                return {}, list(idxs)
            leases = self._build_leases(measurer, candidates, idxs)
            return self._pump(measurer, task, leases, opts)
        finally:
            with self._cond:
                for lease in leases:
                    self._active.pop(lease.id, None)
                self._completed_keys.clear()
                self._measurer = None
                self._drain_events_locked()

    def _await_fleet(self, task) -> bool:
        """Wait briefly for a live worker; False = degrade this batch."""
        deadline = time.monotonic() + self.options.degrade_wait_s
        with self._cond:
            while not any(w.alive for w in self._workers.values()):
                if self._degraded:
                    return False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._degraded = True
                    self._events.append(("fleet_degraded", {
                        "task": task.comp.name,
                    }))
                    self._row("degrade", task=task.comp.name)
                    log.warning(
                        "serve: fleet empty; degrading to local serial "
                        "measurement (heals on worker registration)"
                    )
                    return False
                self._cond.wait(timeout=min(remaining, 0.1))
        return True

    def _build_leases(self, measurer, candidates: Sequence,
                      idxs: List[int]) -> List[_Lease]:
        task = measurer.task
        task_payload = protocol.pack_payload((task.comp, task.machine))
        task_fp = hashlib.sha256(
            (machine_fingerprint(task.machine) + comp_fingerprint(task.comp))
            .encode("utf-8")
        ).hexdigest()[:16]
        leases = []
        size = max(self.options.lease_size, 1)
        with self._cond:
            for start in range(0, len(idxs), size):
                chunk = idxs[start:start + size]
                cand_keys = [
                    measurer._candidate_key(*candidates[i]) for i in chunk
                ]
                key = hashlib.sha256(
                    (task_fp + ":" + ":".join(cand_keys)).encode("utf-8")
                ).hexdigest()[:24]
                lease = _Lease(
                    next(self._lease_seq), key, chunk,
                    protocol.pack_payload([candidates[i] for i in chunk]),
                )
                self._active[lease.id] = lease
                leases.append(lease)
        # every lease of this batch shares the task payload; stash it once
        self._batch_task_payload = task_payload
        return leases

    def _pump(self, measurer, task, leases: List[_Lease],
              opts: ServeOptions) -> Tuple[Dict[int, float], List[int]]:
        out: Dict[int, float] = {}
        reaped: set = set()
        while True:
            sends: List[Tuple[_WorkerHandle, Dict[str, Any]]] = []
            with self._cond:
                now = time.monotonic()
                # 1. reap finished leases
                for lease in leases:
                    if lease.done and lease.id not in reaped:
                        reaped.add(lease.id)
                        if lease.quarantined:
                            for i in lease.indices:
                                measurer._quarantine(i, out)
                        else:
                            for i, lat in zip(lease.indices, lease.latencies):
                                out[i] = lat
                                measurer.metrics.counter(
                                    "measure.fleet_evaluations").inc()
                # 2. expire overdue leases by evicting their holder (the
                #    worker is wedged or gone; only eviction frees the slot)
                for lease in leases:
                    if (not lease.done and lease.worker is not None
                            and now > lease.deadline):
                        holder = lease.worker
                        measurer.note_remote_error(
                            "LeaseTimeout",
                            f"lease {lease.id} overdue on {holder.name}",
                            worker=holder.name,
                        )
                        self._evict_locked(holder, "lease_timeout")
                self._drain_events_locked()
                if all(lease.done for lease in leases):
                    break
                # 3. dispatch eligible pending leases to idle workers
                idle = [
                    w for w in self._workers.values()
                    if w.alive and w.lease is None
                ]
                pending = [
                    lease for lease in leases
                    if not lease.done and lease.worker is None
                    and lease.not_before <= now
                ]
                for worker, lease in zip(idle, pending):
                    lease.worker = worker
                    lease.deadline = now + opts.lease_timeout_s
                    worker.lease = lease
                    self.counters["leases_dispatched"] += 1
                    stats = self._stats.get(worker.name)
                    if stats is not None:
                        stats["dispatched"] += 1
                        if lease.attempts:
                            stats["retried"] += 1
                    self._events.append(("lease_dispatch", {
                        "lease": lease.id, "worker": worker.name,
                        "n": len(lease.indices), "attempt": lease.attempts,
                        "task": task.comp.name,
                    }))
                    self._row("dispatch", lease=lease.id, worker=worker.name,
                              n=len(lease.indices), attempt=lease.attempts,
                              task=task.comp.name)
                    sends.append((worker, {
                        "type": protocol.LEASE,
                        "lease": lease.id,
                        "key": lease.key,
                        "task": self._batch_task_payload,
                        "candidates": lease.payload,
                        "device_ms": opts.device_ms,
                    }))
                self._drain_events_locked()
                if not sends:
                    # nothing to do until a completion, an eviction, a
                    # deadline or a backoff gate opens
                    if not any(w.alive for w in self._workers.values()):
                        undone = [
                            i for lease in leases if not lease.done
                            for i in lease.indices
                        ]
                        if undone and not self._await_fleet_locked():
                            # fleet collapsed mid-batch: hand the rest to
                            # the local serial path
                            self.counters["degraded_batches"] += 1
                            for lease in leases:
                                if not lease.done:
                                    lease.done = True  # abandoned
                            self._drain_events_locked()
                            return out, undone
                        continue
                    self._cond.wait(timeout=self._next_wakeup(leases, now))
            for worker, frame in sends:
                try:
                    with worker.send_lock:
                        protocol.send_frame(worker.sock, frame)
                except (OSError, protocol.ProtocolError):
                    with self._cond:
                        # never reached the worker: requeue unpenalized
                        lease = worker.lease
                        if lease is not None:
                            self._fail_lease_locked(
                                lease, "send failed", charge=False)
                            worker.lease = None
                        self._evict_locked(worker, "socket")
        with self._cond:
            self._drain_events_locked()
        return out, []

    def _await_fleet_locked(self) -> bool:
        """Mid-batch variant of :meth:`_await_fleet`; lock already held."""
        deadline = time.monotonic() + self.options.degrade_wait_s
        while not any(w.alive for w in self._workers.values()):
            if self._degraded:
                return False
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._degraded = True
                self._events.append(("fleet_degraded", {}))
                self._row("degrade")
                log.warning(
                    "serve: fleet collapsed mid-batch; finishing locally"
                )
                return False
            self._cond.wait(timeout=min(remaining, 0.1))
        return True

    def _next_wakeup(self, leases: List[_Lease], now: float) -> float:
        """Sleep until the nearest deadline / backoff gate, capped for
        responsiveness to completions (which notify anyway)."""
        horizon = 0.25
        for lease in leases:
            if lease.done:
                continue
            if lease.worker is not None and math.isfinite(lease.deadline):
                horizon = min(horizon, max(lease.deadline - now, 0.01))
            elif lease.worker is None and lease.not_before > now:
                horizon = min(horizon, max(lease.not_before - now, 0.01))
        return horizon

    def shutdown_workers(self) -> None:
        with self._cond:
            workers = [w for w in self._workers.values() if w.alive]
        for w in workers:
            try:
                with w.send_lock:
                    protocol.send_frame(w.sock, {"type": protocol.SHUTDOWN})
            except (OSError, protocol.ProtocolError):
                pass
        with self._cond:
            for w in workers:
                if w.alive:
                    self._evict_locked(w, "shutdown")


# ---------------------------------------------------------------------------
# Local worker supervisor
# ---------------------------------------------------------------------------

class LocalFleet:
    """Spawns and resurrects local worker processes (``--workers N``).

    Workers are real subprocesses (``python -m repro serve worker``): an
    injected crash kills an actual process and the coordinator sees a real
    socket EOF.  The monitor thread respawns dead workers under the same
    name with a bumped ``generation`` (mixed into the fault seed so the
    respawn doesn't replay its predecessor's crash), which is how evicted
    workers re-admit themselves.
    """

    def __init__(
        self,
        host: str,
        port: int,
        count: int,
        fault_spec: Optional[str] = None,
        respawn: bool = True,
        max_respawns: int = 50,
        name_prefix: str = "w",
    ):
        self.host = host
        self.port = port
        self.count = count
        self.fault_spec = fault_spec
        self.respawn = respawn
        self.max_respawns = max_respawns
        self.name_prefix = name_prefix
        self._procs: Dict[str, subprocess.Popen] = {}
        self._generations: Dict[str, int] = {}
        self._respawns = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "LocalFleet":
        for k in range(self.count):
            self._spawn(f"{self.name_prefix}{k}", 0)
        self._thread = threading.Thread(
            target=self._monitor, daemon=True, name="serve-fleet"
        )
        self._thread.start()
        return self

    def _spawn(self, name: str, generation: int) -> None:
        import repro

        src_root = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd = [
            sys.executable, "-m", "repro", "serve", "worker",
            "--connect", f"{self.host}:{self.port}",
            "--name", name, "--generation", str(generation),
        ]
        if self.fault_spec:
            cmd += ["--inject-faults", self.fault_spec]
        self._procs[name] = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        self._generations[name] = generation

    def _monitor(self) -> None:
        while not self._stop.wait(0.2):
            for name, proc in list(self._procs.items()):
                if proc.poll() is None:
                    continue
                if not self.respawn or self._respawns >= self.max_respawns:
                    continue
                self._respawns += 1
                gen = self._generations.get(name, 0) + 1
                log.info("serve: respawning worker %s (generation %d)",
                         name, gen)
                self._spawn(name, gen)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()


# ---------------------------------------------------------------------------
# The coordinator daemon
# ---------------------------------------------------------------------------

def _build_single_op(kind: str, channels: int, size: int):
    from ..cli import _single_op  # deferred: cli imports this module

    return _single_op(kind, channels, size)


class Coordinator:
    """``repro serve start``: listener + job queue + fleet dispatcher."""

    def __init__(
        self,
        store_root: Optional[str] = None,
        options: Optional[ServeOptions] = None,
        watch_rules: Optional[WatchRules] = None,
        checkpoint_every: int = 1,
        max_jobs: Optional[int] = None,
    ):
        self.options = options or ServeOptions()
        self.store = RunStore(store_root) if store_root else None
        self.dispatcher = FleetDispatcher(self.options)
        self.watch_rules = watch_rules
        self.checkpoint_every = max(checkpoint_every, 1)
        self.max_jobs = max_jobs
        self.port: Optional[int] = None
        self._jobs: "queue.Queue" = queue.Queue()
        self._job_seq = itertools.count(1)
        self._jobs_done = 0
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self.last_error: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Coordinator":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.options.host, self.options.port))
        listener.listen(32)
        self._listener = listener
        self.port = listener.getsockname()[1]
        log.info("serve: coordinator listening on %s:%d",
                 self.options.host, self.port)
        for target, name in (
            (self._accept_loop, "serve-accept"),
            (self._runner_loop, "serve-runner"),
        ):
            t = threading.Thread(target=target, daemon=True, name=name)
            t.start()
            self._threads.append(t)
        self.dispatcher.start_monitor(self._stop)
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the coordinator stops; True if it did."""
        return self._stop.wait(timeout)

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        self.dispatcher.shutdown_workers()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self._jobs.put(None)  # unblock the runner

    # -- resume -------------------------------------------------------------
    def enqueue_resumable(self) -> int:
        """Re-enqueue interrupted serve jobs from the run registry.

        A coordinator killed mid-job left a ``status: running`` manifest
        with a checkpoint; rebuilding the job from its recorded config and
        restoring the tuner snapshot continues it bit-identically (the
        checkpoint subsystem's invariant, enforced by the tests).
        """
        if self.store is None:
            return 0
        count = 0
        ids, _skipped = self.store.scan()
        for run_id in ids:
            rec = RunRecord(os.path.join(self.store.root, run_id))
            config = rec.manifest.get("config") or {}
            if not config.get("serve_job") or not rec.resumable:
                continue
            try:
                payload = load_checkpoint(rec.checkpoint_path)
            except CheckpointError as exc:
                log.warning("serve: cannot resume %s: %s", run_id, exc)
                continue
            job = {k: config[k] for k in (
                "op", "channels", "size", "budget", "seed", "machine",
                "no_cache",
            ) if k in config}
            log.info("serve: resuming interrupted job %s", run_id)
            self._jobs.put({
                "job": job, "conn": None, "job_id": f"resume-{run_id}",
                "restore": payload, "rec": rec,
            })
            count += 1
        return count

    # -- accept / client side ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            t = threading.Thread(
                target=self._handshake, args=(conn,), daemon=True,
                name="serve-handshake",
            )
            t.start()

    def _handshake(self, conn: socket.socket) -> None:
        """First-frame gate: a malformed or mismatched peer is rejected
        and dropped; the coordinator itself never cares."""
        try:
            conn.settimeout(10.0)
            try:
                first = protocol.recv_frame(conn)
            except protocol.ProtocolError as exc:
                self._reject(conn, str(exc))
                return
            error = protocol.check_hello(first)
            if error is not None:
                self._reject(conn, error)
                return
            conn.settimeout(None)
            protocol.send_frame(conn, {"type": protocol.WELCOME,
                                       "version": protocol.PROTOCOL_VERSION})
            if first["role"] == "worker":
                self.dispatcher.register_worker(first["name"], conn)
            else:
                self._client_loop(conn)
        except OSError:
            try:
                conn.close()
            except OSError:
                pass

    def _reject(self, conn: socket.socket, reason: str) -> None:
        log.warning("serve: rejecting connection: %s", reason)
        try:
            protocol.send_frame(conn, {"type": protocol.REJECT,
                                       "reason": reason})
        except (OSError, protocol.ProtocolError):
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _client_loop(self, conn: socket.socket) -> None:
        # the runner thread sends JOB_RESULT on this same socket while this
        # loop may be answering STATUS; a shared lock keeps the
        # length-prefixed frame stream whole (workers get theirs in
        # _WorkerHandle.send_lock)
        send_lock = threading.Lock()
        while not self._stop.is_set():
            try:
                frame = protocol.recv_frame(conn)
            except protocol.ProtocolError as exc:
                log.warning("serve: dropping client: %s", exc)
                break
            if frame is None:
                break
            kind = frame.get("type")
            if kind == protocol.SUBMIT:
                self._handle_submit(conn, send_lock, frame)
            elif kind == protocol.STATUS:
                with send_lock:
                    protocol.send_frame(conn, {
                        "type": protocol.STATUS_REPLY,
                        "status": self.status(),
                    })
            elif kind == protocol.SHUTDOWN:
                with send_lock:
                    protocol.send_frame(conn, {"type": protocol.SHUTDOWN,
                                               "ok": True})
                self.stop()
                break
        try:
            conn.close()
        except OSError:
            pass

    def _handle_submit(self, conn: socket.socket, send_lock: threading.Lock,
                       frame: Dict[str, Any]) -> None:
        job = frame.get("job")
        error = self._validate_job(job)
        if error is not None:
            with send_lock:
                protocol.send_frame(conn, {
                    "type": protocol.JOB_QUEUED, "ok": False, "error": error,
                })
            return
        job_id = f"job-{next(self._job_seq)}"
        self._jobs.put({"job": dict(job), "conn": conn, "job_id": job_id,
                        "send_lock": send_lock, "restore": None, "rec": None})
        with send_lock:
            protocol.send_frame(conn, {
                "type": protocol.JOB_QUEUED, "ok": True, "job_id": job_id,
                "position": self._jobs.qsize(),
            })

    @staticmethod
    def _validate_job(job: Any) -> Optional[str]:
        if not isinstance(job, dict):
            return "job must be an object"
        if job.get("kind", "tune") != "tune":
            return f"unsupported job kind {job.get('kind')!r}"
        op = job.get("op")
        if op not in ("gmm", "c2d", "c1d", "c3d", "dep"):
            return f"unknown operator {op!r}"
        for key, default in (("budget", 96), ("seed", 0),
                             ("channels", 8), ("size", 16)):
            value = job.get(key, default)
            if not isinstance(value, int) or value < 0:
                return f"{key} must be a non-negative integer"
        return None

    def status(self) -> Dict[str, Any]:
        return {
            "port": self.port,
            "workers": self.dispatcher.worker_stats(),
            "live_workers": self.dispatcher.live_workers(),
            "degraded": self.dispatcher.degraded,
            "queued_jobs": self._jobs.qsize(),
            "jobs_done": self._jobs_done,
            "counters": dict(self.dispatcher.counters),
        }

    # -- job runner ---------------------------------------------------------
    def _runner_loop(self) -> None:
        while not self._stop.is_set():
            item = self._jobs.get()
            if item is None:
                return
            try:
                result = self._run_job(item)
            except BaseException as exc:  # a job failure never kills serve
                log.error("serve: job %s failed: %r", item["job_id"], exc)
                self.last_error = repr(exc)
                result = {"ok": False, "error": repr(exc)}
            self._jobs_done += 1
            conn = item.get("conn")
            if conn is not None:
                send_lock = item.get("send_lock") or threading.Lock()
                try:
                    with send_lock:
                        protocol.send_frame(conn, {
                            "type": protocol.JOB_RESULT,
                            "job_id": item["job_id"], **result,
                        })
                except (OSError, protocol.ProtocolError):
                    pass  # client went away; the run registry has the result
            if self.max_jobs is not None and self._jobs_done >= self.max_jobs:
                self.stop()
                return

    def _run_job(self, item: Dict[str, Any]) -> Dict[str, Any]:
        from ..machine.spec import get_machine
        from ..tuning.baselines import tune_alt

        job = item["job"]
        restore = item.get("restore")
        rec: Optional[RunRecord] = item.get("rec")
        op = job["op"]
        channels = int(job.get("channels", 8))
        size = int(job.get("size", 16))
        budget = int(job.get("budget", 96))
        seed = int(job.get("seed", 0))
        machine = get_machine(job.get("machine", "default"))
        comp = _build_single_op(op, channels, size)

        writer = None
        resumed = rec is not None
        if resumed:
            manifest = dict(rec.manifest)
            manifest["resumes"] = int(manifest.get("resumes") or 0) + 1
            writer = RunWriter(rec.path, manifest).begin()
        elif self.store is not None:
            writer = self.store.create(
                f"serve-{op}",
                machine=machine.name, seed=seed,
                workload=(
                    f"tune:{op}:ch{channels}:s{size}:alt:b{budget}:"
                    f"{machine.name}"
                ),
                config={**job, "op": op, "channels": channels, "size": size,
                        "budget": budget, "seed": seed,
                        "machine": job.get("machine", "default"),
                        "serve_job": True, "tuner": "alt"},
            ).begin()

        trace = None
        watchdog = None
        checkpoint = None
        lease_log = None
        if writer is not None:
            trace = Trace(
                name=f"serve:{op}", meta=trace_meta(seed),
                stream_to=os.path.join(writer.path, TRACE_FILE),
                stream_append=resumed,
            )
            watchdog = Watchdog(
                trace, run_dir=writer.path, rules=self.watch_rules
            ).attach()
            checkpoint = CheckpointManager(
                writer.checkpoint_path, every=self.checkpoint_every
            )
            lease_log = LeaseLog(writer.path)

        # the disk cache would mask fleet dispatch entirely; serve jobs run
        # uncached unless the job explicitly opts back in (no_cache=False)
        measure = MeasureOptions(
            jobs=1,  # the worker fleet replaces the local pool
            cache_dir=(
                None if job.get("no_cache", True)
                else MeasureOptions().cache_dir
            ),
            dispatcher=self.dispatcher,
        )
        if trace is not None:
            measure.shared_metrics = trace.metrics
        self.dispatcher.bind_run(trace, lease_log)
        try:
            result = tune_alt(
                comp, machine, budget=budget, seed=seed, measure=measure,
                trace=trace, checkpoint=checkpoint, restore=restore,
            )
        except BaseException as exc:
            if writer is not None:
                writer.fail(repr(exc))
            if watchdog is not None:
                watchdog.finalize(STATUS_FAILED)
            raise
        finally:
            self.dispatcher.unbind_run()
        run_id = None
        if writer is not None:
            if watchdog is not None:
                watchdog.finalize(STATUS_COMPLETED)
            record = writer.finish(
                trace, tasks={comp.name: task_result_dict(result)},
            )
            run_id = record.run_id
        log.info(
            "serve: job %s done: %s best %.6fms (%d measurements)",
            item["job_id"], op, result.best_latency * 1e3,
            result.measurements,
        )
        return {
            "ok": True,
            "op": op,
            "best_latency": result.best_latency,
            "measurements": result.measurements,
            "run_id": run_id,
            "workers": self.dispatcher.worker_stats(),
        }
