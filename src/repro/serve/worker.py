"""Measurement worker for the tuning fleet.

A worker is deliberately thin: connect, introduce itself, then loop
``recv lease -> evaluate candidates -> send lease_result`` while a
daemon thread heartbeats.  Evaluation calls the same pure
:func:`~repro.tuning.measurer.evaluate_candidate` the in-process measurer
uses, which is what makes fleet results bit-identical to serial ones.

Fault injection hooks in at the *lease* granularity: each worker keeps a
local lease counter and consults its :class:`~repro.tuning.faults.FaultPlan`
before evaluating, so a seeded plan can crash the whole process
(``os._exit``), hang it past the coordinator's lease timeout, raise a
transient error (reported as a ``lease_error`` frame) or perturb latencies
(``flaky``).  Pinned ``*_at`` indices are *per-worker-local* lease indices:
``crash_at=(1,)`` makes every worker die on its second lease -- the
full-fleet-outage scenario the degradation ladder is tested against.

Workers are disposable by design.  Any protocol violation, lost
coordinator or injected crash ends the process; the
:class:`~repro.serve.coordinator.LocalFleet` supervisor (or an operator's
process manager) respawns it and the coordinator re-admits it under the
same name.
"""

from __future__ import annotations

import math
import os
import socket
import threading
import time
from typing import Any, Dict, Optional

from ..obs.log import log
from ..tuning.faults import FaultPlan
from ..tuning.measurer import evaluate_candidate
from . import protocol


class ServeWorker:
    """One fleet worker process (``repro serve worker``)."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str,
        fault_plan: Optional[FaultPlan] = None,
        heartbeat_s: float = 0.5,
        connect_retries: int = 20,
        connect_backoff_s: float = 0.1,
    ):
        self.host = host
        self.port = port
        self.name = name
        self.fault_plan = fault_plan
        self.heartbeat_s = heartbeat_s
        self.connect_retries = connect_retries
        self.connect_backoff_s = connect_backoff_s
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        #: per-worker lease counter feeding the fault plan
        self._lease_index = 0
        #: fault/error tallies shipped back inside each lease_result so the
        #: coordinator can aggregate fleet-wide error rates (the counters
        #: would otherwise die with this process)
        self._fault_counts: Dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------
    def run(self) -> int:
        """Blocking worker loop; returns a process exit code."""
        try:
            self._sock = self._connect()
        except OSError as exc:
            log.error("serve worker %s: cannot reach coordinator: %s",
                      self.name, exc)
            return 2
        try:
            self._send(protocol.hello("worker", self.name))
            reply = protocol.recv_frame(self._sock)
            if reply is None or reply.get("type") != protocol.WELCOME:
                reason = (reply or {}).get("reason", "connection closed")
                log.error("serve worker %s: rejected: %s", self.name, reason)
                return 3
            hb = threading.Thread(target=self._heartbeat_loop, daemon=True)
            hb.start()
            return self._serve_loop()
        except (OSError, protocol.ProtocolError) as exc:
            log.warning("serve worker %s: connection lost: %s", self.name, exc)
            return 1
        finally:
            self._stop.set()
            try:
                self._sock.close()
            except OSError:
                pass

    def _connect(self) -> socket.socket:
        # the supervisor may spawn workers before the coordinator's listener
        # is up; retry briefly instead of racing
        last: Optional[OSError] = None
        for attempt in range(self.connect_retries + 1):
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=10.0
                )
            except OSError as exc:
                last = exc
                time.sleep(self.connect_backoff_s * min(attempt + 1, 5))
        raise last if last is not None else OSError("connect failed")

    def _serve_loop(self) -> int:
        assert self._sock is not None
        self._sock.settimeout(None)
        while True:
            frame = protocol.recv_frame(self._sock)
            if frame is None:
                # coordinator went away (or evicted us): exit so a
                # supervisor can respawn a clean process
                return 0
            kind = frame.get("type")
            if kind == protocol.LEASE:
                self._handle_lease(frame)
            elif kind == protocol.SHUTDOWN:
                return 0
            # anything else (e.g. a duplicate welcome) is ignored

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            try:
                self._send({"type": protocol.HEARTBEAT, "worker": self.name})
            except OSError:
                return

    def _send(self, message: Dict[str, Any]) -> None:
        assert self._sock is not None
        with self._send_lock:
            protocol.send_frame(self._sock, message)

    # -- lease evaluation ---------------------------------------------------
    def _handle_lease(self, frame: Dict[str, Any]) -> None:
        lease_id = frame.get("lease")
        index = self._lease_index
        self._lease_index += 1
        fault = (
            self.fault_plan.fault_at(index)
            if self.fault_plan is not None else None
        )
        if fault == "crash":
            log.warning("serve worker %s: injected crash (lease %s)",
                        self.name, lease_id)
            os._exit(17)
        if fault == "timeout":
            # hang past the coordinator's lease deadline; it will evict us
            # and re-dispatch.  We still finish and try to send the stale
            # result afterwards -- exactly the duplicate-completion /
            # stale-lease path the coordinator must tolerate.
            self._fault_counts["timeout"] = (
                self._fault_counts.get("timeout", 0) + 1
            )
            time.sleep(self.fault_plan.hang_s)
        if fault == "os_error":
            self._fault_counts["os_error"] = (
                self._fault_counts.get("os_error", 0) + 1
            )
            self._send({
                "type": protocol.LEASE_ERROR,
                "lease": lease_id,
                "worker": self.name,
                "kind": "OSError",
                "message": f"injected transient I/O error (lease index {index})",
            })
            return
        try:
            comp, machine = protocol.unpack_payload(frame["task"])
            candidates = protocol.unpack_payload(frame["candidates"])
        except (KeyError, protocol.ProtocolError) as exc:
            self._send({
                "type": protocol.LEASE_ERROR,
                "lease": lease_id,
                "worker": self.name,
                "kind": "ProtocolError",
                "message": str(exc)[:200],
            })
            return
        latencies = [
            evaluate_candidate(comp, machine, layouts, schedule)
            for layouts, schedule in candidates
        ]
        device_ms = frame.get("device_ms") or 0.0
        if device_ms > 0:
            # simulated on-device execution: a real fleet's workers spend
            # most of a lease *waiting on the accelerator*, which is the
            # occupancy N workers overlap (what `serve bench` measures)
            time.sleep(device_ms * len(candidates) / 1000.0)
        if fault == "flaky":
            self._fault_counts["flaky"] = (
                self._fault_counts.get("flaky", 0) + 1
            )
            latencies = [
                lat * self.fault_plan.flaky_factor(index)
                if math.isfinite(lat) else lat
                for lat in latencies
            ]
        self._send({
            "type": protocol.LEASE_RESULT,
            "lease": lease_id,
            "worker": self.name,
            # inf is not valid JSON; encode as the sentinel the
            # coordinator decodes symmetrically
            "latencies": [
                lat if math.isfinite(lat) else None for lat in latencies
            ],
            "faults": dict(self._fault_counts),
        })
        self._fault_counts = {}


def run_worker(
    host: str,
    port: int,
    name: str,
    fault_spec: Optional[str] = None,
    heartbeat_s: float = 0.5,
    generation: int = 0,
) -> int:
    """Entry point for ``repro serve worker`` and the local supervisor.

    ``generation`` counts respawns of the same logical worker; it is mixed
    into the fault seed so a respawned worker draws a fresh fault sequence
    instead of replaying the crash that killed its predecessor (pinned
    ``*_at`` indices are kept -- they are the targeted-outage knob).
    """
    plan = None
    if fault_spec:
        plan = FaultPlan.parse(fault_spec).for_worker(name, generation)
    worker = ServeWorker(host, port, name, fault_plan=plan,
                         heartbeat_s=heartbeat_s)
    return worker.run()
