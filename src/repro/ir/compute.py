"""Declarative operator definitions (tensor-expression style).

A :class:`ComputeDef` describes one operator the way TVM's ``te.compute``
does: the output tensor owns one *spatial axis per logical dimension*
(one-to-one mapping, relied on by the lowering pass in paper Section 6),
plus optional *reduction axes*, and a scalar body built from input accesses.

Example -- 2-D convolution::

    out[n, o, oh, ow] = sum_{i, rh, rw} inp[n, i, oh*s + rh, ow*s + rw]
                                        * ker[o, i, rh, rw]

is expressed with four spatial axes, three reduction axes and a body of
``Access(inp, ...) * Access(ker, ...)`` with ``reduce_op='sum'``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .expr import Expr, Var, simplify, to_expr
from .tensor import Tensor


class Axis:
    """A named iteration axis with a fixed extent."""

    __slots__ = ("name", "extent")

    def __init__(self, name: str, extent: int):
        extent = int(extent)
        if extent <= 0:
            raise ValueError(f"axis {name!r} needs positive extent, got {extent}")
        self.name = name
        self.extent = extent

    @property
    def var(self) -> Var:
        return Var(self.name)

    def __str__(self) -> str:
        return f"{self.name}:{self.extent}"

    def __repr__(self) -> str:
        return f"Axis({self.name!r}, {self.extent})"


# ---------------------------------------------------------------------------
# Scalar body expressions
# ---------------------------------------------------------------------------

class Value:
    """Base class of scalar (float-valued) body expressions."""

    __slots__ = ()

    def __add__(self, other):
        return BinOp("+", self, _to_value(other))

    def __sub__(self, other):
        return BinOp("-", self, _to_value(other))

    def __mul__(self, other):
        return BinOp("*", self, _to_value(other))

    def __truediv__(self, other):
        return BinOp("/", self, _to_value(other))

    def accesses(self) -> List["Access"]:
        raise NotImplementedError

    def map_accesses(self, fn) -> "Value":
        """Return a copy with every :class:`Access` replaced by ``fn(access)``."""
        raise NotImplementedError


class Access(Value):
    """Read of one tensor element at logical indices."""

    __slots__ = ("tensor", "indices")

    def __init__(self, tensor: Tensor, indices: Sequence):
        indices = tuple(to_expr(i) for i in indices)
        if len(indices) != tensor.ndim:
            raise ValueError(
                f"{tensor.name} is {tensor.ndim}-D but access has {len(indices)} indices"
            )
        self.tensor = tensor
        self.indices: Tuple[Expr, ...] = indices

    def accesses(self) -> List["Access"]:
        return [self]

    def map_accesses(self, fn) -> Value:
        return fn(self)

    def __str__(self) -> str:
        idx = "][".join(str(i) for i in self.indices)
        return f"{self.tensor.name}[{idx}]"


class ConstF(Value):
    """Floating-point literal in the body."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def accesses(self) -> List[Access]:
        return []

    def map_accesses(self, fn) -> Value:
        return self

    def __str__(self) -> str:
        return repr(self.value)


class BinOp(Value):
    __slots__ = ("op", "a", "b")
    _OPS = ("+", "-", "*", "/")

    def __init__(self, op: str, a: Value, b: Value):
        if op not in self._OPS:
            raise ValueError(f"unsupported op {op!r}")
        self.op = op
        self.a = a
        self.b = b

    def accesses(self) -> List[Access]:
        return self.a.accesses() + self.b.accesses()

    def map_accesses(self, fn) -> Value:
        return BinOp(self.op, self.a.map_accesses(fn), self.b.map_accesses(fn))

    def __str__(self) -> str:
        return f"({self.a} {self.op} {self.b})"


class Call(Value):
    """Intrinsic call: max, min, exp, sqrt, tanh, erf, sigmoid, relu..."""

    __slots__ = ("fn", "args")
    _FNS = ("max", "min", "exp", "sqrt", "tanh", "erf", "sigmoid", "abs", "log")

    def __init__(self, fn: str, args: Sequence[Value]):
        if fn not in self._FNS:
            raise ValueError(f"unsupported intrinsic {fn!r}")
        self.fn = fn
        self.args = tuple(args)

    def accesses(self) -> List[Access]:
        out: List[Access] = []
        for a in self.args:
            out.extend(a.accesses())
        return out

    def map_accesses(self, fn) -> Value:
        return Call(self.fn, tuple(a.map_accesses(fn) for a in self.args))

    def __str__(self) -> str:
        return f"{self.fn}({', '.join(str(a) for a in self.args)})"


class Cond:
    """Integer predicate over index expressions.

    Two forms cover every operator in the repo:

    - ``InBounds(e, lo, hi)``  ->  ``lo <= e < hi``
    - ``DivisibleBy(e, k)``    ->  ``e % k == 0``

    Conjunction via ``All([...])``.
    """

    __slots__ = ()

    def evaluate(self, env: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def exprs(self) -> List[Expr]:
        raise NotImplementedError

    def map_exprs(self, fn) -> "Cond":
        raise NotImplementedError


class InBounds(Cond):
    __slots__ = ("expr", "lo", "hi")

    def __init__(self, expr, lo: int, hi: int):
        self.expr = to_expr(expr)
        self.lo = int(lo)
        self.hi = int(hi)

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return self.lo <= self.expr.evaluate(env) < self.hi

    def exprs(self) -> List[Expr]:
        return [self.expr]

    def map_exprs(self, fn) -> Cond:
        return InBounds(fn(self.expr), self.lo, self.hi)

    def __str__(self) -> str:
        return f"({self.lo} <= {self.expr} < {self.hi})"


class DivisibleBy(Cond):
    __slots__ = ("expr", "k")

    def __init__(self, expr, k: int):
        self.expr = to_expr(expr)
        self.k = int(k)

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return self.expr.evaluate(env) % self.k == 0

    def exprs(self) -> List[Expr]:
        return [self.expr]

    def map_exprs(self, fn) -> Cond:
        return DivisibleBy(fn(self.expr), self.k)

    def __str__(self) -> str:
        return f"({self.expr} % {self.k} == 0)"


class All(Cond):
    __slots__ = ("conds",)

    def __init__(self, conds: Sequence[Cond]):
        self.conds = tuple(conds)

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return all(c.evaluate(env) for c in self.conds)

    def exprs(self) -> List[Expr]:
        out: List[Expr] = []
        for c in self.conds:
            out.extend(c.exprs())
        return out

    def map_exprs(self, fn) -> Cond:
        return All(tuple(c.map_exprs(fn) for c in self.conds))

    def __str__(self) -> str:
        return " and ".join(str(c) for c in self.conds)


class Select(Value):
    """``cond ? then_value : else_value``.

    Used for boundary-guarded operators (padding, zero-stuffing in transposed
    convolutions).  Accesses inside ``then_value`` must be in-bounds for every
    iteration (clamp indices with Min/Max if needed); the guard decides which
    *value* is used, not whether memory is touched.
    """

    __slots__ = ("cond", "then_value", "else_value")

    def __init__(self, cond: Cond, then_value: Value, else_value):
        self.cond = cond
        self.then_value = then_value
        self.else_value = _to_value(else_value)

    def accesses(self) -> List[Access]:
        return self.then_value.accesses() + self.else_value.accesses()

    def map_accesses(self, fn) -> Value:
        return Select(
            self.cond, self.then_value.map_accesses(fn), self.else_value.map_accesses(fn)
        )

    def __str__(self) -> str:
        return f"({self.cond} ? {self.then_value} : {self.else_value})"


def _to_value(v) -> Value:
    if isinstance(v, Value):
        return v
    if isinstance(v, (int, float)):
        return ConstF(float(v))
    raise TypeError(f"cannot convert {type(v).__name__} to Value")


# ---------------------------------------------------------------------------
# Compute definition
# ---------------------------------------------------------------------------

class ComputeDef:
    """One operator: output axes, reduction axes, and a scalar body.

    Parameters
    ----------
    name:
        Operator (node) name, unique within a graph.
    output:
        The produced :class:`Tensor`; ``len(axes) == output.ndim``.
    axes:
        Spatial axes, one per output dimension, in output-dimension order.
    reduce_axes:
        Reduction axes (empty for elementwise operators).
    body:
        Scalar expression over input accesses; free index variables must be
        axis variables.
    reduce_op:
        ``'sum'``, ``'max'`` or ``None`` (pure elementwise).
    init:
        Initial accumulator value for reductions.
    tags:
        Free-form classification used by layout propagation: ``'complex'``
        (convolutions and GMM, paper Section 5.1), ``'elementwise'``,
        ``'broadcast'``, etc.
    """

    def __init__(
        self,
        name: str,
        output: Tensor,
        axes: Sequence[Axis],
        reduce_axes: Sequence[Axis],
        body: Value,
        reduce_op: Optional[str] = None,
        init: float = 0.0,
        tags: Sequence[str] = (),
        flops_per_point: Optional[int] = None,
        attrs: Optional[Dict] = None,
    ):
        axes = list(axes)
        if len(axes) != output.ndim:
            raise ValueError(
                f"{name}: output is {output.ndim}-D but {len(axes)} spatial axes given"
            )
        for axis, extent in zip(axes, output.shape):
            if axis.extent != extent:
                raise ValueError(
                    f"{name}: axis {axis.name} extent {axis.extent} != output dim {extent}"
                )
        if reduce_op not in (None, "sum", "max"):
            raise ValueError(f"{name}: unsupported reduce_op {reduce_op!r}")
        if reduce_axes and reduce_op is None:
            raise ValueError(f"{name}: reduction axes given without reduce_op")
        self.name = name
        self.output = output
        self.axes = axes
        self.reduce_axes = list(reduce_axes)
        self.body = body
        self.reduce_op = reduce_op
        self.init = float(init)
        self.tags = tuple(tags)
        self._flops_per_point = flops_per_point
        #: operator attributes (stride, dilation, groups...) used by layout
        #: templates; not semantically load-bearing
        self.attrs: Dict = dict(attrs or {})

    # -- helpers --------------------------------------------------------------
    @property
    def all_axes(self) -> List[Axis]:
        return self.axes + self.reduce_axes

    @property
    def inputs(self) -> List[Tensor]:
        seen: Dict[str, Tensor] = {}
        for acc in self.body.accesses():
            seen.setdefault(acc.tensor.name, acc.tensor)
        return list(seen.values())

    @property
    def is_complex(self) -> bool:
        """Complex operators get their own layout tuning task (Sec. 5.1)."""
        return "complex" in self.tags

    @property
    def is_elementwise(self) -> bool:
        return "elementwise" in self.tags

    def iteration_count(self) -> int:
        n = 1
        for axis in self.all_axes:
            n *= axis.extent
        return n

    def flops(self) -> int:
        """Approximate floating-point operations executed by this operator."""
        if self._flops_per_point is not None:
            per_point = self._flops_per_point
        else:
            per_point = _count_flops(self.body) + (1 if self.reduce_op else 0)
        return self.iteration_count() * per_point

    def accesses_of(self, tensor_name: str) -> List[Access]:
        return [a for a in self.body.accesses() if a.tensor.name == tensor_name]

    def validate(self) -> None:
        """Check that body accesses only use axis variables and stay in bounds
        at the corner points (0 and extent-1 of every axis)."""
        axis_names = {a.name for a in self.all_axes}
        for acc in self.body.accesses():
            for expr in acc.indices:
                extra = expr.free_vars() - axis_names
                if extra:
                    raise ValueError(
                        f"{self.name}: access {acc} uses unknown variables {sorted(extra)}"
                    )
        # Corner-point bounds check (sufficient for monotone affine accesses).
        lo = {a.name: 0 for a in self.all_axes}
        hi = {a.name: a.extent - 1 for a in self.all_axes}
        for acc in self.body.accesses():
            for dim, expr in enumerate(acc.indices):
                for env in (lo, hi):
                    val = simplify(expr).evaluate(env)
                    if not 0 <= val < acc.tensor.shape[dim]:
                        raise ValueError(
                            f"{self.name}: access {acc} dim {dim} out of bounds "
                            f"({val} not in [0, {acc.tensor.shape[dim]}))"
                        )

    def __repr__(self) -> str:
        return f"ComputeDef({self.name!r}, out={self.output}, tags={self.tags})"


def _count_flops(v: Value) -> int:
    if isinstance(v, BinOp):
        return 1 + _count_flops(v.a) + _count_flops(v.b)
    if isinstance(v, Call):
        return 4 + sum(_count_flops(a) for a in v.args)  # transcendental ~ 4 flops
    if isinstance(v, Select):
        return 1 + max(_count_flops(v.then_value), _count_flops(v.else_value))
    return 0


def substitute_value(value: Value, mapping: Mapping[str, Expr]) -> Value:
    """Substitute loop variables throughout a body: access indices *and*
    guard conditions (a plain ``map_accesses`` would miss the guards)."""

    def rewrite_access(acc):
        new_idx = tuple(simplify(e.substitute(mapping)) for e in acc.indices)
        return type(acc)(getattr(acc, "tensor", None) or acc.buffer, new_idx)

    if isinstance(value, Select):
        return Select(
            value.cond.map_exprs(lambda e: simplify(e.substitute(mapping))),
            substitute_value(value.then_value, mapping),
            substitute_value(value.else_value, mapping),
        )
    if isinstance(value, BinOp):
        return BinOp(
            value.op,
            substitute_value(value.a, mapping),
            substitute_value(value.b, mapping),
        )
    if isinstance(value, Call):
        return Call(value.fn, tuple(substitute_value(a, mapping) for a in value.args))
    if isinstance(value, ConstF):
        return value
    # Access / BufRead leaf.
    return rewrite_access(value)
