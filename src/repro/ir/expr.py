"""Integer index expressions used in tensor access statements.

The transformation module of ALT rewrites the *accessing expressions* of every
tensor whenever a layout primitive is applied (paper Table 1 and Eq. 1).  This
module provides the small expression language those rewrites operate on:
variables, integer constants and the arithmetic that appears in affine tensor
accesses (``+ - * // %  min  max``).

Expressions are immutable.  Construction goes through the helper functions or
Python operators; ``simplify`` performs constant folding and the algebraic
identities needed to keep rewritten accesses readable and analyzable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple, Union

ExprLike = Union["Expr", int]


class Expr:
    """Base class for all index expressions."""

    __slots__ = ()

    # -- construction sugar -------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Add(self, to_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add(to_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Sub(self, to_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Sub(to_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul(self, to_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul(to_expr(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv(self, to_expr(other))

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod(self, to_expr(other))

    def __neg__(self) -> "Expr":
        return Sub(Const(0), self)

    # -- interface -----------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate to an integer given a binding for every free variable."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Return a copy with variables replaced by expressions."""
        raise NotImplementedError

    def free_vars(self) -> Set[str]:
        raise NotImplementedError

    def children(self) -> Iterable["Expr"]:
        return ()

    # -- equality (structural) ------------------------------------------------
    def same_as(self, other: "Expr") -> bool:
        return _key(self) == _key(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class Const(Expr):
    """Integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise TypeError(f"Const expects int, got {type(value).__name__}")
        self.value = value

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return self

    def free_vars(self) -> Set[str]:
        return set()

    def __str__(self) -> str:
        return str(self.value)


class Var(Expr):
    """Named loop or dimension variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("Var requires a non-empty name")
        self.name = name

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(f"unbound variable {self.name!r}") from None

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def free_vars(self) -> Set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


class _Binary(Expr):
    __slots__ = ("a", "b")
    op = "?"

    def __init__(self, a: ExprLike, b: ExprLike):
        self.a = to_expr(a)
        self.b = to_expr(b)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return type(self)(self.a.substitute(mapping), self.b.substitute(mapping))

    def free_vars(self) -> Set[str]:
        return self.a.free_vars() | self.b.free_vars()

    def children(self) -> Iterable[Expr]:
        return (self.a, self.b)

    def __str__(self) -> str:
        return f"({self.a} {self.op} {self.b})"


class Add(_Binary):
    __slots__ = ()
    op = "+"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.a.evaluate(env) + self.b.evaluate(env)


class Sub(_Binary):
    __slots__ = ()
    op = "-"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.a.evaluate(env) - self.b.evaluate(env)


class Mul(_Binary):
    __slots__ = ()
    op = "*"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.a.evaluate(env) * self.b.evaluate(env)


class FloorDiv(_Binary):
    __slots__ = ()
    op = "//"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.a.evaluate(env) // self.b.evaluate(env)


class Mod(_Binary):
    __slots__ = ()
    op = "%"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.a.evaluate(env) % self.b.evaluate(env)


class Min(_Binary):
    __slots__ = ()
    op = "min"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return min(self.a.evaluate(env), self.b.evaluate(env))

    def __str__(self) -> str:
        return f"min({self.a}, {self.b})"


class Max(_Binary):
    __slots__ = ()
    op = "max"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return max(self.a.evaluate(env), self.b.evaluate(env))

    def __str__(self) -> str:
        return f"max({self.a}, {self.b})"


def to_expr(value: ExprLike) -> Expr:
    """Coerce an int (or expression) into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int,)):
        return Const(int(value))
    raise TypeError(f"cannot convert {type(value).__name__} to Expr")


def _key(e: Expr):
    if isinstance(e, Const):
        return ("c", e.value)
    if isinstance(e, Var):
        return ("v", e.name)
    return (type(e).__name__,) + tuple(_key(c) for c in e.children())


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------

def simplify(e: Expr) -> Expr:
    """Constant-fold and apply cheap algebraic identities, bottom-up."""
    if isinstance(e, (Const, Var)):
        return e
    assert isinstance(e, _Binary)
    a = simplify(e.a)
    b = simplify(e.b)

    ca = a.value if isinstance(a, Const) else None
    cb = b.value if isinstance(b, Const) else None

    if isinstance(e, Add):
        if ca == 0:
            return b
        if cb == 0:
            return a
        if ca is not None and cb is not None:
            return Const(ca + cb)
        return Add(a, b)
    if isinstance(e, Sub):
        if cb == 0:
            return a
        if ca is not None and cb is not None:
            return Const(ca - cb)
        if a.same_as(b):
            return Const(0)
        return Sub(a, b)
    if isinstance(e, Mul):
        if ca == 0 or cb == 0:
            return Const(0)
        if ca == 1:
            return b
        if cb == 1:
            return a
        if ca is not None and cb is not None:
            return Const(ca * cb)
        return Mul(a, b)
    if isinstance(e, FloorDiv):
        if cb == 1:
            return a
        if ca is not None and cb is not None and cb != 0:
            return Const(ca // cb)
        if ca == 0:
            return Const(0)
        return FloorDiv(a, b)
    if isinstance(e, Mod):
        if cb == 1:
            return Const(0)
        if ca is not None and cb is not None and cb != 0:
            return Const(ca % cb)
        if ca == 0:
            return Const(0)
        return Mod(a, b)
    if isinstance(e, Min):
        if ca is not None and cb is not None:
            return Const(min(ca, cb))
        if a.same_as(b):
            return a
        return Min(a, b)
    if isinstance(e, Max):
        if ca is not None and cb is not None:
            return Const(max(ca, cb))
        if a.same_as(b):
            return a
        return Max(a, b)
    raise AssertionError(f"unhandled expression type {type(e)}")


# ---------------------------------------------------------------------------
# Affine analysis
# ---------------------------------------------------------------------------

def affine_coefficients(e: Expr) -> Optional[Dict[str, int]]:
    """Decompose ``e`` as ``sum(coeff[v] * v) + coeff['']``.

    Returns ``None`` when the expression is not affine in its variables
    (contains ``//``, ``%``, ``min``, ``max`` over variables, or products of
    two variables).  The constant term is stored under the empty-string key.
    """
    e = simplify(e)
    if isinstance(e, Const):
        return {"": e.value}
    if isinstance(e, Var):
        return {e.name: 1, "": 0}
    if isinstance(e, Add) or isinstance(e, Sub):
        left = affine_coefficients(e.a)
        right = affine_coefficients(e.b)
        if left is None or right is None:
            return None
        sign = 1 if isinstance(e, Add) else -1
        out = dict(left)
        out.setdefault("", 0)
        for key, coeff in right.items():
            out[key] = out.get(key, 0) + sign * coeff
        return out
    if isinstance(e, Mul):
        if isinstance(e.a, Const):
            scalar, term = e.a.value, e.b
        elif isinstance(e.b, Const):
            scalar, term = e.b.value, e.a
        else:
            return None
        inner = affine_coefficients(term)
        if inner is None:
            return None
        return {key: coeff * scalar for key, coeff in inner.items()}
    return None


def stride_of(e: Expr, var: str) -> Optional[int]:
    """Coefficient of ``var`` in an affine expression, or ``None``.

    The stride of the innermost loop variable inside a flattened tensor
    access determines SIMD friendliness and cache-line behaviour; both the
    latency model and the vectorization legality check rely on it.
    """
    coeffs = affine_coefficients(e)
    if coeffs is None:
        # Non-affine overall; the variable may still not appear at all.
        if var not in e.free_vars():
            return 0
        return None
    return coeffs.get(var, 0)


def is_affine(e: Expr) -> bool:
    return affine_coefficients(e) is not None


# ---------------------------------------------------------------------------
# Interval analysis and range-aware simplification
# ---------------------------------------------------------------------------

Range = Tuple[int, int]  # inclusive [lo, hi]


def bounds(e: Expr, ranges: Mapping[str, Range]) -> Range:
    """Conservative interval of ``e`` given inclusive variable ranges."""
    if isinstance(e, Const):
        return (e.value, e.value)
    if isinstance(e, Var):
        try:
            return ranges[e.name]
        except KeyError:
            raise KeyError(f"no range for variable {e.name!r}") from None
    assert isinstance(e, _Binary)
    alo, ahi = bounds(e.a, ranges)
    blo, bhi = bounds(e.b, ranges)
    if isinstance(e, Add):
        return (alo + blo, ahi + bhi)
    if isinstance(e, Sub):
        return (alo - bhi, ahi - blo)
    if isinstance(e, Mul):
        corners = (alo * blo, alo * bhi, ahi * blo, ahi * bhi)
        return (min(corners), max(corners))
    if isinstance(e, FloorDiv):
        if blo <= 0 <= bhi:
            raise ZeroDivisionError(f"divisor range of {e} contains zero")
        corners = (alo // blo, alo // bhi, ahi // blo, ahi // bhi)
        return (min(corners), max(corners))
    if isinstance(e, Mod):
        if blo <= 0:
            raise ZeroDivisionError(f"modulus range of {e} is not positive")
        if alo >= 0 and ahi < blo:
            return (alo, ahi)  # modulus never triggers
        return (0, bhi - 1) if alo >= 0 else (-(bhi - 1), bhi - 1)
    if isinstance(e, Min):
        return (min(alo, blo), min(ahi, bhi))
    if isinstance(e, Max):
        return (max(alo, blo), max(ahi, bhi))
    raise AssertionError(type(e))


def canonicalize(e: Expr) -> Expr:
    """Rebuild an affine expression as ``c1*v1 + ... + ck*vk + c0`` with
    variables in sorted order; non-affine expressions are returned as-is.

    Cancelling terms (e.g. ``(a*2 + b) - a*2 -> b``) is what keeps stride
    analysis exact after layout/schedule rewrites compose."""
    coeffs = affine_coefficients(e)
    if coeffs is None:
        return e
    const = coeffs.pop("", 0)
    terms = [(name, c) for name, c in sorted(coeffs.items()) if c != 0]
    out: Optional[Expr] = None
    for name, c in terms:
        term: Expr = Var(name) if c == 1 else Mul(Var(name), Const(c))
        out = term if out is None else Add(out, term)
    if out is None:
        return Const(const)
    if const:
        out = Add(out, Const(const))
    return out


def simplify_ranges(e: Expr, ranges: Mapping[str, Range]) -> Expr:
    """Simplify using variable ranges.

    The key rewrites -- beyond :func:`simplify` -- are the ones that undo
    split/fuse round-trips produced by layout composition::

        (a*c + b) // c  ->  a      when 0 <= b < c
        (a*c + b) %  c  ->  b      when 0 <= b < c

    Both are justified by interval analysis of the non-multiple remainder.
    """
    e = simplify(e)
    if isinstance(e, (Const, Var)):
        return e
    assert isinstance(e, _Binary)
    a = simplify_ranges(e.a, ranges)
    b = simplify_ranges(e.b, ranges)
    e = simplify(type(e)(a, b))
    e = canonicalize(e)
    if not isinstance(e, (FloorDiv, Mod)):
        return e
    if not isinstance(e.b, Const):
        return e
    d = e.b.value
    if d <= 0:
        return e
    coeffs = affine_coefficients(e.a)
    if coeffs is None:
        return e
    const = coeffs.pop("", 0)
    multiple: Expr = Const(0)
    remainder: Expr = Const(0)
    for name, coeff in sorted(coeffs.items()):
        if coeff % d == 0:
            multiple = multiple + Var(name) * (coeff // d)
        else:
            remainder = remainder + Var(name) * coeff
    if const % d == 0:
        multiple = multiple + (const // d)
    else:
        remainder = remainder + const
    remainder = simplify(remainder)
    try:
        rlo, rhi = bounds(remainder, ranges)
    except (KeyError, ZeroDivisionError):
        return e
    if not (0 <= rlo and rhi < d):
        return e
    if isinstance(e, FloorDiv):
        return simplify(multiple)
    return remainder
