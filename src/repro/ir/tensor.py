"""Logical tensors.

A :class:`Tensor` is an edge in the computational graph: a name, a logical
shape, a dtype and a *role*.  The role matters for layout optimization
(paper Section 4.2): ``const`` tensors (weights) can be re-laid-out offline at
zero runtime cost, while ``input``/``intermediate`` tensors need either a
conversion operator or layout propagation.
"""

from __future__ import annotations

import itertools
from typing import Tuple

_ROLE_VALUES = ("input", "const", "intermediate", "output")

_counter = itertools.count()


class Tensor:
    """A logically-shaped tensor; physical layout lives in ``repro.layout``."""

    __slots__ = ("name", "shape", "dtype", "role", "uid")

    def __init__(self, name: str, shape, dtype: str = "float32", role: str = "intermediate"):
        if role not in _ROLE_VALUES:
            raise ValueError(f"role must be one of {_ROLE_VALUES}, got {role!r}")
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ValueError(f"tensor {name!r} has non-positive extent in shape {shape}")
        self.name = name
        self.shape: Tuple[int, ...] = shape
        self.dtype = dtype
        self.role = role
        self.uid = next(_counter)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def itemsize(self) -> int:
        return {"float32": 4, "float64": 8, "float16": 2, "int32": 4, "int8": 1}[self.dtype]

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    def __str__(self) -> str:
        return f"{self.name}{list(self.shape)}"

    def __repr__(self) -> str:
        return f"Tensor({self.name!r}, shape={self.shape}, role={self.role!r})"
