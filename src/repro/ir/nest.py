"""Lowered loop-nest programs.

The lowering pass turns ``(ComputeDef, per-tensor Layout, LoopSchedule)`` into
a :class:`Program`: a sequence of :class:`Stage` objects, each a perfectly
nested loop band around one update statement over *physical* buffers.

Operator fusion (``compute_at``) is recorded as an annotation on the fused
stages (``fuse_group``) rather than by literally interleaving loop bodies:
execution semantics are unchanged by fusion, only the memory behaviour is,
and the machine model consumes the annotation analytically.

Splits are restricted to exact divisors of the loop extent, so rewritten
index arithmetic needs no min/max guards.  All auto-tuners in this repo pick
factors from the divisor set, matching Ansor's perfect-split spaces.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .compute import BinOp, Call, ConstF, Value
from .expr import Expr, to_expr

SERIAL = "serial"
PARALLEL = "parallel"
VECTORIZE = "vectorize"
UNROLL = "unroll"
_KINDS = (SERIAL, PARALLEL, VECTORIZE, UNROLL)


class Loop:
    """One loop level: a variable, its extent and an execution annotation."""

    __slots__ = ("var", "extent", "kind")

    def __init__(self, var: str, extent: int, kind: str = SERIAL):
        if kind not in _KINDS:
            raise ValueError(f"bad loop kind {kind!r}")
        extent = int(extent)
        if extent <= 0:
            raise ValueError(f"loop {var} needs positive extent, got {extent}")
        self.var = var
        self.extent = extent
        self.kind = kind

    def with_kind(self, kind: str) -> "Loop":
        return Loop(self.var, self.extent, kind)

    def __repr__(self) -> str:
        tag = "" if self.kind == SERIAL else f" [{self.kind}]"
        return f"for {self.var} in {self.extent}{tag}"


class Buffer:
    """A physical, row-major allocation (what a Tensor becomes after layout)."""

    __slots__ = ("name", "shape", "itemsize")

    def __init__(self, name: str, shape: Sequence[int], itemsize: int = 4):
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ValueError(f"buffer {name!r} has bad shape {shape}")
        self.name = name
        self.shape = shape
        self.itemsize = itemsize

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    def strides(self) -> Tuple[int, ...]:
        """Row-major element strides."""
        strides = [1] * len(self.shape)
        for i in range(len(self.shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        return tuple(strides)

    def flat_index(self, indices: Sequence[Expr]) -> Expr:
        """Linearized element offset as an expression of the loop variables."""
        if len(indices) != len(self.shape):
            raise ValueError(
                f"buffer {self.name} is {len(self.shape)}-D, got {len(indices)} indices"
            )
        strides = self.strides()
        flat: Expr = to_expr(0)
        for idx, stride in zip(indices, strides):
            flat = flat + to_expr(idx) * stride
        return flat

    def __repr__(self) -> str:
        return f"Buffer({self.name!r}, {list(self.shape)})"


class BufRead(Value):
    """Read of a physical buffer element (leaf of a lowered body)."""

    __slots__ = ("buffer", "indices")

    def __init__(self, buffer: Buffer, indices: Sequence):
        indices = tuple(to_expr(i) for i in indices)
        if len(indices) != len(buffer.shape):
            raise ValueError(
                f"{buffer.name} is {len(buffer.shape)}-D but got {len(indices)} indices"
            )
        self.buffer = buffer
        self.indices: Tuple[Expr, ...] = indices

    def accesses(self):
        return [self]

    def map_accesses(self, fn) -> Value:
        return fn(self)

    def __str__(self) -> str:
        idx = "][".join(str(i) for i in self.indices)
        return f"{self.buffer.name}[{idx}]"


class Stage:
    """A perfectly nested loop band computing one buffer.

    ``loops`` runs outer-to-inner.  Reduction loops are identified by name in
    ``reduce_vars``; ``init_value`` (if not ``None``) initializes the output
    element before the reduction loops run.  ``update`` is the right-hand
    side; for ``reduce_op='sum'`` the statement is ``out += update``.
    """

    def __init__(
        self,
        name: str,
        loops: Sequence[Loop],
        out: Buffer,
        out_indices: Sequence[Expr],
        update: Value,
        reduce_op: Optional[str] = None,
        reduce_vars: Sequence[str] = (),
        init_value: Optional[float] = None,
        annotations: Optional[Dict] = None,
    ):
        self.name = name
        self.loops = list(loops)
        self.out = out
        self.out_indices = tuple(to_expr(i) for i in out_indices)
        self.update = update
        self.reduce_op = reduce_op
        self.reduce_vars: Set[str] = set(reduce_vars)
        self.init_value = init_value
        self.annotations: Dict = dict(annotations or {})
        self._validate()

    def _validate(self) -> None:
        loop_vars = {l.var for l in self.loops}
        if len(loop_vars) != len(self.loops):
            raise ValueError(f"stage {self.name}: duplicate loop variables")
        used: Set[str] = set()
        for e in self.out_indices:
            used |= e.free_vars()
        for acc in self.update.accesses():
            for e in acc.indices:
                used |= e.free_vars()
        missing = used - loop_vars
        if missing:
            raise ValueError(f"stage {self.name}: unbound variables {sorted(missing)}")
        if self.reduce_op not in (None, "sum", "max"):
            raise ValueError(f"stage {self.name}: bad reduce_op {self.reduce_op!r}")
        bad = self.reduce_vars - loop_vars
        if bad:
            raise ValueError(f"stage {self.name}: unknown reduce vars {sorted(bad)}")

    # -- queries used by the machine model and schedulers ----------------------
    @property
    def spatial_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.var not in self.reduce_vars]

    @property
    def reduction_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.var in self.reduce_vars]

    def trip_count(self) -> int:
        n = 1
        for l in self.loops:
            n *= l.extent
        return n

    def innermost(self) -> Loop:
        return self.loops[-1]

    def reads(self) -> List[BufRead]:
        return list(self.update.accesses())

    def buffers(self) -> Dict[str, Buffer]:
        out = {self.out.name: self.out}
        for r in self.reads():
            out.setdefault(r.buffer.name, r.buffer)
        return out

    def __repr__(self) -> str:
        return f"Stage({self.name!r}, {len(self.loops)} loops, out={self.out.name})"

    def pretty(self) -> str:
        lines = []
        if self.init_value is not None:
            lines.append(f"{self.out.name}[...] = {self.init_value}  # init, before the nest")
        indent = ""
        for l in self.loops:
            lines.append(f"{indent}{l!r}:")
            indent += "  "
        idx = "][".join(str(i) for i in self.out_indices)
        op = {"sum": "+=", "max": "max=", None: "="}[self.reduce_op]
        lines.append(f"{indent}{self.out.name}[{idx}] {op} {self.update}")
        return "\n".join(lines)


class Program:
    """An ordered list of stages plus conversion/bookkeeping metadata."""

    def __init__(self, stages: Sequence[Stage], name: str = "program"):
        self.name = name
        self.stages = list(stages)

    def buffers(self) -> Dict[str, Buffer]:
        out: Dict[str, Buffer] = {}
        for s in self.stages:
            for name, buf in s.buffers().items():
                if name in out and out[name].shape != buf.shape:
                    raise ValueError(
                        f"buffer {name} has conflicting shapes "
                        f"{out[name].shape} vs {buf.shape}"
                    )
                out.setdefault(name, buf)
        return out

    def stage(self, name: str) -> Stage:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(name)

    def pretty(self) -> str:
        return "\n\n".join(f"# stage {s.name}\n{s.pretty()}" for s in self.stages)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self.stages)} stages)"
