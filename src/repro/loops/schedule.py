"""Loop schedules (paper Section 4.3).

A :class:`LoopSchedule` records the loop transformations to apply to one
operator's loop nest, mirroring TVM's schedule primitives: ``split``,
``reorder``, ``vectorize``, ``unroll``, ``parallel`` and ``compute_at``
(operator fusion).  ``cache_read``/``cache_write`` and ``inline`` are
subsumed by the machine model's fusion handling: an inlined or fused stage's
intermediate traffic is served from cache.

The schedule is pure data; the lowering pass (``repro.lower``) validates and
applies it.  Loop variables are referred to by name.  Splitting variable
``v`` with ``m`` factors produces ``v.0`` (outermost) ... ``v.{m-1}``
(innermost); subsequent directives address the split children.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class LoopSchedule:
    """An ordered recipe of loop transformations for a single stage."""

    def __init__(self):
        self.splits: List[Tuple[str, Tuple[int, ...]]] = []
        self.order: Optional[List[str]] = None
        self.vectorize_var: Optional[str] = None
        self.unroll_vars: List[str] = []
        self.parallel_vars: List[str] = []
        self.compute_at: Optional[Tuple[str, str]] = None  # (consumer stage, loop var)
        self.fuse_group: Optional[str] = None

    # -- builders (chainable) ---------------------------------------------------
    def split(self, var: str, factors: Sequence[int]) -> "LoopSchedule":
        factors = tuple(int(f) for f in factors)
        if len(factors) < 2 or any(f <= 0 for f in factors):
            raise ValueError(f"bad split factors {factors} for {var}")
        self.splits.append((var, factors))
        return self

    def reorder(self, order: Sequence[str]) -> "LoopSchedule":
        self.order = list(order)
        return self

    def vectorize(self, var: str) -> "LoopSchedule":
        self.vectorize_var = var
        return self

    def unroll(self, var: str) -> "LoopSchedule":
        self.unroll_vars.append(var)
        return self

    def parallel(self, var: str) -> "LoopSchedule":
        self.parallel_vars.append(var)
        return self

    def compute_at_of(self, consumer: str, var: str) -> "LoopSchedule":
        """Fuse this stage into ``consumer`` at loop ``var`` of the consumer."""
        self.compute_at = (consumer, var)
        return self

    def set_fuse_group(self, group: str) -> "LoopSchedule":
        self.fuse_group = group
        return self

    # -- misc ---------------------------------------------------------------------
    def copy(self) -> "LoopSchedule":
        out = LoopSchedule()
        out.splits = list(self.splits)
        out.order = list(self.order) if self.order is not None else None
        out.vectorize_var = self.vectorize_var
        out.unroll_vars = list(self.unroll_vars)
        out.parallel_vars = list(self.parallel_vars)
        out.compute_at = self.compute_at
        out.fuse_group = self.fuse_group
        return out

    def signature(self) -> Tuple:
        return (
            tuple(self.splits),
            tuple(self.order) if self.order is not None else None,
            self.vectorize_var,
            tuple(self.unroll_vars),
            tuple(self.parallel_vars),
            self.compute_at,
        )

    def __repr__(self) -> str:
        bits = []
        for var, factors in self.splits:
            bits.append(f"split({var},{list(factors)})")
        if self.order:
            bits.append(f"reorder({self.order})")
        if self.parallel_vars:
            bits.append(f"parallel({self.parallel_vars})")
        if self.vectorize_var:
            bits.append(f"vectorize({self.vectorize_var})")
        if self.unroll_vars:
            bits.append(f"unroll({self.unroll_vars})")
        if self.compute_at:
            bits.append(f"compute_at{self.compute_at}")
        return "LoopSchedule(" + "; ".join(bits) + ")"
