"""Operator factories, re-exported by family.

Each factory returns a :class:`~repro.ir.compute.ComputeDef`; see the
family modules for semantics.  The flat namespace here is what the workload
generator (:mod:`repro.testing.generator`) and external callers enumerate.
"""

from .conv import conv1d, conv2d, conv3d, depthwise_conv2d  # noqa: F401
from .elementwise import (  # noqa: F401
    add,
    bias_add_channel,
    bias_add_last,
    gelu,
    identity,
    multiply,
    relu,
    relu6,
    scale_shift,
    sigmoid,
    tanh,
)
# NOTE: the plain ``gemm`` *function* is deliberately not re-exported: the
# name must keep resolving to the ``repro.ops.gemm`` submodule (importers
# use ``from ..ops import gemm as gemm_ops``); reach it via ``gemm.gemm``.
from .gemm import batch_gemm, dense  # noqa: F401
from .pool import avg_pool2d, global_avg_pool, max_pool2d  # noqa: F401
from .reduce import layer_norm_last, softmax_last  # noqa: F401
from .transform import (  # noqa: F401
    layout_conversion,
    pad_spatial,
    zero_stuff,
)
