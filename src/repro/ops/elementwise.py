"""Elementwise and broadcast operators.

These are the "simple" operators of Algorithm 1: layout primitives propagate
*through* them (same-shape elementwise) or terminate at them gracefully.
"""

from __future__ import annotations

from typing import Optional

from ..ir.compute import Access, Axis, Call, ComputeDef, ConstF, Value
from ..ir.expr import Var
from ..ir.tensor import Tensor


def _axes_for(t: Tensor):
    names = ["n", "c", "h", "w", "u", "v"][: t.ndim]
    return [Axis(nm, s) for nm, s in zip(names, t.shape)], [Var(nm) for nm in names]


def _unary(inp: Tensor, fn, name: str, tags=("elementwise",)) -> ComputeDef:
    axes, vars_ = _axes_for(inp)
    out = Tensor(f"{name}.out", inp.shape)
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=fn(Access(inp, vars_)),
        tags=tags,
    )


def relu(inp: Tensor, name: str = "relu") -> ComputeDef:
    return _unary(inp, lambda x: Call("max", [x, ConstF(0.0)]), name)


def sigmoid(inp: Tensor, name: str = "sigmoid") -> ComputeDef:
    return _unary(inp, lambda x: Call("sigmoid", [x]), name)


def tanh(inp: Tensor, name: str = "tanh") -> ComputeDef:
    return _unary(inp, lambda x: Call("tanh", [x]), name)


def gelu(inp: Tensor, name: str = "gelu") -> ComputeDef:
    # 0.5 * x * (1 + erf(x / sqrt(2)))
    def body(x: Value) -> Value:
        return ConstF(0.5) * x * (ConstF(1.0) + Call("erf", [x * ConstF(0.7071067811865475)]))

    return _unary(inp, body, name)


def relu6(inp: Tensor, name: str = "relu6") -> ComputeDef:
    return _unary(
        inp, lambda x: Call("min", [Call("max", [x, ConstF(0.0)]), ConstF(6.0)]), name
    )


def identity(inp: Tensor, name: str = "identity") -> ComputeDef:
    return _unary(inp, lambda x: x, name)


def scale_shift(inp: Tensor, scale: Tensor, shift: Tensor, name: str = "scale_shift") -> ComputeDef:
    """Per-channel ``x * scale[c] + shift[c]`` -- inference-time batchnorm.

    ``inp`` is ``[N, C, ...]``; ``scale``/``shift`` are ``[C]``.
    """
    if scale.shape != (inp.shape[1],) or shift.shape != (inp.shape[1],):
        raise ValueError(f"{name}: scale/shift must be [C]={inp.shape[1]}")
    axes, vars_ = _axes_for(inp)
    out = Tensor(f"{name}.out", inp.shape)
    c = vars_[1]
    body = Access(inp, vars_) * Access(scale, [c]) + Access(shift, [c])
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=body,
        tags=("elementwise", "broadcast"),
    )


def bias_add_channel(inp: Tensor, bias: Tensor, name: str = "bias") -> ComputeDef:
    """``out[n, c, ...] = inp[n, c, ...] + bias[c]`` (conv bias)."""
    if bias.shape != (inp.shape[1],):
        raise ValueError(f"{name}: bias must be [C]={inp.shape[1]}")
    axes, vars_ = _axes_for(inp)
    out = Tensor(f"{name}.out", inp.shape)
    body = Access(inp, vars_) + Access(bias, [vars_[1]])
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=body,
        tags=("elementwise", "broadcast"),
    )


def bias_add_last(inp: Tensor, bias: Tensor, name: str = "bias") -> ComputeDef:
    """``out[..., j] = inp[..., j] + bias[j]`` (dense bias)."""
    if bias.shape != (inp.shape[-1],):
        raise ValueError(f"{name}: bias must be [{inp.shape[-1]}]")
    axes, vars_ = _axes_for(inp)
    out = Tensor(f"{name}.out", inp.shape)
    body = Access(inp, vars_) + Access(bias, [vars_[-1]])
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=body,
        tags=("elementwise", "broadcast"),
    )


def add(a: Tensor, b: Tensor, name: str = "add") -> ComputeDef:
    """Elementwise sum of two same-shape tensors (residual connections)."""
    if a.shape != b.shape:
        raise ValueError(f"{name}: shape mismatch {a.shape} vs {b.shape}")
    axes, vars_ = _axes_for(a)
    out = Tensor(f"{name}.out", a.shape)
    body = Access(a, vars_) + Access(b, vars_)
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=body,
        tags=("elementwise", "binary"),
    )


def multiply(a: Tensor, b: Tensor, name: str = "mul") -> ComputeDef:
    if a.shape != b.shape:
        raise ValueError(f"{name}: shape mismatch {a.shape} vs {b.shape}")
    axes, vars_ = _axes_for(a)
    out = Tensor(f"{name}.out", a.shape)
    body = Access(a, vars_) * Access(b, vars_)
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=body,
        tags=("elementwise", "binary"),
    )
