"""Reduction-based composite operators: softmax, layer norm.

Each composite returns a list of :class:`ComputeDef` stages in dataflow
order; graph builders chain them.  Decomposing into single-reduction stages
keeps every stage a perfectly nested loop band, which is all the lowering
pass needs to support.
"""

from __future__ import annotations

from typing import List

from ..ir.compute import Access, Axis, Call, ComputeDef, ConstF
from ..ir.expr import Var
from ..ir.tensor import Tensor


def softmax_last(inp: Tensor, name: str = "softmax") -> List[ComputeDef]:
    """Numerically stable softmax over the last dimension of a 2-D/3-D tensor."""
    lead = inp.shape[:-1]
    n = inp.shape[-1]
    lead_names = ["i", "j", "z"][: len(lead)]
    lead_axes = [Axis(nm, s) for nm, s in zip(lead_names, lead)]
    lead_vars = [Var(nm) for nm in lead_names]
    r = Var("r")
    last = Var("l")

    mx = Tensor(f"{name}.max", lead)
    red_max = ComputeDef(
        name=f"{name}.reduce_max",
        output=mx,
        axes=lead_axes,
        reduce_axes=[Axis("r", n)],
        body=Access(inp, lead_vars + [r]),
        reduce_op="max",
        init=float("-inf"),
        tags=("reduce",),
    )
    ex = Tensor(f"{name}.exp", inp.shape)
    exp_stage = ComputeDef(
        name=f"{name}.exp",
        output=ex,
        axes=lead_axes + [Axis("l", n)],
        reduce_axes=[],
        body=Call("exp", [Access(inp, lead_vars + [last]) - Access(mx, lead_vars)]),
        tags=("map",),
    )
    sm = Tensor(f"{name}.sum", lead)
    red_sum = ComputeDef(
        name=f"{name}.reduce_sum",
        output=sm,
        axes=lead_axes,
        reduce_axes=[Axis("r", n)],
        body=Access(ex, lead_vars + [r]),
        reduce_op="sum",
        tags=("reduce",),
    )
    out = Tensor(f"{name}.out", inp.shape)
    norm = ComputeDef(
        name=f"{name}.norm",
        output=out,
        axes=lead_axes + [Axis("l", n)],
        reduce_axes=[],
        body=Access(ex, lead_vars + [last]) / Access(sm, lead_vars),
        tags=("map",),
    )
    return [red_max, exp_stage, red_sum, norm]


def layer_norm_last(
    inp: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5, name: str = "ln"
) -> List[ComputeDef]:
    """Layer normalization over the last dimension."""
    lead = inp.shape[:-1]
    n = inp.shape[-1]
    if gamma.shape != (n,) or beta.shape != (n,):
        raise ValueError(f"{name}: gamma/beta must be [{n}]")
    lead_names = ["i", "j", "z"][: len(lead)]
    lead_axes = [Axis(nm, s) for nm, s in zip(lead_names, lead)]
    lead_vars = [Var(nm) for nm in lead_names]
    r = Var("r")
    last = Var("l")

    mean = Tensor(f"{name}.mean", lead)
    mean_stage = ComputeDef(
        name=f"{name}.mean",
        output=mean,
        axes=lead_axes,
        reduce_axes=[Axis("r", n)],
        body=Access(inp, lead_vars + [r]) * ConstF(1.0 / n),
        reduce_op="sum",
        tags=("reduce",),
    )
    sq = Tensor(f"{name}.sqsum", lead)
    sq_stage = ComputeDef(
        name=f"{name}.sqsum",
        output=sq,
        axes=lead_axes,
        reduce_axes=[Axis("r", n)],
        body=(
            Access(inp, lead_vars + [r]) * Access(inp, lead_vars + [r]) * ConstF(1.0 / n)
        ),
        reduce_op="sum",
        tags=("reduce",),
    )
    out = Tensor(f"{name}.out", inp.shape)
    x = Access(inp, lead_vars + [last])
    mu = Access(mean, lead_vars)
    var = Access(sq, lead_vars) - mu * mu
    norm_stage = ComputeDef(
        name=f"{name}.norm",
        output=out,
        axes=lead_axes + [Axis("l", n)],
        reduce_axes=[],
        body=(x - mu)
        / Call("sqrt", [var + ConstF(eps)])
        * Access(gamma, [last])
        + Access(beta, [last]),
        tags=("map",),
    )
    return [mean_stage, sq_stage, norm_stage]
