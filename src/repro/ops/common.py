"""Shared helpers for operator constructors.

Every operator factory returns a :class:`~repro.ir.compute.ComputeDef` whose
inputs/output are :class:`~repro.ir.tensor.Tensor` objects.  Convolutions
take *pre-padded* inputs: padding is its own graph operator (paper Fig. 5),
which is exactly what makes layout propagation interesting -- the padding
operator absorbs the layout conversion.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from ..ir.tensor import Tensor

_name_counter = itertools.count()


def fresh_name(base: str) -> str:
    return f"{base}{next(_name_counter)}"


def out_size(in_size: int, window: int, stride: int, dilation: int = 1) -> int:
    """Output extent of a sliding window over a pre-padded input."""
    effective = (window - 1) * dilation + 1
    size = (in_size - effective) // stride + 1
    if size <= 0:
        raise ValueError(
            f"window {window} (dilation {dilation}, stride {stride}) too large "
            f"for input extent {in_size}"
        )
    return size


def check_positive(**kwargs: int) -> None:
    for key, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{key} must be positive, got {value}")
