"""Data-movement operators: spatial padding, zero-stuffing, transposed convs.

Padding is a first-class graph operator (paper Fig. 5): when a downstream
convolution requests an exotic input layout, layout propagation re-targets
*this* operator's output, so the padding loop performs the conversion for
free instead of a dedicated conversion operator.

Transposed convolutions (T2D/T3D) are built as ``zero-stuff -> pad -> conv``
with an offline-flipped kernel, which keeps every access affine.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..ir.compute import (
    Access,
    All,
    Axis,
    ComputeDef,
    ConstF,
    DivisibleBy,
    InBounds,
    Select,
)
from ..ir.expr import Max, Min, Var
from ..ir.tensor import Tensor


def _spatial_pad_body(inp: Tensor, vars_, pads) -> Select:
    """Guarded body: inside the original extent read input, else 0."""
    conds = []
    clamped = []
    for v, (before, size) in zip(vars_, pads):
        if before == 0:
            clamped.append(v)
            continue
        shifted = v - before
        conds.append(InBounds(shifted, 0, size))
        clamped.append(Max(Min(shifted, size - 1), 0))
    if not conds:
        raise ValueError("pad operator with no padding")
    return Select(All(conds), Access(inp, clamped), ConstF(0.0))


def pad_spatial(inp: Tensor, pad: Sequence[int], name: str = "pad") -> ComputeDef:
    """Symmetric zero padding of the trailing spatial dims of an NC... tensor.

    ``pad`` gives the per-side padding for each spatial dim (after the first
    two channel dims), e.g. ``pad=(3, 3)`` turns ``[N,C,H,W]`` into
    ``[N, C, H+6, W+6]``.
    """
    n_spatial = len(pad)
    if n_spatial != inp.ndim - 2:
        raise ValueError(
            f"{name}: got {n_spatial} pad values for {inp.ndim - 2} spatial dims"
        )
    out_shape = list(inp.shape[:2]) + [
        s + 2 * p for s, p in zip(inp.shape[2:], pad)
    ]
    out = Tensor(f"{name}.out", out_shape)
    names = ["n", "c", "z", "y", "x"][: inp.ndim]
    axes = [Axis(nm, s) for nm, s in zip(names, out_shape)]
    vars_ = [Var(nm) for nm in names]
    pads = [(0, inp.shape[0]), (0, inp.shape[1])] + [
        (p, s) for p, s in zip(pad, inp.shape[2:])
    ]
    body = _spatial_pad_body(inp, vars_, pads)
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=body,
        tags=("data_movement", "pad"),
    )


def zero_stuff(inp: Tensor, stride: int, name: str = "stuff") -> ComputeDef:
    """Insert ``stride - 1`` zeros between spatial elements (for T2D/T3D).

    ``[N, C, H, W] -> [N, C, (H-1)*s + 1, (W-1)*s + 1]``.
    """
    if stride < 1:
        raise ValueError(f"{name}: stride must be >= 1")
    out_shape = list(inp.shape[:2]) + [(s - 1) * stride + 1 for s in inp.shape[2:]]
    out = Tensor(f"{name}.out", out_shape)
    names = ["n", "c", "z", "y", "x"][: inp.ndim]
    axes = [Axis(nm, s) for nm, s in zip(names, out_shape)]
    vars_ = [Var(nm) for nm in names]
    if stride == 1:
        body = Access(inp, vars_)
    else:
        conds = [DivisibleBy(v, stride) for v in vars_[2:]]
        src = vars_[:2] + [v // stride for v in vars_[2:]]
        body = Select(All(conds), Access(inp, src), ConstF(0.0))
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=body,
        tags=("data_movement", "zero_stuff"),
    )


def layout_conversion(inp: Tensor, name: str = "convert") -> ComputeDef:
    """Explicit layout-conversion operator (paper Fig. 5a).

    A pure copy in logical space; the *layouts* attached to its input and
    output tensors by the tuner are what make it a physical re-layout.
    Inserted by layout propagation when a layout cannot be propagated
    (Algorithm 1 line 4).
    """
    names = ["n", "c", "z", "y", "x", "u"][: inp.ndim]
    axes = [Axis(nm, s) for nm, s in zip(names, inp.shape)]
    vars_ = [Var(nm) for nm in names]
    out = Tensor(f"{name}.out", inp.shape)
    return ComputeDef(
        name=name, output=out, axes=axes, reduce_axes=[], body=Access(inp, vars_),
        tags=("data_movement", "conversion", "elementwise"),
    )
