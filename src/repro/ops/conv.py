"""Convolution operators: C2D and its grouped/depthwise/dilated variants.

All convolutions consume *pre-padded* inputs (padding is a separate graph
operator, see ``repro.ops.elementwise.pad_spatial``).  Layout conventions
follow the paper: the logical shapes are ``NIHW`` for data, ``OIRS`` for
weights and ``NOHW`` for outputs; everything else is a *layout* applied on
top, never a different operator.
"""

from __future__ import annotations

from ..ir.compute import Access, Axis, ComputeDef
from ..ir.expr import Var
from ..ir.tensor import Tensor
from .common import check_positive, out_size


def conv2d(
    inp: Tensor,
    ker: Tensor,
    stride: int = 1,
    dilation: int = 1,
    groups: int = 1,
    name: str = "conv2d",
) -> ComputeDef:
    """2-D convolution (C2D); ``groups > 1`` gives GRP, ``dilation > 1`` DIL.

    ``inp``: ``[N, I, H, W]`` (pre-padded); ``ker``: ``[O, I/groups, KH, KW]``.
    Output: ``[N, O, OH, OW]``.
    """
    check_positive(stride=stride, dilation=dilation, groups=groups)
    n, i, h, w = inp.shape
    o, ig, kh, kw = ker.shape
    if i % groups or o % groups:
        raise ValueError(f"{name}: channels ({i}, {o}) not divisible by groups {groups}")
    if ig != i // groups:
        raise ValueError(
            f"{name}: kernel input channels {ig} != {i}//{groups}"
        )
    oh = out_size(h, kh, stride, dilation)
    ow = out_size(w, kw, stride, dilation)
    out = Tensor(f"{name}.out", (n, o, oh, ow))

    vn, vo, vh, vw = Var("n"), Var("o"), Var("oh"), Var("ow")
    ri, rh, rw = Var("ri"), Var("rh"), Var("rw")
    if groups == 1:
        in_channel = ri
    else:
        # channel o belongs to group o // (o_per_group)
        in_channel = (vo // (o // groups)) * ig + ri
    body = Access(inp, [vn, in_channel, vh * stride + rh * dilation, vw * stride + rw * dilation]) * Access(
        ker, [vo, ri, rh, rw]
    )
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("o", o), Axis("oh", oh), Axis("ow", ow)],
        reduce_axes=[Axis("ri", ig), Axis("rh", kh), Axis("rw", kw)],
        body=body,
        reduce_op="sum",
        tags=("complex", "conv", "conv2d"),
        attrs={"stride": stride, "dilation": dilation, "groups": groups, "kernel": (kh, kw), "spatial_axes": ("oh", "ow"), "channel_axis": "o", "reduce_channel": "ri"},
    )


def depthwise_conv2d(
    inp: Tensor, ker: Tensor, stride: int = 1, dilation: int = 1, name: str = "depthwise"
) -> ComputeDef:
    """Depth-wise C2D (DEP): one filter per channel.

    ``inp``: ``[N, C, H, W]``; ``ker``: ``[C, KH, KW]``; output ``[N, C, OH, OW]``.
    """
    check_positive(stride=stride, dilation=dilation)
    n, c, h, w = inp.shape
    kc, kh, kw = ker.shape
    if kc != c:
        raise ValueError(f"{name}: kernel channels {kc} != input channels {c}")
    oh = out_size(h, kh, stride, dilation)
    ow = out_size(w, kw, stride, dilation)
    out = Tensor(f"{name}.out", (n, c, oh, ow))
    vn, vc, vh, vw = Var("n"), Var("c"), Var("oh"), Var("ow")
    rh, rw = Var("rh"), Var("rw")
    body = Access(inp, [vn, vc, vh * stride + rh * dilation, vw * stride + rw * dilation]) * Access(
        ker, [vc, rh, rw]
    )
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("c", c), Axis("oh", oh), Axis("ow", ow)],
        reduce_axes=[Axis("rh", kh), Axis("rw", kw)],
        body=body,
        reduce_op="sum",
        tags=("complex", "conv", "depthwise"),
        attrs={"stride": stride, "dilation": dilation, "kernel": (kh, kw), "spatial_axes": ("oh", "ow"), "channel_axis": "c"},
    )


def conv1d(
    inp: Tensor, ker: Tensor, stride: int = 1, dilation: int = 1, name: str = "conv1d"
) -> ComputeDef:
    """1-D convolution (C1D). ``inp``: ``[N, I, W]``; ``ker``: ``[O, I, K]``."""
    check_positive(stride=stride, dilation=dilation)
    n, i, w = inp.shape
    o, ik, k = ker.shape
    if ik != i:
        raise ValueError(f"{name}: kernel input channels {ik} != {i}")
    ow = out_size(w, k, stride, dilation)
    out = Tensor(f"{name}.out", (n, o, ow))
    vn, vo, vw = Var("n"), Var("o"), Var("ow")
    ri, rw = Var("ri"), Var("rw")
    body = Access(inp, [vn, ri, vw * stride + rw * dilation]) * Access(ker, [vo, ri, rw])
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("o", o), Axis("ow", ow)],
        reduce_axes=[Axis("ri", i), Axis("rw", k)],
        body=body,
        reduce_op="sum",
        tags=("complex", "conv", "conv1d"),
        attrs={"stride": stride, "dilation": dilation, "kernel": (k,), "spatial_axes": ("ow",), "channel_axis": "o", "reduce_channel": "ri"},
    )


def conv3d(
    inp: Tensor, ker: Tensor, stride: int = 1, dilation: int = 1, name: str = "conv3d"
) -> ComputeDef:
    """3-D convolution (C3D). ``inp``: ``[N, I, D, H, W]``; ``ker``: ``[O, I, KD, KH, KW]``."""
    check_positive(stride=stride, dilation=dilation)
    n, i, d, h, w = inp.shape
    o, ik, kd, kh, kw = ker.shape
    if ik != i:
        raise ValueError(f"{name}: kernel input channels {ik} != {i}")
    od = out_size(d, kd, stride, dilation)
    oh = out_size(h, kh, stride, dilation)
    ow = out_size(w, kw, stride, dilation)
    out = Tensor(f"{name}.out", (n, o, od, oh, ow))
    vn, vo, vd, vh, vw = Var("n"), Var("o"), Var("od"), Var("oh"), Var("ow")
    ri, rd, rh, rw = Var("ri"), Var("rd"), Var("rh"), Var("rw")
    body = Access(
        inp,
        [
            vn,
            ri,
            vd * stride + rd * dilation,
            vh * stride + rh * dilation,
            vw * stride + rw * dilation,
        ],
    ) * Access(ker, [vo, ri, rd, rh, rw])
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("o", o), Axis("od", od), Axis("oh", oh), Axis("ow", ow)],
        reduce_axes=[Axis("ri", i), Axis("rd", kd), Axis("rh", kh), Axis("rw", kw)],
        body=body,
        reduce_op="sum",
        tags=("complex", "conv", "conv3d"),
        attrs={"stride": stride, "dilation": dilation, "kernel": (kd, kh, kw), "spatial_axes": ("od", "oh", "ow"), "channel_axis": "o", "reduce_channel": "ri"},
    )
