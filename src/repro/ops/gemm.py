"""General matrix multiplication (GMM) and batched variants.

Logical layouts follow the paper's defaults: ``C[M, N] = A[M, K] @ B[K, N]``
("KN").  The "NK" alternative (transposed B) and the custom "NKn" tiled
layout are *layouts* applied on top of the same compute definition, which is
the whole point of the layout-transformation infrastructure.
"""

from __future__ import annotations

from ..ir.compute import Access, Axis, ComputeDef
from ..ir.expr import Var
from ..ir.tensor import Tensor


def gemm(a: Tensor, b: Tensor, name: str = "gemm") -> ComputeDef:
    """``C[m, n] = sum_k A[m, k] * B[k, n]``."""
    m, k = a.shape
    kb, n = b.shape
    if kb != k:
        raise ValueError(f"{name}: inner dims differ ({k} vs {kb})")
    out = Tensor(f"{name}.out", (m, n))
    vm, vn, vk = Var("m"), Var("n"), Var("k")
    body = Access(a, [vm, vk]) * Access(b, [vk, vn])
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("m", m), Axis("n", n)],
        reduce_axes=[Axis("k", k)],
        body=body,
        reduce_op="sum",
        tags=("complex", "gemm"),
        attrs={"mnk": (m, n, k)},
    )


def batch_gemm(a: Tensor, b: Tensor, name: str = "batch_gemm") -> ComputeDef:
    """``C[b, m, n] = sum_k A[b, m, k] * B[b, k, n]`` (attention score/context)."""
    ba, m, k = a.shape
    bb, kb, n = b.shape
    if ba != bb or kb != k:
        raise ValueError(f"{name}: shape mismatch {a.shape} x {b.shape}")
    out = Tensor(f"{name}.out", (ba, m, n))
    vb, vm, vn, vk = Var("b"), Var("m"), Var("n"), Var("k")
    body = Access(a, [vb, vm, vk]) * Access(b, [vb, vk, vn])
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("b", ba), Axis("m", m), Axis("n", n)],
        reduce_axes=[Axis("k", k)],
        body=body,
        reduce_op="sum",
        tags=("complex", "gemm", "batch_gemm"),
        attrs={"mnk": (m, n, k)},
    )


def dense(inp: Tensor, weight: Tensor, name: str = "dense") -> ComputeDef:
    """Fully connected layer: ``out[m, n] = sum_k inp[m, k] * W[k, n]``.

    Identical compute to :func:`gemm`; tagged separately so graph builders
    can attach a bias via ``store_at`` (the paper's Section 4.1.2 example).
    """
    comp = gemm(inp, weight, name=name)
    comp.tags = comp.tags + ("dense",)
    return comp
