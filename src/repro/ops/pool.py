"""Pooling operators."""

from __future__ import annotations

from ..ir.compute import Access, Axis, ComputeDef, ConstF
from ..ir.expr import Var
from ..ir.tensor import Tensor
from .common import check_positive, out_size


def max_pool2d(inp: Tensor, window: int, stride: int, name: str = "maxpool") -> ComputeDef:
    """``[N, C, H, W]`` max pooling over ``window x window`` with ``stride``."""
    check_positive(window=window, stride=stride)
    n, c, h, w = inp.shape
    oh = out_size(h, window, stride)
    ow = out_size(w, window, stride)
    out = Tensor(f"{name}.out", (n, c, oh, ow))
    vn, vc, vh, vw = Var("n"), Var("c"), Var("oh"), Var("ow")
    rh, rw = Var("rh"), Var("rw")
    body = Access(inp, [vn, vc, vh * stride + rh, vw * stride + rw])
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("c", c), Axis("oh", oh), Axis("ow", ow)],
        reduce_axes=[Axis("rh", window), Axis("rw", window)],
        body=body,
        reduce_op="max",
        init=float("-inf"),
        tags=("pool",),
    )


def avg_pool2d(inp: Tensor, window: int, stride: int, name: str = "avgpool") -> ComputeDef:
    check_positive(window=window, stride=stride)
    n, c, h, w = inp.shape
    oh = out_size(h, window, stride)
    ow = out_size(w, window, stride)
    out = Tensor(f"{name}.out", (n, c, oh, ow))
    vn, vc, vh, vw = Var("n"), Var("c"), Var("oh"), Var("ow")
    rh, rw = Var("rh"), Var("rw")
    body = Access(inp, [vn, vc, vh * stride + rh, vw * stride + rw]) * ConstF(
        1.0 / (window * window)
    )
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("c", c), Axis("oh", oh), Axis("ow", ow)],
        reduce_axes=[Axis("rh", window), Axis("rw", window)],
        body=body,
        reduce_op="sum",
        tags=("pool",),
    )


def global_avg_pool(inp: Tensor, name: str = "gap") -> ComputeDef:
    """``[N, C, H, W] -> [N, C]`` spatial mean."""
    n, c, h, w = inp.shape
    out = Tensor(f"{name}.out", (n, c))
    vn, vc = Var("n"), Var("c")
    rh, rw = Var("rh"), Var("rw")
    body = Access(inp, [vn, vc, rh, rw]) * ConstF(1.0 / (h * w))
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("c", c)],
        reduce_axes=[Axis("rh", h), Axis("rw", w)],
        body=body,
        reduce_op="sum",
        tags=("pool", "reduce"),
    )
