"""Transposed convolutions (T2D / T3D) as affine composites.

A transposed convolution with stride ``s`` is lowered to::

    zero-stuff(s)  ->  pad(K-1-p)  ->  stride-1 convolution with the
                                       spatially flipped kernel

which keeps every tensor access affine (the direct formulation needs
``(oh - rh + p) / s`` guards).  The kernel flip is folded into the
convolution's accessing expressions -- weights are constants, so no runtime
cost -- and the stride-1 convolution is a *complex* operator that gets the
full layout template treatment.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..ir.compute import Access, Axis, ComputeDef
from ..ir.expr import Var
from ..ir.tensor import Tensor
from .common import check_positive
from .transform import pad_spatial, zero_stuff


def _flipped_conv2d(inp: Tensor, ker: Tensor, name: str) -> ComputeDef:
    """Stride-1 C2D that reads the kernel flipped along its spatial dims."""
    n, i, h, w = inp.shape
    o, ik, kh, kw = ker.shape
    if ik != i:
        raise ValueError(f"{name}: kernel input channels {ik} != {i}")
    oh, ow = h - kh + 1, w - kw + 1
    out = Tensor(f"{name}.out", (n, o, oh, ow))
    vn, vo, vh, vw = Var("n"), Var("o"), Var("oh"), Var("ow")
    ri, rh, rw = Var("ri"), Var("rh"), Var("rw")
    body = Access(inp, [vn, ri, vh + rh, vw + rw]) * Access(
        ker, [vo, ri, (kh - 1) - rh, (kw - 1) - rw]
    )
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("o", o), Axis("oh", oh), Axis("ow", ow)],
        reduce_axes=[Axis("ri", i), Axis("rh", kh), Axis("rw", kw)],
        body=body,
        reduce_op="sum",
        tags=("complex", "conv", "conv2d", "transposed"),
        attrs={
            "stride": 1, "dilation": 1, "groups": 1, "kernel": (kh, kw),
            "spatial_axes": ("oh", "ow"), "channel_axis": "o",
            "reduce_channel": "ri",
        },
    )


def _flipped_conv3d(inp: Tensor, ker: Tensor, name: str) -> ComputeDef:
    n, i, d, h, w = inp.shape
    o, ik, kd, kh, kw = ker.shape
    if ik != i:
        raise ValueError(f"{name}: kernel input channels {ik} != {i}")
    od, oh, ow = d - kd + 1, h - kh + 1, w - kw + 1
    out = Tensor(f"{name}.out", (n, o, od, oh, ow))
    vn, vo, vd, vh, vw = Var("n"), Var("o"), Var("od"), Var("oh"), Var("ow")
    ri, rd, rh, rw = Var("ri"), Var("rd"), Var("rh"), Var("rw")
    body = Access(inp, [vn, ri, vd + rd, vh + rh, vw + rw]) * Access(
        ker, [vo, ri, (kd - 1) - rd, (kh - 1) - rh, (kw - 1) - rw]
    )
    return ComputeDef(
        name=name,
        output=out,
        axes=[Axis("n", n), Axis("o", o), Axis("od", od), Axis("oh", oh), Axis("ow", ow)],
        reduce_axes=[Axis("ri", i), Axis("rd", kd), Axis("rh", kh), Axis("rw", kw)],
        body=body,
        reduce_op="sum",
        tags=("complex", "conv", "conv3d", "transposed"),
        attrs={
            "stride": 1, "dilation": 1, "kernel": (kd, kh, kw),
            "spatial_axes": ("od", "oh", "ow"), "channel_axis": "o",
            "reduce_channel": "ri",
        },
    )


def transposed_conv2d(
    inp: Tensor, ker: Tensor, stride: int = 2, pad: int = 0, name: str = "t2d"
) -> List[ComputeDef]:
    """T2D composite.  ``inp``: ``[N, I, H, W]``; ``ker``: ``[I->O]`` as
    ``[O, I, KH, KW]``.  Output: ``[N, O, (H-1)s + KH - 2p, ...]``."""
    check_positive(stride=stride)
    o, i, kh, kw = ker.shape
    if pad >= kh or pad >= kw:
        raise ValueError(f"{name}: pad must be < kernel size")
    comps: List[ComputeDef] = []
    x = inp
    if stride > 1:
        stuff = zero_stuff(x, stride, name=f"{name}.stuff")
        comps.append(stuff)
        x = stuff.output
    border = (kh - 1 - pad, kw - 1 - pad)
    if any(border):
        padded = pad_spatial(x, border, name=f"{name}.pad")
        comps.append(padded)
        x = padded.output
    comps.append(_flipped_conv2d(x, ker, name=f"{name}.conv"))
    return comps


def transposed_conv3d(
    inp: Tensor, ker: Tensor, stride: int = 2, pad: int = 0, name: str = "t3d"
) -> List[ComputeDef]:
    """T3D composite; see :func:`transposed_conv2d`."""
    check_positive(stride=stride)
    o, i, kd, kh, kw = ker.shape
    if pad >= min(kd, kh, kw):
        raise ValueError(f"{name}: pad must be < kernel size")
    comps: List[ComputeDef] = []
    x = inp
    if stride > 1:
        stuff = zero_stuff(x, stride, name=f"{name}.stuff")
        comps.append(stuff)
        x = stuff.output
    border = (kd - 1 - pad, kh - 1 - pad, kw - 1 - pad)
    if any(border):
        padded = pad_spatial(x, border, name=f"{name}.pad")
        comps.append(padded)
        x = padded.output
    comps.append(_flipped_conv3d(x, ker, name=f"{name}.conv"))
    return comps


# ---------------------------------------------------------------------------
# Numpy references
# ---------------------------------------------------------------------------

def transposed_conv2d_ref(inp, ker, stride=2, pad=0):
    n, i, h, w = inp.shape
    o, _, kh, kw = ker.shape
    oh = (h - 1) * stride + kh - 2 * pad
    ow = (w - 1) * stride + kw - 2 * pad
    full = np.zeros((n, o, (h - 1) * stride + kh, (w - 1) * stride + kw))
    for y in range(h):
        for x in range(w):
            contrib = np.einsum("ni,oirs->nors", inp[:, :, y, x], ker)
            full[:, :, y * stride : y * stride + kh, x * stride : x * stride + kw] += contrib
    return full[:, :, pad : pad + oh, pad : pad + ow]


def transposed_conv3d_ref(inp, ker, stride=2, pad=0):
    n, i, d, h, w = inp.shape
    o, _, kd, kh, kw = ker.shape
    od = (d - 1) * stride + kd - 2 * pad
    oh = (h - 1) * stride + kh - 2 * pad
    ow = (w - 1) * stride + kw - 2 * pad
    full = np.zeros(
        (n, o, (d - 1) * stride + kd, (h - 1) * stride + kh, (w - 1) * stride + kw)
    )
    for z in range(d):
        for y in range(h):
            for x in range(w):
                contrib = np.einsum("ni,oidrs->nodrs", inp[:, :, z, y, x], ker)
                full[
                    :,
                    :,
                    z * stride : z * stride + kd,
                    y * stride : y * stride + kh,
                    x * stride : x * stride + kw,
                ] += contrib
    return full[:, :, pad : pad + od, pad : pad + oh, pad : pad + ow]
