"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``tune``      tune a single operator and print the result/layouts
``compile``   compile a model-zoo network end to end and print the report
``trace``     render a saved JSONL trace (flamegraph + tuning timeline)
``profile``   phase-profile a tuning run / regenerate the throughput bench
``runs``      inspect/compare the persistent run registry (perf gate)
``serve``     compile-as-a-service: coordinator/worker tuning fleet
``machines``  list the simulated hardware targets
``models``    list the model zoo

Examples::

    python -m repro tune c2d --machine intel_cpu --budget 200
    python -m repro compile resnet18 --mode alt --budget 500 --image 64
    python -m repro compile bert_tiny --mode ansor
    python -m repro tune gmm --budget 64 --trace-out run.jsonl
    python -m repro trace run.jsonl
    python -m repro tune gmm --budget 96 --run-store runs/
    python -m repro runs list runs/
    python -m repro runs compare runA runB --store runs/ --out BENCH_compare.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from .graph.models import bert_base, bert_tiny, mobilenet_v2, resnet18, resnet3d18
from .ir.tensor import Tensor
from .machine.spec import PRESETS, get_machine
from .obs.compare import (
    DEFAULT_THRESHOLD,
    THROUGHPUT_THRESHOLD,
    compare_summaries,
    compare_throughput,
    render_compare,
    render_throughput_compare,
    write_compare,
)
from .obs.diagnostics import render_diagnostics
from .obs.log import log, setup_logging
from .obs.profiler import Profiler, attribution_fraction, profile_report
from .obs.render import timeline_report, trace_report
from .obs.dashboard import write_dashboard
from .obs.runstore import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    TRACE_FILE,
    RunRecord,
    RunStore,
    RunWriter,
    is_run_dir,
    load_summary,
    task_result_dict,
    trace_meta,
)
from .obs.trace import Trace, load_trace
from .obs.watch import Watchdog, WatchRules, parse_fail_on, watch_run
from .ops.conv import conv1d, conv2d, conv3d, depthwise_conv2d
from .ops.gemm import gemm
from .pipeline import CompileOptions, compile_graph
from .report import full_report, network_report
from .serve.client import (
    fetch_status,
    parse_addr,
    request_shutdown,
    submit_and_wait,
)
from .serve.coordinator import Coordinator, LocalFleet, ServeOptions
from .serve.worker import run_worker
from .tuning.baselines import BASELINE_TUNERS, tune_alt
from .tuning.checkpoint import CheckpointError, CheckpointManager, load_checkpoint
from .tuning.database import TuningDatabase
from .tuning.explorer import TuneResult
from .tuning.faults import FaultPlan
from .tuning.measurer import MeasureOptions
from .tuning.records import apply_record, record_from_result
from .tuning.scheduler import (
    NETWORK_CHECKPOINT_KIND,
    SchedulerOptions,
    tune_network,
)


def _single_op(kind: str, channels: int, size: int):
    if kind == "c2d":
        return conv2d(
            Tensor("inp", (1, channels, size + 2, size + 2)),
            Tensor("ker", (channels, channels, 3, 3)),
            name="c2d",
        )
    if kind == "dep":
        return depthwise_conv2d(
            Tensor("inp", (1, channels, size + 2, size + 2)),
            Tensor("ker", (channels, 3, 3)),
            name="dep",
        )
    if kind == "c1d":
        return conv1d(
            Tensor("inp", (1, channels, size + 2)),
            Tensor("ker", (channels, channels, 3)),
            name="c1d",
        )
    if kind == "c3d":
        return conv3d(
            Tensor("inp", (1, channels, 10, size + 2, size + 2)),
            Tensor("ker", (channels, channels, 3, 3, 3)),
            name="c3d",
        )
    if kind == "grp":
        groups = 2 if channels % 2 == 0 else 1
        return conv2d(
            Tensor("inp", (1, channels, size + 2, size + 2)),
            Tensor("ker", (channels, channels // groups, 3, 3)),
            groups=groups,
            name="grp",
        )
    if kind == "dil":
        return conv2d(
            Tensor("inp", (1, channels, size + 4, size + 4)),
            Tensor("ker", (channels, channels, 3, 3)),
            dilation=2,
            name="dil",
        )
    if kind == "gmm":
        return gemm(
            Tensor("a", (size, size)), Tensor("b", (size, size)), name="gmm"
        )
    raise SystemExit(f"unknown operator kind {kind!r}")


_MODELS = {
    "resnet18": lambda args: resnet18(
        batch=args.batch, image=args.image, width=args.width or 64
    ),
    "mobilenet_v2": lambda args: mobilenet_v2(batch=args.batch, image=args.image),
    "bert_tiny": lambda args: bert_tiny(batch=args.batch, seq=args.seq),
    "bert_base": lambda args: bert_base(batch=args.batch, seq=args.seq),
    "resnet3d18": lambda args: resnet3d18(
        batch=args.batch, image=max(args.image // 2, 16), width=args.width or 64
    ),
}


def _measure_options(args) -> MeasureOptions:
    """Build measurement-engine options from the shared CLI flags."""
    opts = MeasureOptions()
    if args.jobs is not None:
        opts.jobs = max(args.jobs, 1)
    if args.no_measure_cache:
        opts.cache_dir = None
    elif args.measure_cache_dir is not None:
        opts.cache_dir = args.measure_cache_dir
    if args.measure_timeout is not None:
        opts.timeout_s = args.measure_timeout if args.measure_timeout > 0 else None
    spec = getattr(args, "inject_faults", None)
    if spec:
        try:
            opts.fault_plan = FaultPlan.parse(spec)
        except ValueError as exc:
            raise SystemExit(f"--inject-faults: {exc}") from exc
        log.warning("fault injection active: %s", opts.fault_plan.describe())
    return opts


def _open_db(args) -> Optional[TuningDatabase]:
    """The persistent tuning database when ``--db`` was given, else None."""
    if getattr(args, "db", None) is None:
        return None
    return TuningDatabase(args.db)


def _record_db_use(writer: Optional[RunWriter], db: Optional[TuningDatabase]):
    """Stamp database provenance (path + hit/miss/warm-start counters)
    into the run manifest before the writer closes."""
    if writer is not None and db is not None:
        writer.manifest["database"] = db.provenance()


def _make_profiler(args) -> Optional[Profiler]:
    """An enabled Profiler when ``--profile`` was given, else None (the
    tuners then fall back to the shared null profiler -- zero cost)."""
    if not getattr(args, "profile", False):
        return None
    return Profiler()


def _finish_profile(prof: Optional[Profiler], args) -> None:
    """Print the hot-path table for ``--profile`` runs (the machine-readable
    payload lands in the run store via ``RunWriter.finish``)."""
    if prof is None:
        return
    print()
    print(profile_report(prof))


def _make_trace(args, name: str, writer: Optional[RunWriter] = None,
                append: bool = False) -> Optional[Trace]:
    """An enabled Trace when ``--trace-out`` or ``--run-store`` was given,
    else None; the trace meta carries seed/git SHA/version attribution.

    With a run-store writer the trace streams live into the run dir's
    ``trace.jsonl`` (unless ``--no-stream``); a resumed run appends to the
    interrupted stream (``append=True``)."""
    if (getattr(args, "trace_out", None) is None
            and getattr(args, "run_store", None) is None):
        return None
    stream_to = None
    if writer is not None and not getattr(args, "no_stream", False):
        stream_to = os.path.join(writer.path, TRACE_FILE)
    return Trace(
        name=name, meta=trace_meta(getattr(args, "seed", None)),
        stream_to=stream_to, stream_append=append,
    )


def _make_watchdog(trace: Optional[Trace],
                   writer: Optional[RunWriter], args) -> Optional[Watchdog]:
    """Attach the live health watchdog when the run streams into a run
    directory (it keeps ``health.json`` current and writes ``health``
    events into the stream on alert changes)."""
    if trace is None or writer is None or trace.stream_path is None:
        return None
    try:
        rules = WatchRules.parse(getattr(args, "watch_rules", None))
    except ValueError as exc:
        raise SystemExit(f"--watch-rules: {exc}") from exc
    return Watchdog(trace, run_dir=writer.path, rules=rules).attach()


def _finalize_watchdog(watchdog: Optional[Watchdog], status: str) -> None:
    if watchdog is not None:
        watchdog.finalize(status)


def _finish_trace(trace: Optional[Trace], args) -> None:
    if trace is not None and getattr(args, "trace_out", None) is not None:
        trace.save(args.trace_out)
        log.info("trace written to %s (%d events)", args.trace_out,
                 len(trace.events))


def _run_config(args) -> Dict:
    """The CLI invocation as recorded in the run manifest (and restored
    verbatim by ``--resume``)."""
    return {
        k: v for k, v in sorted(vars(args).items())
        if k not in ("fn", "verbose", "quiet") and v is not None
        and not callable(v)
    }


def _make_writer(args, name, workload) -> Optional[RunWriter]:
    """Open a run directory (``status: running``) when ``--run-store`` was
    given; the caller must close it with ``finish``/``fail``."""
    if getattr(args, "run_store", None) is None:
        return None
    store = RunStore(args.run_store)
    writer = store.create(
        name, machine=args.machine, seed=getattr(args, "seed", None),
        workload=workload, config=_run_config(args),
    )
    return writer.begin()


def _resume_run(args):
    """Resolve ``--resume``: reopen the run directory, restore its recorded
    CLI config into ``args`` and load the tuner checkpoint payload."""
    ref = args.resume
    if os.path.isdir(ref) and is_run_dir(ref):
        rec = RunRecord(ref)
    elif getattr(args, "run_store", None):
        try:
            rec = RunStore(args.run_store).load(ref)
        except FileNotFoundError as exc:
            raise SystemExit(str(exc)) from exc
    else:
        raise SystemExit(
            f"--resume: {ref!r} is not a run directory "
            "(pass a run dir, or a run id with --run-store)"
        )
    if rec.status == STATUS_COMPLETED:
        raise SystemExit(
            f"run {rec.run_id} already completed; refusing to resume "
            "(start a fresh run instead)"
        )
    config = rec.manifest.get("config") or {}
    if config.get("tuner", "alt") != "alt":
        raise SystemExit(
            f"run {rec.run_id} used tuner {config.get('tuner')!r}; "
            "only 'alt' runs checkpoint and resume"
        )
    try:
        payload = load_checkpoint(rec.checkpoint_path)
    except CheckpointError as exc:
        raise SystemExit(f"cannot resume {rec.run_id}: {exc}") from exc
    # the recorded invocation wins over whatever flags came with --resume:
    # resumed-run determinism requires the original seed/budget/op
    for key, value in config.items():
        if hasattr(args, key) and key != "resume":
            setattr(args, key, value)
    args.run_store = os.path.dirname(rec.path)
    manifest = dict(rec.manifest)
    manifest["resumes"] = int(manifest.get("resumes") or 0) + 1
    writer = RunWriter(rec.path, manifest)
    writer.begin()
    log.info("resuming run %s (resume #%d)", rec.run_id, manifest["resumes"])
    return writer, payload


def cmd_tune(args) -> int:
    writer = None
    restore = None
    if args.op is not None and getattr(args, "model", None) is not None:
        raise SystemExit(
            "pass either an operator or --model <network>, not both"
        )
    if getattr(args, "resume", None) is not None:
        writer, restore = _resume_run(args)
    if restore is not None:
        is_network = restore.get("kind") == NETWORK_CHECKPOINT_KIND
        if is_network and not getattr(args, "model", None):
            raise SystemExit(
                "checkpoint belongs to a network tune but the recorded "
                "config has no model; refusing to resume"
            )
        if not is_network and getattr(args, "model", None):
            raise SystemExit(
                "checkpoint belongs to a single-operator tune, not a "
                "--model run; refusing to resume"
            )
    if getattr(args, "model", None) is not None:
        return _tune_network_cmd(args, writer, restore)
    if args.op is None:
        raise SystemExit(
            "operator is required (or pass --model <network>, "
            "or --resume <run-dir>)"
        )
    machine = get_machine(args.machine)
    comp = _single_op(args.op, args.channels, args.size)
    tuner = BASELINE_TUNERS.get(args.tuner, tune_alt)
    measure = _measure_options(args)
    prof = _make_profiler(args)
    if prof is not None and args.tuner != "alt":
        raise SystemExit("--profile is supported with the alt tuner only")
    resumed = writer is not None
    if writer is None:
        writer = _make_writer(
            args, f"tune-{args.op}",
            workload=(
                f"tune:{args.op}:ch{args.channels}:s{args.size}:"
                f"{args.tuner}:b{args.budget}:{machine.name}"
            ),
        )
    trace = _make_trace(args, f"tune:{args.op}", writer=writer,
                        append=resumed)
    watchdog = _make_watchdog(trace, writer, args)
    checkpoint = None
    if writer is not None and args.tuner == "alt":
        checkpoint = CheckpointManager(
            writer.checkpoint_path, every=max(args.checkpoint_every, 1)
        )
    db = _open_db(args)
    if db is not None and args.tuner != "alt":
        raise SystemExit("--db is supported with the alt tuner only")
    try:
        db_hit = warm = None
        if db is not None:
            db_hit = db.lookup(comp, machine.name)
            if db_hit is None:
                warm = db.warm_start(comp, machine.name)
        if db_hit is not None:
            # cache-first tune: the record IS the result -- rebuild
            # (layouts, schedule) in-process, zero fresh measurements
            layouts, schedule = apply_record(db_hit, comp)
            result = TuneResult(
                task_name=comp.name,
                best_latency=db_hit.latency_s,
                best_layouts=layouts,
                best_schedule=schedule,
                measurements=0,
            )
        elif args.tuner == "vendor":
            result = tuner(comp, machine, measure=measure, trace=trace)
        elif args.tuner == "alt":
            result = tune_alt(
                comp, machine, budget=args.budget, seed=args.seed,
                measure=measure, trace=trace, checkpoint=checkpoint,
                restore=restore,
                pretrained=(warm or {}).get("pretrained"),
                cost_model_seed=(warm or {}).get("cost_model_seed"),
                profiler=prof,
            )
        else:
            result = tuner(
                comp, machine, budget=args.budget, seed=args.seed,
                measure=measure, trace=trace,
            )
        if db is not None and db_hit is None and result.best_schedule is not None:
            db.add(record_from_result(comp, machine.name, result, warm=True))
    except BaseException as exc:
        if writer is not None:
            writer.fail(repr(exc))
        _finalize_watchdog(watchdog, STATUS_FAILED)
        raise
    _finish_trace(trace, args)
    _record_db_use(writer, db)
    if writer is not None:
        _finalize_watchdog(watchdog, STATUS_COMPLETED)
        record = writer.finish(
            trace, tasks={comp.name: task_result_dict(result)}, profile=prof,
        )
        print(f"run recorded: {record.run_id} ({record.path})")
    print(f"operator {args.op} on {machine.name} via {args.tuner}:")
    print(f"  best latency: {result.best_latency * 1e3:.4f} ms "
          f"({result.measurements} simulated measurements)")
    if db is not None:
        if db_hit is not None:
            print(f"  tuning database: HIT -- served from {db.path} "
                  "with zero fresh measurements")
        elif warm is not None:
            print(f"  tuning database: warm start (neighbor distance "
                  f"{warm.get('distance', 0.0):.2f}); result deposited")
        else:
            print(f"  tuning database: miss; result deposited to {db.path}")
    telemetry = result.telemetry or {}
    if telemetry:
        print(
            f"  measure engine: {telemetry.get('fresh_evaluations', 0)} fresh "
            f"evaluations, {telemetry.get('cache_hit_rate', 0.0) * 100:.0f}% "
            f"cache hits, {telemetry.get('wall_time_s', 0.0):.2f}s wall"
        )
    for name, layout in sorted(result.best_layouts.items()):
        print(f"  {name:10s} {layout}")
    if result.best_schedule is not None:
        print(f"  schedule: {result.best_schedule}")
    _finish_profile(prof, args)
    return 0


def _tune_network_cmd(args, writer, restore) -> int:
    """``repro tune --model <net>``: whole-network cross-task tuning."""
    machine = get_machine(args.machine)
    builder = _MODELS.get(args.model)
    if builder is None:
        raise SystemExit(
            f"unknown model {args.model!r}; choose from {sorted(_MODELS)}"
        )
    if args.tuner != "alt":
        raise SystemExit("--model tuning uses the alt tuner only")
    measure = _measure_options(args)
    prof = _make_profiler(args)
    resumed = writer is not None
    if writer is None:
        writer = _make_writer(
            args, f"tune-net-{args.model}",
            workload=(
                f"tune-net:{args.model}:b{args.budget}:batch{args.batch}:"
                f"{machine.name}"
            ),
        )
    trace = _make_trace(args, f"tune-net:{args.model}", writer=writer,
                        append=resumed)
    watchdog = _make_watchdog(trace, writer, args)
    checkpoint = None
    if writer is not None:
        checkpoint = CheckpointManager(
            writer.checkpoint_path, every=max(args.checkpoint_every, 1)
        )
    options = SchedulerOptions(round_budget=args.round_budget)
    db = _open_db(args)
    try:
        result = tune_network(
            lambda: builder(args),
            machine,
            budget=args.budget,
            seed=args.seed,
            measure=measure,
            trace=trace,
            checkpoint=checkpoint,
            restore=restore,
            options=options,
            verify=args.verify,
            database=db,
            profiler=prof,
        )
    except BaseException as exc:
        if writer is not None:
            writer.fail(repr(exc))
        _finalize_watchdog(watchdog, STATUS_FAILED)
        raise
    _finish_trace(trace, args)
    _record_db_use(writer, db)
    if writer is not None:
        _finalize_watchdog(watchdog, STATUS_COMPLETED)
        record = writer.finish(
            trace,
            tasks={
                name: task_result_dict(res)
                for name, res in result.tasks.items()
            },
            model={
                "graph": result.graph_name,
                "mode": "alt-network",
                "latency_s": result.network_latency_s,
                "baseline_latency_s": result.baseline_latency_s,
                "speedup": result.speedup,
                "used_tuned": result.used_tuned,
                "verified": result.verified,
                "budget": result.budget,
                "tasks": len(result.tasks),
                "graph_nodes": result.n_nodes,
                "complex_nodes": result.n_complex_nodes,
                "n_conversions": getattr(result.model, "n_conversions", None),
                "fused_stages": len(getattr(result.model, "fuse_groups", {})),
            },
            allocations=result.allocations,
            profile=prof,
        )
        print(f"run recorded: {record.run_id} ({record.path})")
    if db is not None:
        p = db.provenance()
        print(f"tuning database {db.path}: {p['hits']} hit(s), "
              f"{p['misses']} miss(es), {p['warm_starts']} warm start(s), "
              f"{p['puts']} deposit(s)")
    print(network_report(result))
    _finish_profile(prof, args)
    if result.verified is False:
        return 1
    return 0


def cmd_compile(args) -> int:
    machine = get_machine(args.machine)
    builder = _MODELS.get(args.model)
    if builder is None:
        raise SystemExit(
            f"unknown model {args.model!r}; choose from {sorted(_MODELS)}"
        )
    graph = builder(args)
    prof = _make_profiler(args)
    writer = _make_writer(
        args, f"compile-{args.model}",
        workload=(
            f"compile:{args.model}:{args.mode}:b{args.budget}:"
            f"batch{args.batch}:{machine.name}"
        ),
    )
    trace = _make_trace(args, f"compile:{args.model}", writer=writer)
    watchdog = _make_watchdog(trace, writer, args)
    db = _open_db(args)
    try:
        model = compile_graph(
            graph,
            machine,
            CompileOptions(
                mode=args.mode,
                total_budget=args.budget,
                seed=args.seed,
                measure=_measure_options(args),
                trace=trace,
                records=db,
                profiler=prof,
            ),
        )
    except BaseException as exc:
        if writer is not None:
            writer.fail(repr(exc))
        _finalize_watchdog(watchdog, STATUS_FAILED)
        raise
    _finish_trace(trace, args)
    _record_db_use(writer, db)
    if writer is not None:
        _finalize_watchdog(watchdog, STATUS_COMPLETED)
        record = writer.finish(
            trace,
            tasks={
                name: task_result_dict(res)
                for name, res in model.task_results.items()
            },
            model={
                "graph": graph.name,
                "mode": args.mode,
                "latency_s": model.latency_s,
                "n_conversions": model.n_conversions,
                "fused_stages": len(model.fuse_groups),
            },
            profile=prof,
        )
        print(f"run recorded: {record.run_id} ({record.path})")
    if db is not None:
        p = db.provenance()
        print(f"tuning database {db.path}: {p['hits']} hit(s), "
              f"{p['misses']} miss(es), {p['warm_starts']} warm start(s), "
              f"{p['puts']} deposit(s)")
    print(full_report(model, trace=trace))
    _finish_profile(prof, args)
    return 0


def cmd_trace(args) -> int:
    data = load_trace(args.trace_file)
    print(trace_report(data, sort=args.sort))
    print()
    print(timeline_report(data, task=args.task))
    return 0


def cmd_runs_list(args) -> int:
    store = RunStore(args.store)
    ids, skipped = store.scan()
    if skipped:
        log.warning(
            "skipped %d unreadable run dir(s): %s", len(skipped),
            ", ".join(f"{e} ({reason})" for e, reason in skipped),
        )
    if not ids:
        print(f"(no runs in {store.root})")
        return 0
    for rid in ids:
        rec = store.load(rid)
        manifest = rec.manifest
        status = rec.status
        flag = ""
        if status != STATUS_COMPLETED:
            flag = ("  [interrupted -- resumable with `repro tune --resume`]"
                    if rec.resumable else f"  [{status}]")
        print(
            f"{rid}  status={status} "
            f"machine={manifest.get('machine')} "
            f"seed={manifest.get('seed')} "
            f"workload={manifest.get('workload')}{flag}"
        )
    return 0


def _resolve_record(ref: str, store: Optional[str]) -> Optional[RunRecord]:
    """The RunRecord behind a ``runs show`` reference, when it is one
    (summary JSON files and merged stores have no single record)."""
    try:
        if os.path.isdir(ref) and is_run_dir(ref):
            return RunRecord(ref)
        if store is not None and not os.path.exists(ref):
            return RunStore(store).load(ref)
    except (OSError, FileNotFoundError):
        return None
    return None


def cmd_runs_show(args) -> int:
    rec = _resolve_record(args.run, args.store)
    if rec is not None and rec.manifest_error is not None:
        log.warning("run %s: %s", rec.run_id, rec.manifest_error)
    try:
        summary = load_summary(args.run, store=args.store)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    print(f"run {summary.get('run_id')}:")
    for key in ("name", "machine", "seed", "git_sha", "repro_version"):
        if summary.get(key) is not None:
            print(f"  {key}: {summary[key]}")
    for name, t in sorted((summary.get("tasks") or {}).items()):
        lat = t.get("best_latency")
        lat_s = f"{lat * 1e6:9.2f} us" if isinstance(lat, (int, float)) else "?"
        print(
            f"  task {name}: best {lat_s} after {t.get('measurements')} "
            f"measurements (noise ~{(t.get('noise_rel') or 0) * 100:.1f}%)"
        )
    model = summary.get("model")
    if model:
        print(
            f"  model: {model.get('graph')} [{model.get('mode')}] "
            f"{model.get('latency_s', 0) * 1e3:.4f} ms, "
            f"{model.get('n_conversions')} conversions"
        )
    database = summary.get("database")
    if database:
        print(
            f"  database: {database.get('path')} "
            f"({database.get('records')} records) -- "
            f"{database.get('hits')} hit(s), {database.get('misses')} "
            f"miss(es), {database.get('warm_starts')} warm start(s), "
            f"{database.get('puts')} deposit(s)"
        )
    metrics = rec.metrics if rec is not None else {}
    for mname, snap in sorted(metrics.items()):
        # histogram snapshots carry the latency tails (satellite of the
        # live-telemetry PR: p50/p95/p99 were previously invisible)
        if not isinstance(snap, dict) or snap.get("p50") is None:
            continue
        is_seconds = mname.endswith("_s")  # convention: *_s metrics are time
        tails = "  ".join(
            (f"{p} {snap[p] * 1e6:.2f} us" if is_seconds
             else f"{p} {snap[p]:.4g}")
            for p in ("p50", "p95", "p99")
            if isinstance(snap.get(p), (int, float))
        )
        print(f"  {mname}: {tails} (n={snap.get('count')})")
    health = rec.health if rec is not None else {}
    if health:
        alerts = health.get("alerts") or []
        print(f"  health: {health.get('status')} "
              f"({len(alerts)} alert(s), run {health.get('run_status')})")
        for a in alerts:
            print(f"    [{a.get('rule')}] {a.get('message')}")
    lease_rows = rec.leases if rec is not None else []
    if lease_rows:
        # per-worker lease lifecycle from leases.jsonl (serve runs): the
        # retry/quarantine rows carry the worker that held the lease when
        # it failed, so blame lands on the flaky worker, not the healthy
        # one that eventually completed the re-dispatch
        per: Dict[str, Dict[str, int]] = {}
        totals = {"dispatch": 0, "complete": 0, "retry": 0, "evict": 0,
                  "quarantine": 0, "duplicate": 0, "stale": 0}
        for row in lease_rows:
            event = row.get("event")
            if event in totals:
                totals[event] += 1
            worker = row.get("worker")
            if worker is None or event not in ("dispatch", "complete",
                                               "retry", "evict"):
                continue
            st = per.setdefault(worker, {"dispatch": 0, "complete": 0,
                                         "retry": 0, "evict": 0})
            st[event] += 1
        print(f"  fleet: {totals['dispatch']} lease(s) dispatched, "
              f"{totals['complete']} completed, {totals['retry']} retried, "
              f"{totals['quarantine']} quarantined"
              + (f", {totals['duplicate']} duplicate(s) dropped"
                 if totals["duplicate"] else "")
              + (f", {totals['stale']} stale result(s) dropped"
                 if totals["stale"] else ""))
        for wname, st in sorted(per.items()):
            print(f"    worker {wname}: {st['dispatch']} dispatched, "
                  f"{st['complete']} completed, {st['retry']} retried, "
                  f"{st['evict']} eviction(s)")
    diag = summary.get("diagnostics")
    if diag:
        print(render_diagnostics(diag))
    profile = rec.profile if rec is not None else {}
    if profile:
        print()
        print(profile_report(profile))
    return 0


def cmd_runs_gc(args) -> int:
    store = RunStore(args.store)
    try:
        plan = store.gc(
            keep_last=args.keep_last, keep_days=args.keep_days,
            apply=args.apply,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    verb = "deleted" if args.apply else "would delete"
    deletes = errors = 0
    for row in plan:
        if row["action"] == "keep":
            print(f"  keep    {row['run_id']}  ({row['reason']})")
        elif row["action"] == "delete":
            deletes += 1
            print(f"  {verb:7s} {row['run_id']}  ({row['reason']})")
        else:
            errors += 1
            print(f"  ERROR   {row['run_id']}  ({row['reason']})")
    print(f"{verb} {deletes} of {len(plan)} run(s)")
    if not args.apply and deletes:
        print("(dry run -- pass --apply to actually delete)")
    return 1 if errors else 0


def cmd_watch(args) -> int:
    """``repro watch``: tail a live (or finished) run with health rules."""
    ref = args.run
    if os.path.isdir(ref) and is_run_dir(ref):
        run_dir = ref
    elif getattr(args, "store", None):
        try:
            run_dir = RunStore(args.store).load(ref).path
        except FileNotFoundError as exc:
            raise SystemExit(str(exc)) from exc
    else:
        raise SystemExit(
            f"{ref!r} is not a run directory (pass a run dir, or a run "
            "id with --store)"
        )
    try:
        rules = WatchRules.parse(args.rules)
        fail_on = parse_fail_on(args.fail_on)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    interactive = sys.stdout.isatty() and not args.once

    def emit(frame: str) -> None:
        if interactive:  # full-screen refresh on a terminal
            print("\x1b[2J\x1b[H" + frame, flush=True)
        else:  # append frames when piped/captured
            print(frame + "\n", flush=True)

    return watch_run(
        run_dir, rules=rules, fail_on=fail_on, interval=args.interval,
        once=args.once, max_seconds=args.max_seconds, emit=emit,
    )


def cmd_dashboard(args) -> int:
    """``repro dashboard``: render the static HTML aggregation page."""
    import glob as _glob

    bench: List[str] = []
    for pattern in args.bench or ["BENCH_*.json"]:
        bench.extend(sorted(_glob.glob(pattern)))
    data = write_dashboard(args.store, args.out, bench_paths=bench)
    alerts = sum(
        1 for r in data["runs"] if r.get("health_status") == "alert"
    )
    print(f"dashboard written to {args.out}: {len(data['runs'])} run(s), "
          f"{alerts} with active alerts, {len(data['benches'])} bench "
          "file(s)")
    if args.fail_on_alert and alerts:
        return 1
    return 0


def cmd_runs_export(args) -> int:
    from .obs.runstore import merge_summaries

    summaries = [load_summary(ref, store=args.store) for ref in args.runs]
    merged = (
        summaries[0] if len(summaries) == 1
        else merge_summaries(summaries, source=args.out)
    )
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"summary written to {args.out}")
    return 0


def cmd_runs_compare(args) -> int:
    base = load_summary(args.baseline, store=args.store)
    cand = load_summary(args.candidate, store=args.store)
    result = compare_summaries(base, cand, threshold=args.threshold)
    print(render_compare(result))
    if args.out:
        write_compare(result, args.out)
        print(f"comparison written to {args.out}")
    return 0 if result["verdict"] in ("pass", "identical") else 1


def cmd_db_stats(args) -> int:
    db = TuningDatabase(args.db)
    s = db.stats()
    print(f"tuning database {s['path']}:")
    print(f"  records: {s['records']} ({s['warm_capable']} with warm-start "
          "payloads)")
    for machine, n in sorted(s["machines"].items()):
        print(f"    {machine}: {n}")
    print(f"  on disk: {s['disk_lines']} line(s), {s['disk_bytes']} bytes")
    if s["disk_lines"] > s["records"]:
        print(f"  ({s['disk_lines'] - s['records']} superseded/duplicate "
              "line(s); run `repro db compact`)")
    return 0


def cmd_db_compact(args) -> int:
    db = TuningDatabase(args.db)
    out = db.compact()
    print(f"compacted {db.path}: {out['before']} line(s) -> "
          f"{out['after']} record(s)")
    return 0


def cmd_db_export(args) -> int:
    db = TuningDatabase(args.db)
    n = db.export(args.out)
    print(f"exported {n} record(s) to {args.out}")
    return 0


def cmd_db_import(args) -> int:
    db = TuningDatabase(args.db)
    n = db.import_file(args.src)
    print(f"imported {n} new-best record(s) from {args.src} "
          f"({len(db)} total)")
    return 0


def cmd_db_bench(args) -> int:
    """Cold-vs-warm benchmark (``BENCH_db_hits.json``, CI perf gate).

    Three measurements, exit 1 when a database invariant breaks:

    1. **cold** -- tune the pinned operator from scratch, deposit the record;
    2. **warm** -- reopen the database (as a second process would) and serve
       the same operator from its record: must cost zero fresh measurements
       and emit a byte-identical record;
    3. **transfer** -- tune a *similar* operator cold and warm-started, and
       compare the budget each needs to reach the cold run's best latency.
    """
    import tempfile
    import time as _time

    machine = get_machine(args.machine)
    db_path = args.db or os.path.join(
        tempfile.mkdtemp(prefix="repro-db-bench-"), "db.jsonl"
    )
    comp = _single_op(args.op, args.channels, args.size)

    def _fresh_measure() -> MeasureOptions:
        opts = MeasureOptions()
        opts.cache_dir = None  # honest cold runs: no cross-run eval cache
        return opts

    db = TuningDatabase(db_path)
    t0 = _time.perf_counter()
    cold = tune_alt(
        comp, machine, budget=args.budget, seed=args.seed,
        measure=_fresh_measure(),
    )
    cold_s = _time.perf_counter() - t0
    deposited = record_from_result(comp, machine.name, cold, warm=True)
    db.add(deposited)

    # a fresh handle over the same file stands in for the "second run"
    db2 = TuningDatabase(db_path)
    t0 = _time.perf_counter()
    hit = db2.lookup(comp, machine.name)
    served = None
    if hit is not None:
        layouts, schedule = apply_record(hit, comp)
        served = TuneResult(
            task_name=comp.name, best_latency=hit.latency_s,
            best_layouts=layouts, best_schedule=schedule, measurements=0,
        )
    warm_s = _time.perf_counter() - t0
    identical = hit is not None and hit.to_json() == deposited.to_json()

    similar_size = args.similar_size or args.size + max(args.size // 2, 2)
    sim = _single_op(args.op, args.channels, similar_size)
    t0 = _time.perf_counter()
    sim_cold = tune_alt(
        sim, machine, budget=args.budget, seed=args.seed,
        measure=_fresh_measure(),
    )
    sim_cold_s = _time.perf_counter() - t0
    warm_kwargs = db2.warm_start(sim, machine.name) or {}
    t0 = _time.perf_counter()
    sim_warm = tune_alt(
        sim, machine, budget=args.budget, seed=args.seed,
        measure=_fresh_measure(),
        pretrained=warm_kwargs.get("pretrained"),
        cost_model_seed=warm_kwargs.get("cost_model_seed"),
    )
    sim_warm_s = _time.perf_counter() - t0

    def _budget_to_reach(history, target: float) -> Optional[int]:
        for n, best in history:
            if best <= target:
                return n
        return None

    target = sim_cold.best_latency * (1.0 + args.tolerance)
    bench = {
        "schema": 1,
        "machine": machine.name,
        "op": args.op,
        "channels": args.channels,
        "size": args.size,
        "budget": args.budget,
        "seed": args.seed,
        "cold": {
            "wall_s": round(cold_s, 4),
            "measurements": cold.measurements,
            "best_latency_s": cold.best_latency,
        },
        "warm": {
            "wall_s": round(warm_s, 4),
            "measurements": 0 if served is not None else None,
            "hit": hit is not None,
            "identical_record": identical,
            "wall_speedup": round(cold_s / max(warm_s, 1e-9), 1),
        },
        "transfer": {
            "similar_size": similar_size,
            "neighbor_distance": warm_kwargs.get("distance"),
            "cold": {
                "wall_s": round(sim_cold_s, 4),
                "best_latency_s": sim_cold.best_latency,
                "budget_to_best": _budget_to_reach(sim_cold.history, target),
            },
            "warm_started": {
                "wall_s": round(sim_warm_s, 4),
                "best_latency_s": sim_warm.best_latency,
                "budget_to_cold_best": _budget_to_reach(
                    sim_warm.history, target
                ),
            },
        },
    }
    with open(args.out, "w") as f:
        json.dump(bench, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"db bench written to {args.out}")
    print(f"  cold: {cold.measurements} measurements, {cold_s:.2f}s wall")
    print(f"  warm: 0 fresh measurements, {warm_s * 1e3:.1f}ms wall "
          f"({bench['warm']['wall_speedup']}x)")
    reach_cold = bench["transfer"]["cold"]["budget_to_best"]
    reach_warm = bench["transfer"]["warm_started"]["budget_to_cold_best"]
    print(f"  transfer: cold reaches best at {reach_cold}, warm-started "
          f"at {reach_warm} measurements")
    failures = []
    if hit is None:
        failures.append("warm lookup missed a just-deposited record")
    if not identical:
        failures.append("warm hit did not emit an identical record")
    if served is not None and served.measurements != 0:
        failures.append("warm hit performed fresh measurements")
    if args.strict_transfer and reach_warm is not None and (
        reach_cold is not None and reach_warm > reach_cold
    ):
        failures.append(
            f"warm-started transfer needed more budget ({reach_warm}) than "
            f"cold ({reach_cold}) to reach the cold best"
        )
    for msg in failures:
        log.error("db bench invariant failed: %s", msg)
    return 1 if failures else 0


#: pinned workloads behind ``repro profile gate`` and the committed
#: ``BENCH_tuner_throughput.json`` baseline (op, channels, size, budget);
#: seed is always 0 so the search -- and the candidate count -- is exact
GATE_WORKLOADS = {
    "gmm-s16-b96": ("gmm", 8, 16, 96),
    "c2d-ch8-s8-b96": ("c2d", 8, 8, 96),
}


def _profile_tune(comp, machine, budget: int, seed: int,
                  mem: bool = False, cprofile: bool = False):
    """One profiled ALT tune with an honest (uncached) measurement engine.

    Returns ``(profiler, result, wall_s)``; the wall clock brackets exactly
    the tuner call so candidates/sec is end-to-end, not per-phase.
    """
    import time as _time

    measure = MeasureOptions()
    measure.cache_dir = None
    prof = Profiler()
    if mem:
        prof.memory_start()
    if cprofile:
        prof.cprofile_start()
    t0 = _time.perf_counter()
    result = tune_alt(
        comp, machine, budget=budget, seed=seed, measure=measure,
        profiler=prof,
    )
    wall = _time.perf_counter() - t0
    if cprofile:
        prof.cprofile_stop()
    if mem:
        prof.memory_stop()
    return prof, result, wall


def _throughput_entry(name: str, spec, machine, seed: int,
                      repeats: int) -> Dict:
    """One ``BENCH_tuner_throughput.json`` workload row, measured
    ``repeats`` times; ``noise_rel`` is the relative spread so the CI
    comparator can widen its tolerance on noisy hosts."""
    op, channels, size, budget = spec
    runs = []
    for _ in range(max(repeats, 1)):
        comp = _single_op(op, channels, size)
        prof, result, wall = _profile_tune(comp, machine, budget, seed)
        runs.append((prof, result, wall, result.measurements / wall))
    rates = sorted(r[3] for r in runs)
    mean_cps = sum(rates) / len(rates)
    noise = (rates[-1] - rates[0]) / mean_cps if len(rates) > 1 else 0.0
    # the median-wall run donates the phase attribution
    prof, result, wall, _cps = sorted(runs, key=lambda r: r[2])[len(runs) // 2]
    return {
        "wall_s": round(wall, 4),
        "candidates": result.measurements,
        "candidates_per_s": round(mean_cps, 2),
        "noise_rel": round(noise, 4),
        "repeats": len(runs),
        "phases": {
            pname: {
                "self_s": round(stat.self_s, 4),
                "items_per_s": stat.items_per_s,
            }
            for pname, stat in sorted(prof.phases.items())
        },
    }


def _profile_gate(args) -> int:
    """``repro profile gate``: regenerate the pinned throughput bench and
    (with ``--baseline``) gate against a committed one."""
    machine = get_machine(args.machine)
    workloads: Dict[str, Dict] = {}
    for name, spec in GATE_WORKLOADS.items():
        workloads[name] = _throughput_entry(
            name, spec, machine, args.seed, args.repeats
        )
        w = workloads[name]
        print(f"  {name:20s} {w['candidates']} candidates in "
              f"{w['wall_s']:.2f}s -> {w['candidates_per_s']:.1f}/s "
              f"(noise ~{w['noise_rel'] * 100:.0f}%, {w['repeats']} repeats)")
    bench = {
        "schema": 1,
        "machine": machine.name,
        "seed": args.seed,
        "workloads": workloads,
    }
    with open(args.out, "w") as f:
        json.dump(bench, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"throughput bench written to {args.out}")
    if args.baseline:
        with open(args.baseline) as f:
            base = json.load(f)
        result = compare_throughput(base, bench, threshold=args.threshold)
        print()
        print(render_throughput_compare(result))
        return 0 if result["verdict"] == "pass" else 1
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: where does tuning wall time go?

    ``repro profile <op>`` tunes one operator with the phase profiler on
    and prints the hot-path table (plus optional folded cProfile stacks
    and tracemalloc snapshots); ``repro profile gate`` measures the pinned
    CI workloads and writes ``BENCH_tuner_throughput.json``.
    """
    if args.workload == "gate":
        return _profile_gate(args)
    machine = get_machine(args.machine)
    comp = _single_op(args.workload, args.channels, args.size)
    prof, result, wall = _profile_tune(
        comp, machine, args.budget, args.seed,
        mem=args.mem, cprofile=args.cprofile_out is not None,
    )
    print(f"profiled {args.workload} on {machine.name}: "
          f"best {result.best_latency * 1e6:.2f} us, "
          f"{result.measurements} candidates in {wall:.2f}s "
          f"({result.measurements / wall:.1f}/s)")
    print(f"  attribution: {attribution_fraction(prof) * 100:.1f}% of tune "
          "wall time lands in a named phase")
    print()
    print(profile_report(prof, sort=args.sort))
    if args.cprofile_out is not None:
        n = prof.save_folded(args.cprofile_out)
        print(f"\nfolded stacks written to {args.cprofile_out} ({n} lines; "
              "feed to a flamegraph renderer)")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(prof.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"profile payload written to {args.out}")
    return 0


def _fuzz_oracle_options(args):
    from .testing.oracle import OracleOptions

    return OracleOptions(
        machine=args.machine,
        compile_budget=args.budget,
        tune_budget=args.tune_budget,
    )


def _fuzz_checks(args):
    from .testing.oracle import DEFAULT_CHECKS

    if not args.checks:
        return DEFAULT_CHECKS
    checks = tuple(c.strip() for c in args.checks.split(",") if c.strip())
    for c in checks:
        if c not in DEFAULT_CHECKS:
            raise SystemExit(
                f"unknown check {c!r}; choose from {','.join(DEFAULT_CHECKS)}"
            )
    return checks


def cmd_fuzz(args) -> int:
    from .testing.fuzz import export_corpus, replay_failure, run_fuzz
    from .testing.generator import GraphSpec

    opts = _fuzz_oracle_options(args)
    families = (
        tuple(f.strip() for f in args.families.split(",") if f.strip())
        if args.families else None
    )

    if args.action == "corpus":
        if not args.out:
            raise SystemExit("fuzz corpus needs --out FILE")
        summary = export_corpus(
            args.out, seeds=args.seeds, start=args.start,
            samples_per_task=args.samples, options=opts,
            max_ops=args.max_ops, families=families,
            progress=lambda i, n: log.info(
                "corpus: %d/%d seeds, %d task classes", i, args.seeds, n
            ) if i % 25 == 0 else None,
        )
        print(
            f"corpus: {summary['tasks']} task classes, "
            f"{summary['samples']} measured samples from "
            f"{summary['seeds']} seeds -> {summary['path']}"
        )
        return 0

    if args.action == "replay":
        if not args.spec:
            raise SystemExit("fuzz replay needs --spec FILE")
        with open(args.spec) as f:
            payload = json.load(f)
        if payload.get("kind") == "fuzz_failure":
            report = replay_failure(payload, opts)
            spec = GraphSpec.from_dict(payload["spec"])
        else:  # a bare spec JSON: run the full oracle on it
            from .testing.oracle import run_oracle

            spec = GraphSpec.from_dict(payload)
            report = run_oracle(spec, _fuzz_checks(args), opts)
        print(f"replayed {spec!r} (hash {spec.spec_hash()[:12]})")
        for failure in report.failures:
            print(f"  [{failure.check}] {failure.node}: {failure.message}")
        if report.failures:
            print(f"{len(report.failures)} failure(s) reproduced")
            return 1
        print("no failures: spec passes the oracle now")
        return 0

    store = RunStore(args.run_store) if args.run_store else None
    checks = _fuzz_checks(args)

    def progress(i, seed, n_failures):
        if i % 25 == 0:
            log.info("fuzz: %d seeds done (last %d), %d failures",
                     i, seed, n_failures)

    result = run_fuzz(
        seeds=args.seeds, start=args.start,
        soak_s=args.soak * 60.0 if args.soak is not None else None,
        checks=checks, options=opts, store=store,
        minimize=not args.no_minimize, fail_fast=args.fail_fast,
        max_ops=args.max_ops, families=families, progress=progress,
    )
    print(
        f"fuzz: {result.seeds_run} seeds, {len(result.failures)} failures "
        f"in {result.duration_s:.1f}s (checks: {','.join(checks)})"
    )
    for payload in result.failures:
        print(
            f"  seed {payload['seed']} [{payload['check']}] "
            f"{payload['node']}: {payload['message']} "
            f"(minimized to {len(payload['spec']['ops'])} ops)"
        )
    if result.run_path:
        print(f"run recorded: {result.run_path}")
    return 1 if result.failures else 0


def cmd_machines(_args) -> int:
    for name in sorted(PRESETS):
        m = get_machine(name)
        caches = " / ".join(f"{c.name} {c.size_bytes // 1024}K" for c in m.caches)
        print(f"{name:12s} {m.cores:5d} cores  {m.vector_lanes:3d}-lane SIMD  "
              f"{m.freq_ghz:.1f} GHz  caches: {caches}")
    return 0


def cmd_models(_args) -> int:
    for name in sorted(_MODELS):
        print(name)
    return 0


# ---------------------------------------------------------------------------
# Compile-as-a-service: the tuning fleet (repro serve ...)
# ---------------------------------------------------------------------------

def _serve_options(args) -> ServeOptions:
    return ServeOptions(
        host=args.host, port=args.port,
        lease_size=max(args.lease_size, 1),
        lease_timeout_s=args.lease_timeout,
        heartbeat_timeout_s=args.heartbeat_timeout,
        max_lease_retries=args.max_lease_retries,
        backoff_s=args.backoff,
        degrade_wait_s=args.degrade_wait,
        device_ms=args.device_ms,
    )


def cmd_serve_start(args) -> int:
    """``repro serve start``: coordinator daemon + optional local fleet."""
    try:
        rules = WatchRules.parse(args.watch_rules)
    except ValueError as exc:
        raise SystemExit(f"--watch-rules: {exc}") from exc
    opts = _serve_options(args)
    coord = Coordinator(
        store_root=args.store, options=opts, watch_rules=rules,
        checkpoint_every=args.checkpoint_every, max_jobs=args.max_jobs,
    ).start()
    print(f"coordinator listening on {opts.host}:{coord.port}", flush=True)
    if args.resume:
        resumed = coord.enqueue_resumable()
        print(f"re-enqueued {resumed} interrupted job(s)", flush=True)
    fleet = None
    if args.workers:
        fleet = LocalFleet(
            opts.host, coord.port, args.workers,
            fault_spec=args.inject_faults,
            respawn=not args.no_respawn,
        ).start()
        print(f"spawned {args.workers} local worker process(es)", flush=True)
    try:
        coord.wait()
    except KeyboardInterrupt:
        print("interrupted; shutting down", flush=True)
    finally:
        coord.stop()
        if fleet is not None:
            fleet.stop()
    return 0


def cmd_serve_worker(args) -> int:
    """``repro serve worker``: one measurement worker process."""
    try:
        host, port = parse_addr(args.connect)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    return run_worker(
        host, port, args.name, fault_spec=args.inject_faults,
        heartbeat_s=args.heartbeat, generation=args.generation,
    )


def cmd_serve_tune(args) -> int:
    """``repro serve tune``: submit one tune job and wait for the result."""
    job = {
        "kind": "tune", "op": args.op, "channels": args.channels,
        "size": args.size, "budget": args.budget, "seed": args.seed,
        "machine": args.machine, "no_cache": not args.measure_cache,
    }
    try:
        addr = parse_addr(args.connect)
        result = submit_and_wait(addr, job, timeout=args.timeout)
    except (OSError, ConnectionError, ValueError) as exc:
        raise SystemExit(f"serve tune failed: {exc}") from exc
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
    if not result.get("ok"):
        raise SystemExit(f"job failed: {result.get('error')}")
    lat = result.get("best_latency")
    lat_s = f"{lat * 1e6:.2f} us" if isinstance(lat, (int, float)) else "?"
    print(f"{args.op}: best {lat_s} after {result.get('measurements')} "
          f"measurements (run {result.get('run_id')})")
    return 0


def cmd_serve_status(args) -> int:
    """``repro serve status``: one-shot fleet/queue snapshot."""
    try:
        status = fetch_status(parse_addr(args.connect))
    except (OSError, ConnectionError, ValueError) as exc:
        raise SystemExit(f"serve status failed: {exc}") from exc
    print(f"coordinator on port {status.get('port')}: "
          f"{status.get('live_workers')} live worker(s), "
          f"{status.get('queued_jobs')} queued job(s), "
          f"{status.get('jobs_done')} done"
          + (" [DEGRADED]" if status.get("degraded") else ""))
    for name, st in sorted((status.get("workers") or {}).items()):
        print(f"  worker {name}: {st.get('dispatched')} dispatched, "
              f"{st.get('completed')} completed, {st.get('retried')} "
              f"retried, {st.get('evicted')} eviction(s)")
    counters = status.get("counters") or {}
    if any(counters.values()):
        print("  " + ", ".join(
            f"{k}={v}" for k, v in sorted(counters.items()) if v))
    return 0


def cmd_serve_stop(args) -> int:
    """``repro serve stop``: ask the daemon to shut down."""
    try:
        addr = parse_addr(args.connect)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    if request_shutdown(addr):
        print("coordinator acknowledged shutdown")
        return 0
    print("coordinator did not acknowledge (already down?)")
    return 1


def _bench_candidates(op: str, channels: int, size: int, machine_name: str,
                      count: int, seed: int):
    """A deterministic, de-duplicated candidate set for the scaling bench."""
    import random

    from .tuning.task import TuningTask

    comp = _single_op(op, channels, size)
    machine = get_machine(machine_name)
    probe = TuningTask(comp, machine)
    layouts = (
        probe.layouts_from(probe.template.space().sample(random.Random(seed)))
        if probe.template is not None else {}
    )
    loop_space = probe.loop_space_for(layouts)
    space = loop_space.space()
    rng = random.Random(seed)
    candidates, seen = [], set()
    attempts = 0
    while len(candidates) < count and attempts < count * 50:
        attempts += 1
        sched = loop_space.schedule(space.sample(rng))
        sig = probe._signature(layouts, sched)
        if sig in seen:
            continue
        seen.add(sig)
        candidates.append((layouts, sched))
    return comp, machine, candidates


def cmd_serve_bench(args) -> int:
    """``repro serve bench``: 1-vs-N worker throughput + fault-storm row.

    Each row measures the same candidate set through a fresh coordinator
    and fleet; latencies must agree bit-identically across rows (crash and
    timeout faults only force retries, they never change values).  Exits 1
    when the N-worker speedup over 1 worker falls below ``--min-speedup``
    or any row disagrees on a latency.
    """
    import time as _time

    from .tuning.task import TuningTask

    try:
        worker_counts = sorted(
            {int(tok) for tok in args.workers.split(",") if tok.strip()}
        )
    except ValueError as exc:
        raise SystemExit(f"--workers: {exc}") from exc
    if not worker_counts or min(worker_counts) < 1:
        raise SystemExit("--workers needs a comma list of counts >= 1")
    comp, machine, candidates = _bench_candidates(
        args.op, args.channels, args.size, args.machine,
        args.candidates, args.seed,
    )
    rows = []
    for n_workers, fault_spec in (
        [(n, None) for n in worker_counts]
        + ([(max(worker_counts), args.fault_storm)] if args.fault_storm
           else [])
    ):
        opts = ServeOptions(
            lease_size=max(args.lease_size, 1),
            lease_timeout_s=args.lease_timeout,
            device_ms=args.device_ms,
            degrade_wait_s=10.0,  # the bench must not degrade at startup
        )
        coord = Coordinator(options=opts).start()
        fleet = LocalFleet(
            opts.host, coord.port, n_workers, fault_spec=fault_spec,
        ).start()
        deadline = _time.monotonic() + 30.0
        while (coord.dispatcher.live_workers() < n_workers
               and _time.monotonic() < deadline):
            _time.sleep(0.02)
        if coord.dispatcher.live_workers() == 0:
            coord.stop()
            fleet.stop()
            raise SystemExit(f"no worker registered for the {n_workers}-"
                             "worker row")
        task = TuningTask(comp, machine, measure=MeasureOptions(
            jobs=1, cache_dir=None, dispatcher=coord.dispatcher,
        ))
        t0 = _time.monotonic()
        latencies = list(task.measure_batch(candidates).latencies)
        wall = _time.monotonic() - t0
        counters = dict(coord.dispatcher.counters)
        coord.stop()
        fleet.stop()
        row = {
            "workers": n_workers,
            "fault_spec": fault_spec,
            "wall_s": round(wall, 6),
            "candidates_per_s": round(len(candidates) / wall, 3),
            "fleet_evaluations": counters.get("leases_completed", 0),
            "lease_retries": counters.get("lease_retries", 0),
            "workers_evicted": counters.get("workers_evicted", 0),
            "latencies": latencies,
        }
        rows.append(row)
        label = f"{n_workers} worker(s)" + (
            f" + faults [{fault_spec}]" if fault_spec else "")
        print(f"{label:40s} {wall:7.3f}s  "
              f"{row['candidates_per_s']:8.1f} cand/s  "
              f"({row['lease_retries']} retries, "
              f"{row['workers_evicted']} evictions)", flush=True)

    base = rows[0]
    peak = max(rows[:len(worker_counts)],
               key=lambda r: r["candidates_per_s"])
    speedup = peak["candidates_per_s"] / base["candidates_per_s"]
    identical = all(r["latencies"] == base["latencies"] for r in rows)
    bench = {
        "bench": "serve_scaling",
        "op": args.op, "channels": args.channels, "size": args.size,
        "machine": args.machine, "seed": args.seed,
        "candidates": len(candidates),
        "lease_size": max(args.lease_size, 1),
        "device_ms": args.device_ms,
        "rows": [
            {k: v for k, v in r.items() if k != "latencies"} for r in rows
        ],
        "speedup": round(speedup, 3),
        "min_speedup": args.min_speedup,
        "identical_latencies": identical,
    }
    if args.out:
        with open(args.out, "w") as f:
            json.dump(bench, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench written to {args.out}")
    print(f"speedup {speedup:.2f}x at {peak['workers']} workers "
          f"(floor {args.min_speedup}x); latencies "
          + ("identical across rows" if identical else "DIVERGED"))
    if not identical:
        print("FAIL: rows disagree on candidate latencies")
        return 1
    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below {args.min_speedup}x")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ALT reproduction command-line interface"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="verbose logging (repeat for debug output)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log warnings and errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    measure_flags = argparse.ArgumentParser(add_help=False)
    measure_flags.add_argument(
        "--jobs", type=int, default=None,
        help="parallel measurement workers (default: REPRO_MEASURE_JOBS or 1)",
    )
    measure_flags.add_argument(
        "--measure-cache-dir", default=None,
        help="persistent evaluation cache directory (default: ~/.cache/repro)",
    )
    measure_flags.add_argument(
        "--no-measure-cache", action="store_true",
        help="disable the persistent on-disk evaluation cache",
    )
    measure_flags.add_argument(
        "--measure-timeout", type=float, default=None,
        help="per-candidate measurement timeout in seconds (0 disables)",
    )
    measure_flags.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record a structured trace of the run and save it as JSONL "
             "(render with `python -m repro trace FILE`)",
    )
    measure_flags.add_argument(
        "--run-store", default=None, metavar="DIR",
        help="persist this run into a run-registry directory (manifest, "
             "trace, rounds, results; inspect with `python -m repro runs`)",
    )
    measure_flags.add_argument(
        "--no-stream", action="store_true",
        help="with --run-store: do not stream trace.jsonl live / run the "
             "health watchdog; write everything at the end as before",
    )
    measure_flags.add_argument(
        "--watch-rules", default=None, metavar="SPEC",
        help="override health-watchdog thresholds, e.g. "
             "'stall_rounds=10,error_rate=0.5' (see repro.obs.watch)",
    )
    measure_flags.add_argument(
        "--db", default=None, metavar="PATH",
        help="persistent tuning database (JSONL file or directory): exact "
             "task hits compile from their records with zero fresh "
             "measurements, similar tasks warm-start, and fresh results "
             "are deposited back (inspect with `python -m repro db`)",
    )
    measure_flags.add_argument(
        "--profile", action="store_true",
        help="attribute wall time across tuner phases (space sampling, "
             "cost model, PPO, measurement...); prints a hot-path table "
             "and lands profile.json in the run store",
    )
    measure_flags.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection for chaos testing, e.g. "
             "'seed=7,crash=0.02,timeout=0.01,oserror=0.04,hang=2' "
             "(rates per evaluation; see repro.tuning.faults)",
    )

    p = sub.add_parser(
        "tune", help="tune one operator or a whole network (--model)",
        parents=[measure_flags],
    )
    p.add_argument("op", nargs="?", default=None,
                   choices=["c2d", "dep", "grp", "dil", "c1d", "c3d", "gmm"])
    p.add_argument("--model", default=None, metavar="NET",
                   help="tune a whole model-zoo network instead of one "
                        "operator: deduplicated weighted tasks share the "
                        "budget via the cross-task scheduler "
                        f"(choose from {sorted(_MODELS)})")
    p.add_argument("--machine", default="intel_cpu")
    p.add_argument("--tuner", default="alt",
                   choices=sorted(BASELINE_TUNERS) + ["alt"])
    p.add_argument("--budget", type=int, default=200)
    p.add_argument("--channels", type=int, default=64)
    p.add_argument("--size", type=int, default=28)
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--image", type=int, default=64)
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--width", type=int, default=None)
    p.add_argument("--round-budget", type=int, default=None, metavar="N",
                   help="measurements per scheduler grant in --model runs "
                        "(default: derived from budget and task count)")
    p.add_argument("--verify", action="store_true",
                   help="after a --model tune, execute the network and "
                        "check outputs against the reference evaluator")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="checkpoint cadence in tuner rounds when a run store "
                        "is active (default: every round)")
    p.add_argument("--resume", default=None, metavar="RUN",
                   help="resume an interrupted run: a run directory, or a "
                        "run id with --run-store; the recorded seed/budget/"
                        "operator are restored from the manifest")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "compile", help="compile a model-zoo network", parents=[measure_flags]
    )
    p.add_argument("model")
    p.add_argument("--machine", default="intel_cpu")
    p.add_argument("--mode", default="alt")
    p.add_argument("--budget", type=int, default=400)
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--image", type=int, default=64)
    p.add_argument("--seq", type=int, default=32)
    p.add_argument("--width", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("trace", help="render a saved JSONL trace")
    p.add_argument("trace_file", help="path to a trace written by --trace-out")
    p.add_argument("--task", default=None,
                   help="restrict the tuning timeline to one task")
    p.add_argument("--sort", default=None, choices=["self", "total", "name"],
                   help="sibling span order: self/total time (descending) "
                        "or name (default: chronological)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="phase-profile one tuning run (where does the wall time go?) "
             "or, with 'gate', regenerate the pinned throughput bench",
    )
    p.add_argument("workload",
                   choices=sorted(["c2d", "dep", "c1d", "c3d", "gmm", "gate"]))
    p.add_argument("--machine", default="intel_cpu")
    p.add_argument("--budget", type=int, default=96)
    p.add_argument("--channels", type=int, default=8)
    p.add_argument("--size", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sort", default="self", choices=["self", "total", "name"],
                   help="hot-path table order (default: self time)")
    p.add_argument("--mem", action="store_true",
                   help="also snapshot tracemalloc at round boundaries "
                        "(adds allocation overhead; off by default)")
    p.add_argument("--cprofile-out", default=None, metavar="FILE",
                   help="capture cProfile under the phases and write folded "
                        "stacks (flamegraph input) to FILE")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the machine-readable profile payload as JSON")
    p.add_argument("--repeats", type=int, default=3,
                   help="gate mode: repeat runs per workload for the noise "
                        "estimate (default 3)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="gate mode: compare against a committed "
                        "BENCH_tuner_throughput.json; exit 1 on regression")
    p.add_argument("--threshold", type=float, default=THROUGHPUT_THRESHOLD,
                   help="gate mode: relative candidates/sec regression "
                        f"tolerance floor (default {THROUGHPUT_THRESHOLD})")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("runs", help="inspect/compare the run registry")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    rp = runs_sub.add_parser("list", help="list runs in a store")
    rp.add_argument("store", help="run-store directory (see --run-store)")
    rp.set_defaults(fn=cmd_runs_list)

    rp = runs_sub.add_parser(
        "show", help="manifest + results + search-quality diagnostics"
    )
    rp.add_argument("run", help="run directory, run id, prefix, or 'latest'")
    rp.add_argument("--store", default=None,
                    help="run-store directory for resolving run ids")
    rp.set_defaults(fn=cmd_runs_show)

    rp = runs_sub.add_parser(
        "export", help="write a comparable summary JSON (baseline authoring)"
    )
    rp.add_argument("runs", nargs="+",
                    help="runs to merge into one summary")
    rp.add_argument("--store", default=None,
                    help="run-store directory for resolving run ids")
    rp.add_argument("--out", default="BENCH_baseline.json",
                    help="output file (default: BENCH_baseline.json)")
    rp.set_defaults(fn=cmd_runs_export)

    rp = runs_sub.add_parser(
        "compare",
        help="noise-aware diff of two runs / a run against a baseline; "
             "exit code 1 on regression",
    )
    rp.add_argument("baseline",
                    help="baseline: run dir, id, store dir, or summary JSON")
    rp.add_argument("candidate",
                    help="candidate: run dir, id, store dir, or summary JSON")
    rp.add_argument("--store", default=None,
                    help="run-store directory for resolving run ids")
    rp.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="relative regression threshold (default 0.05)")
    rp.add_argument("--out", default="BENCH_compare.json",
                    help="machine-readable comparison output "
                         "(default: BENCH_compare.json; '' disables)")
    rp.set_defaults(fn=cmd_runs_compare)

    rp = runs_sub.add_parser(
        "gc",
        help="prune old run directories (dry run by default; refuses runs "
             "whose manifest still says running)",
    )
    rp.add_argument("store", help="run-store directory")
    rp.add_argument("--keep-last", type=int, default=None, metavar="N",
                    help="always keep the N newest runs")
    rp.add_argument("--keep-days", type=float, default=None, metavar="D",
                    help="always keep runs younger than D days")
    rp.add_argument("--apply", action="store_true",
                    help="actually delete (default: print the plan only)")
    rp.set_defaults(fn=cmd_runs_gc)

    p = sub.add_parser(
        "watch",
        help="tail a live (or finished) run: round progress, best-latency "
             "curve, throughput, error counters, health alerts",
    )
    p.add_argument("run", help="run directory, run id, prefix, or 'latest'")
    p.add_argument("--store", default=None,
                   help="run-store directory for resolving run ids")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="poll interval in seconds (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (scripted checks)")
    p.add_argument("--max-seconds", type=float, default=None, metavar="S",
                   help="stop tailing after S seconds even if still running")
    p.add_argument("--rules", default=None, metavar="SPEC",
                   help="health-rule thresholds, e.g. "
                        "'stall_rounds=10,error_rate=0.5'")
    p.add_argument("--fail-on", default=None, metavar="RULES",
                   help="exit 1 when any of these alerts is active at the "
                        "end: comma-separated rule names or 'any' "
                        "(e.g. --fail-on stall,errors)")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser(
        "dashboard",
        help="render a self-contained HTML dashboard over a run store + "
             "committed BENCH_*.json files (CI artifact)",
    )
    p.add_argument("store", help="run-store directory to aggregate")
    p.add_argument("--out", default="dashboard.html",
                   help="output HTML file (default: dashboard.html)")
    p.add_argument("--bench", action="append", default=None, metavar="GLOB",
                   help="bench JSON glob(s) to include "
                        "(default: BENCH_*.json in the current directory)")
    p.add_argument("--fail-on-alert", action="store_true",
                   help="exit 1 when any aggregated run has active alerts")
    p.set_defaults(fn=cmd_dashboard)

    p = sub.add_parser(
        "db", help="inspect/maintain the persistent tuning database"
    )
    db_sub = p.add_subparsers(dest="db_command", required=True)

    dp = db_sub.add_parser("stats", help="record counts, warm payloads, disk")
    dp.add_argument("db", help="database file or directory (see --db)")
    dp.set_defaults(fn=cmd_db_stats)

    dp = db_sub.add_parser(
        "compact", help="rewrite the append log as its keep-best view"
    )
    dp.add_argument("db", help="database file or directory")
    dp.set_defaults(fn=cmd_db_compact)

    dp = db_sub.add_parser(
        "export", help="atomically export the keep-best records as JSONL"
    )
    dp.add_argument("db", help="database file or directory")
    dp.add_argument("--out", required=True, help="destination JSONL file")
    dp.set_defaults(fn=cmd_db_export)

    dp = db_sub.add_parser(
        "import", help="keep-best merge another record file into the database"
    )
    dp.add_argument("db", help="database file or directory")
    dp.add_argument("src", help="JSONL record file to absorb")
    dp.set_defaults(fn=cmd_db_import)

    dp = db_sub.add_parser(
        "bench",
        help="cold-vs-warm benchmark: exact-hit replay cost and similar-task "
             "warm-start transfer (writes BENCH_db_hits.json; exits 1 when "
             "a warm hit measures anything fresh or emits a drifted record)",
    )
    dp.add_argument("--db", default=None,
                    help="database path (default: a throwaway temp dir)")
    dp.add_argument("--machine", default="intel_cpu")
    dp.add_argument("--op", default="gmm",
                    choices=["c2d", "dep", "c1d", "c3d", "gmm"])
    dp.add_argument("--channels", type=int, default=8)
    dp.add_argument("--size", type=int, default=16)
    dp.add_argument("--similar-size", type=int, default=None,
                    help="size of the transfer target "
                         "(default: size + size//2)")
    dp.add_argument("--budget", type=int, default=96)
    dp.add_argument("--seed", type=int, default=0)
    dp.add_argument("--tolerance", type=float, default=0.05,
                    help="relative slack when checking budget-to-reach "
                         "(default 0.05)")
    dp.add_argument("--strict-transfer", action="store_true",
                    help="also fail when warm-started transfer needs more "
                         "budget than cold to reach the cold best")
    dp.add_argument("--out", default="BENCH_db_hits.json")
    dp.set_defaults(fn=cmd_db_bench)

    p = sub.add_parser(
        "serve",
        help="compile-as-a-service: fault-tolerant coordinator/worker "
             "tuning fleet (start/worker/tune/status/stop/bench)",
    )
    serve_sub = p.add_subparsers(dest="serve_command", required=True)

    fleet_flags = argparse.ArgumentParser(add_help=False)
    fleet_flags.add_argument("--host", default="127.0.0.1")
    fleet_flags.add_argument("--port", type=int, default=0,
                             help="listen port (default: 0 = ephemeral, "
                                  "printed at startup)")
    fleet_flags.add_argument("--lease-size", type=int, default=8,
                             help="candidates per lease batch (default 8)")
    fleet_flags.add_argument("--lease-timeout", type=float, default=30.0,
                             metavar="S",
                             help="evict a worker holding a lease past S "
                                  "seconds and re-dispatch (default 30)")
    fleet_flags.add_argument("--heartbeat-timeout", type=float, default=10.0,
                             metavar="S",
                             help="evict a worker silent past S seconds "
                                  "(default 10)")
    fleet_flags.add_argument("--max-lease-retries", type=int, default=5,
                             help="re-dispatches before a lease's candidates "
                                  "are quarantined as inf (default 5)")
    fleet_flags.add_argument("--backoff", type=float, default=0.05,
                             metavar="S",
                             help="base of the bounded exponential backoff "
                                  "between lease re-dispatches (default 0.05)")
    fleet_flags.add_argument("--degrade-wait", type=float, default=2.0,
                             metavar="S",
                             help="grace before degrading to local serial "
                                  "measurement at zero workers (default 2)")
    fleet_flags.add_argument("--device-ms", type=float, default=0.0,
                             help="simulated per-candidate device occupancy "
                                  "on workers in ms (what a fleet overlaps; "
                                  "0 = off)")

    sp = serve_sub.add_parser(
        "start",
        help="run the coordinator daemon (and optionally a local worker "
             "fleet) until `serve stop` or Ctrl-C",
        parents=[fleet_flags],
    )
    sp.add_argument("--store", default=None, metavar="DIR",
                    help="run-registry directory: every job lands as a "
                         "resumable run (checkpoint + trace + health)")
    sp.add_argument("--workers", type=int, default=0, metavar="N",
                    help="spawn N local worker processes (they are "
                         "respawned when they die)")
    sp.add_argument("--no-respawn", action="store_true",
                    help="do not resurrect dead local workers")
    sp.add_argument("--inject-faults", default=None, metavar="SPEC",
                    help="worker-side fault plan, decorrelated per worker "
                         "and respawn generation, e.g. "
                         "'seed=7,crash=0.02,timeout=0.01,hang=0.5'")
    sp.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                    help="checkpoint cadence in tuner rounds (default 1)")
    sp.add_argument("--max-jobs", type=int, default=None, metavar="N",
                    help="exit after N jobs (tests/CI)")
    sp.add_argument("--resume", action="store_true",
                    help="re-enqueue interrupted serve jobs found in "
                         "--store (continues from their checkpoints "
                         "bit-identically)")
    sp.add_argument("--watch-rules", default=None, metavar="SPEC",
                    help="health-watchdog thresholds, e.g. "
                         "'workers_retry_rate=0.3' (see repro.obs.watch)")
    sp.set_defaults(fn=cmd_serve_start)

    sp = serve_sub.add_parser(
        "worker", help="run one measurement worker process"
    )
    sp.add_argument("--connect", required=True, metavar="HOST:PORT")
    sp.add_argument("--name", required=True)
    sp.add_argument("--generation", type=int, default=0,
                    help="respawn generation (mixed into the fault seed)")
    sp.add_argument("--heartbeat", type=float, default=0.5, metavar="S")
    sp.add_argument("--inject-faults", default=None, metavar="SPEC")
    sp.set_defaults(fn=cmd_serve_worker)

    sp = serve_sub.add_parser(
        "tune", help="submit one tune job to a coordinator and wait"
    )
    sp.add_argument("op", choices=["c2d", "dep", "c1d", "c3d", "gmm"])
    sp.add_argument("--connect", required=True, metavar="HOST:PORT")
    sp.add_argument("--machine", default="intel_cpu")
    sp.add_argument("--budget", type=int, default=96)
    sp.add_argument("--channels", type=int, default=8)
    sp.add_argument("--size", type=int, default=16)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--timeout", type=float, default=None, metavar="S",
                    help="give up waiting after S seconds (job keeps "
                         "running; the result stays in the run registry)")
    sp.add_argument("--measure-cache", action="store_true",
                    help="let workers use the persistent evaluation cache "
                         "(serve jobs run uncached by default)")
    sp.add_argument("--json-out", default=None, metavar="FILE",
                    help="write the raw job result frame as JSON")
    sp.set_defaults(fn=cmd_serve_tune)

    sp = serve_sub.add_parser("status", help="fleet/queue snapshot")
    sp.add_argument("--connect", required=True, metavar="HOST:PORT")
    sp.set_defaults(fn=cmd_serve_status)

    sp = serve_sub.add_parser("stop", help="shut the coordinator down")
    sp.add_argument("--connect", required=True, metavar="HOST:PORT")
    sp.set_defaults(fn=cmd_serve_stop)

    sp = serve_sub.add_parser(
        "bench",
        help="1-vs-N worker scaling + fault-storm determinism bench "
             "(writes BENCH_serve_scaling.json; exits 1 below the "
             "speedup floor or on any latency divergence)",
    )
    sp.add_argument("--workers", default="1,3", metavar="LIST",
                    help="comma list of fleet sizes (default 1,3)")
    sp.add_argument("--candidates", type=int, default=192)
    sp.add_argument("--op", default="gmm",
                    choices=["c2d", "dep", "c1d", "c3d", "gmm"])
    sp.add_argument("--channels", type=int, default=8)
    sp.add_argument("--size", type=int, default=16)
    sp.add_argument("--machine", default="intel_cpu")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--lease-size", type=int, default=8)
    sp.add_argument("--lease-timeout", type=float, default=5.0, metavar="S")
    sp.add_argument("--device-ms", type=float, default=3.0,
                    help="simulated per-candidate device occupancy in ms "
                         "(default 3.0; this is what N workers overlap -- "
                         "at 0 a single host shows no scaling)")
    sp.add_argument("--fault-storm", default=(
        "seed=7,crash=0.05,timeout=0.03,oserror=0.05,hang=0.3"),
        metavar="SPEC",
        help="fault plan for the storm row ('' disables); values must "
             "still match the clean rows bit-identically")
    sp.add_argument("--min-speedup", type=float, default=2.0,
                    help="exit 1 when peak speedup over 1 worker falls "
                         "below this (default 2.0)")
    sp.add_argument("--out", default="BENCH_serve_scaling.json",
                    help="bench JSON output ('' disables)")
    sp.set_defaults(fn=cmd_serve_bench)

    p = sub.add_parser(
        "fuzz",
        help="seeded random-workload fuzzing: differential-oracle seed "
             "sweeps and soaks, failure replay, cost-model corpus export",
    )
    p.add_argument("action", nargs="?", default="run",
                   choices=["run", "corpus", "replay"],
                   help="run: sweep seeds through the oracle (default); "
                        "corpus: export generated tasks as pretraining "
                        "data; replay: re-run a recorded failure spec")
    p.add_argument("--seeds", type=int, default=200, metavar="N",
                   help="number of consecutive generator seeds (default 200)")
    p.add_argument("--start", type=int, default=0, metavar="SEED",
                   help="first generator seed (default 0)")
    p.add_argument("--soak", type=float, default=None, metavar="MINS",
                   help="run until the wall clock expires instead of a "
                        "fixed seed count")
    p.add_argument("--budget", type=int, default=48,
                   help="tuning budget of the numerics-check compile "
                        "(default 48)")
    p.add_argument("--tune-budget", type=int, default=96,
                   help="budget of the tuned-never-loses scheduler run "
                        "(default 96)")
    p.add_argument("--machine", default="intel_cpu")
    p.add_argument("--checks", default=None, metavar="LIST",
                   help="comma list from numerics,propagation,tuned "
                        "(default: all)")
    p.add_argument("--max-ops", type=int, default=6, metavar="N",
                   help="max follow-on ops per generated graph (default 6)")
    p.add_argument("--families", default=None, metavar="LIST",
                   help="comma list of generator families "
                        "(image,matrix,seq,conv1d,volume)")
    p.add_argument("--run-store", default=None, metavar="DIR",
                   help="record the sweep (and every minimized failure "
                        "spec) into this run registry")
    p.add_argument("--no-minimize", action="store_true",
                   help="record failures without shrinking their specs")
    p.add_argument("--fail-fast", action="store_true",
                   help="stop the sweep at the first failing seed")
    p.add_argument("--spec", default=None, metavar="FILE",
                   help="replay: a recorded failure JSON (or bare spec)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="corpus: destination JSONL file")
    p.add_argument("--samples", type=int, default=8, metavar="N",
                   help="corpus: measured candidates per task class "
                        "(default 8)")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("machines", help="list simulated machines")
    p.set_defaults(fn=cmd_machines)
    p = sub.add_parser("models", help="list model zoo entries")
    p.set_defaults(fn=cmd_models)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(-1 if args.quiet else args.verbose)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
