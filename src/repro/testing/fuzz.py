"""Fuzz driver: seed sweeps, soaks, minimization, and the corpus exporter.

``run_fuzz`` sweeps generator seeds through the differential oracle.  Every
failure is shrunk by :func:`minimize_spec` (greedy delta-debugging over the
spec's op list -- the smallest spec that still trips the *same* check) and
recorded as a replayable JSON payload: the seed, the minimized graph-spec,
the violated check.  With a :class:`~repro.obs.runstore.RunStore` attached,
payloads land in the run registry (``failures/`` inside the run directory)
so ``repro fuzz replay --spec`` can reproduce them bit-identically later.

``export_corpus`` reuses the generator as a workload synthesizer: every
*new* tuning-task class found across the seed range is sampled (random
layout/schedule candidates, simulated measurements) and exported in the
exact ``CostModel.export_seed`` format, giving the tuning database and
``tuning/pretrain.py`` a pretraining corpus that covers far more operator
shapes than the four paper networks.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .generator import GraphSpec, SpecError, generate_spec
from .oracle import DEFAULT_CHECKS, OracleOptions, run_oracle


@dataclass
class FuzzResult:
    """Outcome of one fuzz sweep."""

    seeds_run: int
    failures: List[Dict] = field(default_factory=list)
    duration_s: float = 0.0
    run_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures


def _failure_payload(
    spec: GraphSpec, minimized: GraphSpec, failure, minimized_ok: bool
) -> Dict:
    """The replayable record of one oracle failure."""
    return {
        "kind": "fuzz_failure",
        "check": failure.check,
        "seed": spec.seed,
        "node": failure.node,
        "message": failure.message,
        "details": failure.details,
        "spec": minimized.to_dict(),
        "spec_hash": minimized.spec_hash(),
        "original_spec": (
            spec.to_dict() if minimized_ok and
            minimized.to_json() != spec.to_json() else None
        ),
        "ops_removed": len(spec.ops) - len(minimized.ops),
    }


def run_fuzz(
    seeds: int = 200,
    start: int = 0,
    soak_s: Optional[float] = None,
    checks: Sequence[str] = DEFAULT_CHECKS,
    options: Optional[OracleOptions] = None,
    store=None,
    run_name: str = "fuzz",
    minimize: bool = True,
    fail_fast: bool = False,
    max_ops: int = 6,
    families: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[int, int, int], None]] = None,
) -> FuzzResult:
    """Sweep ``seeds`` consecutive generator seeds through the oracle.

    With ``soak_s`` the sweep instead runs until the wall clock expires
    (seed range open-ended from ``start``).  ``store`` may be a
    :class:`~repro.obs.runstore.RunStore`; failures are then recorded into
    a run directory as minimized, replayable spec JSON.  ``progress`` is
    called as ``progress(i, seed, n_failures)`` after every seed.
    """
    opts = options or OracleOptions()
    writer = None
    if store is not None:
        writer = store.create(
            run_name,
            machine=opts.machine,
            seed=start,
            workload=f"fuzz[{start}:{start + seeds}]",
            config={
                "checks": list(checks), "seeds": seeds, "start": start,
                "soak_s": soak_s, "compile_budget": opts.compile_budget,
                "tune_budget": opts.tune_budget, "minimize": minimize,
            },
        ).begin()

    t0 = time.monotonic()
    failures: List[Dict] = []
    i = 0
    try:
        while True:
            if soak_s is not None:
                if time.monotonic() - t0 >= soak_s:
                    break
            elif i >= seeds:
                break
            seed = start + i
            spec = generate_spec(seed, max_ops=max_ops, families=families)
            report = run_oracle(spec, checks, opts)
            for failure in report.failures:
                minimized, shrunk = spec, False
                if minimize:
                    try:
                        minimized = minimize_spec(spec, failure.check, opts)
                        shrunk = True
                    except Exception:  # a shrink bug must not eat the find
                        minimized = spec
                payload = _failure_payload(spec, minimized, failure, shrunk)
                failures.append(payload)
                if writer is not None:
                    writer.record_failure(payload)
            i += 1
            if progress is not None:
                progress(i, seed, len(failures))
            if fail_fast and failures:
                break
    finally:
        duration = time.monotonic() - t0
        if writer is not None:
            from ..obs.trace import Trace

            trace = Trace(name=run_name)
            trace.event(
                "fuzz_summary", seeds=i, failures=len(failures),
                duration_s=duration,
            )
            writer.finish(trace, tasks={})
            if failures:  # flip the completed manifest to failed + reason
                writer.fail(f"{len(failures)} oracle failures")

    return FuzzResult(
        seeds_run=i, failures=failures, duration_s=duration,
        run_path=writer.path if writer is not None else None,
    )


# ---------------------------------------------------------------------------
# Minimization
# ---------------------------------------------------------------------------

def _drop_op(spec: GraphSpec, index: int) -> GraphSpec:
    """Spec without op ``index``, residual references remapped.

    Removing ops[index] removes produced[index + 1]; residuals pointing at
    it fall back to the removed op's input, later references shift down.
    """
    out = spec.copy()
    del out.ops[index]
    for op in out.ops[index:]:
        if op.get("kind") == "residual":
            ref = int(op["from"])
            if ref == index + 1:
                op["from"] = index
            elif ref > index + 1:
                op["from"] = ref - 1
    return out


def minimize_spec(
    spec: GraphSpec,
    check: str,
    options: Optional[OracleOptions] = None,
    max_evals: int = 64,
) -> GraphSpec:
    """Greedy shrink: remove ops while the spec still fails ``check``.

    A candidate that no longer builds (shape mismatch after removal, no
    complex op left) is rejected; a candidate that builds but passes the
    check is rejected; a candidate that still fails replaces the spec and
    the scan restarts.  Bounded by ``max_evals`` oracle evaluations.
    """
    opts = options or OracleOptions()
    evals = 0

    def still_fails(candidate: GraphSpec) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        try:
            candidate.build()
        except SpecError:
            return False
        evals += 1
        report = run_oracle(candidate, [check], opts)
        return any(f.check == check for f in report.failures)

    current = spec
    shrunk = True
    while shrunk and evals < max_evals:
        shrunk = False
        # scan back to front: tail ops are the cheapest to discharge
        for i in range(len(current.ops) - 1, -1, -1):
            candidate = _drop_op(current, i)
            if still_fails(candidate):
                current = candidate
                shrunk = True
                break
    return current


def replay_failure(payload: Dict, options: Optional[OracleOptions] = None):
    """Re-run the oracle on a recorded failure payload.

    Returns the fresh :class:`~repro.testing.oracle.OracleReport` for the
    payload's spec and check -- the reproduction path of ``repro fuzz
    replay``.  Raises ``ValueError`` if the payload's spec no longer
    rebuilds to the recorded hash (generator drift would silently
    invalidate every pinned failure otherwise).
    """
    spec = GraphSpec.from_dict(payload["spec"])
    want = payload.get("spec_hash")
    if want is not None and spec.spec_hash() != want:
        raise ValueError(
            f"replayed spec hash {spec.spec_hash()[:12]} != recorded "
            f"{str(want)[:12]} (spec schema drift?)"
        )
    return run_oracle(spec, [payload["check"]], options or OracleOptions())


# ---------------------------------------------------------------------------
# Corpus export
# ---------------------------------------------------------------------------

def export_corpus(
    out: str,
    seeds: int = 100,
    start: int = 0,
    samples_per_task: int = 8,
    options: Optional[OracleOptions] = None,
    max_ops: int = 6,
    families: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Dict:
    """Dump generated tuning tasks as cost-model pretraining data (JSONL).

    One line per *new* task class found across the seed range (dedup by
    :func:`~repro.pipeline.task_signature`): the originating seed and node
    (so the ComputeDef can be rebuilt via ``generate_spec(seed).build()``),
    plus measured training pairs in the exact ``CostModel.export_seed``
    format that :meth:`CostModel.seed` and the tuning database's warm-start
    path consume.
    """
    from ..pipeline import task_signature

    opts = options or OracleOptions()
    machine = opts.machine_spec()
    seen = set()
    rows: List[Dict] = []
    for i in range(seeds):
        seed = start + i
        spec = generate_spec(seed, max_ops=max_ops, families=families)
        try:
            graph = spec.build()
        except SpecError:
            continue
        for node in graph.complex_nodes():
            sig = task_signature(node)
            if sig in seen:
                continue
            seen.add(sig)
            data, measured = _sample_task(
                node, machine, samples_per_task, seed
            )
            if data is None:
                continue
            rows.append({
                "kind": "fuzz_corpus_task",
                "seed": spec.seed,
                "family": spec.family,
                "node": node.name,
                "tags": list(node.tags),
                "machine": machine.name,
                "spec_hash": spec.spec_hash(),
                "samples": measured,
                "cost_model_seed": data,
            })
        if progress is not None:
            progress(i + 1, len(rows))

    with open(out, "w") as f:
        for row in rows:
            f.write(json.dumps(row, sort_keys=True) + "\n")
    return {"path": out, "tasks": len(rows), "seeds": seeds,
            "samples": sum(r["samples"] for r in rows)}


def _sample_task(comp, machine, n_samples: int, seed: int):
    """Measure random layout/schedule candidates of one task through a
    :class:`CostModel` and export the accumulated training pairs."""
    from ..tuning.cost_model import CostModel
    from ..tuning.task import TuningTask

    rng = random.Random(seed)
    task = TuningTask(comp, machine, budget=max(2 * n_samples, 8))
    model = CostModel(retrain_every=1 << 30)  # accumulate only, never fit
    layout_space = task.layout_space()
    measured = 0
    for _ in range(n_samples):
        try:
            cfg = layout_space.sample(rng) if len(layout_space) else {}
            layouts = task.layouts_from(cfg)
            loop_space = task.loop_space_for(layouts)
            schedule = loop_space.schedule(loop_space.space().sample(rng))
            latency = task.measure(layouts, schedule)
            model.update(task.lower(layouts, schedule), latency)
            measured += 1
        except Exception:  # invalid candidate / budget cut: skip, keep going
            continue
    return model.export_seed(), measured
