"""Seeded workload generation and differential fuzzing.

The paper validates ALT on four fixed networks; this package turns the
whole compile -> propagate -> tune -> execute pipeline into something that
can be exercised on *thousands* of generated workloads:

- :mod:`repro.testing.generator` -- a seeded random graph generator
  emitting operator chains/DAGs over every op family (gemm, conv including
  the depthwise/grouped/dilated variants, pool, reduce, elementwise,
  transform) as replayable, JSON-serializable :class:`GraphSpec`\\ s;
- :mod:`repro.testing.oracle` -- the differential oracle: compiled-vs-
  reference numerics node by node, propagation invariants (zero
  conversions on pure elementwise chains, fusion preserved, complex-op
  barriers), and tuned-never-loses-to-untuned via a micro-budget
  scheduler run;
- :mod:`repro.testing.fuzz` -- the harness behind ``repro fuzz``: seed
  sweeps and wall-clock soaks, failure minimization, replayable failure
  records in the run registry, and the cost-model pretraining corpus
  exporter.
"""

from .generator import (  # noqa: F401
    SPEC_VERSION,
    GraphSpec,
    SpecError,
    generate_spec,
    graph_fingerprint,
)
from .oracle import (  # noqa: F401
    DEFAULT_CHECKS,
    OracleFailure,
    OracleOptions,
    OracleReport,
    run_oracle,
)
from .fuzz import (  # noqa: F401
    FuzzResult,
    export_corpus,
    minimize_spec,
    replay_failure,
    run_fuzz,
)
