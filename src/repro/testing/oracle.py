"""Differential oracle over generated workloads.

Three independent checks, each against a *fresh* build of the spec
(:func:`~repro.pipeline.compile_graph` mutates graphs, so every check gets
its own graph instance):

``numerics``
    Compile the graph with a micro budget and execute the lowered program
    over physically laid-out buffers; every original node's output --
    unmaterialized through its assigned layout -- must match the logical
    reference evaluator *node by node* (not just at the graph outputs, so
    a bug cannot hide behind a downstream op that masks it).

``propagation``
    Algorithm-1 invariants on the untouched graph: a basic tiled layout
    assigned to a complex anchor replicates across its pure-elementwise
    consumer chain with **zero** conversion operators; fusion grouping is
    preserved versus identity layouts; propagation stops at the next
    complex operator; advanced (data-duplicating) layouts never cross the
    operator that owns them.

``tuned``
    A micro-budget :func:`~repro.tuning.scheduler.tune_network` run must
    never emit a schedule slower than the untuned default-layout baseline
    (the scheduler's never-lose guarantee, checked end to end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exec.graph_runner import random_inputs, run_graph_reference
from ..exec.interpreter import run_program
from ..layout.layout import Layout
from ..layout.propagation import PropagationEngine
from ..machine.spec import MachineSpec, get_machine
from ..pipeline import CompileOptions, _assign_fuse_groups, compile_graph
from .generator import GraphSpec

DEFAULT_CHECKS = ("numerics", "propagation", "tuned")


@dataclass
class OracleOptions:
    """Knobs of one oracle evaluation."""

    machine: str = "intel_cpu"
    #: tuning budget for the ``numerics`` compile (kept micro -- the oracle
    #: cares about correctness of whatever schedule won, not its quality)
    compile_budget: int = 48
    #: budget for the ``tuned`` scheduler run
    tune_budget: int = 96
    mode: str = "alt"
    atol: float = 1e-6
    rtol: float = 1e-5

    def machine_spec(self) -> MachineSpec:
        return get_machine(self.machine)


@dataclass
class OracleFailure:
    """One violated invariant, with enough detail to reproduce it."""

    check: str
    seed: int
    node: Optional[str]
    message: str
    details: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "check": self.check, "seed": self.seed, "node": self.node,
            "message": self.message, "details": self.details,
        }


@dataclass
class OracleReport:
    """Outcome of running the oracle on one spec."""

    spec: GraphSpec
    checks_run: List[str]
    failures: List[OracleFailure]

    @property
    def ok(self) -> bool:
        return not self.failures


def run_oracle(
    spec: GraphSpec,
    checks: Sequence[str] = DEFAULT_CHECKS,
    options: Optional[OracleOptions] = None,
) -> OracleReport:
    """Evaluate every requested check on one generated spec."""
    opts = options or OracleOptions()
    for c in checks:
        if c not in DEFAULT_CHECKS:
            raise ValueError(f"unknown check {c!r}; choose from {DEFAULT_CHECKS}")
    failures: List[OracleFailure] = []
    if "numerics" in checks:
        failures.extend(check_numerics(spec, opts))
    if "propagation" in checks:
        failures.extend(check_propagation(spec, opts))
    if "tuned" in checks:
        failures.extend(check_tuned(spec, opts))
    return OracleReport(spec=spec, checks_run=list(checks), failures=failures)


# ---------------------------------------------------------------------------
# (a) compiled vs reference numerics, node by node
# ---------------------------------------------------------------------------

def check_numerics(spec: GraphSpec, opts: OracleOptions) -> List[OracleFailure]:
    machine = opts.machine_spec()
    reference_graph = spec.build()  # never compiled, stays pristine
    graph = spec.build()
    try:
        model = compile_graph(
            graph, machine,
            CompileOptions(mode=opts.mode, total_budget=opts.compile_budget,
                           seed=spec.seed),
        )
    except Exception as exc:  # compile crash is itself a finding
        return [OracleFailure(
            check="numerics", seed=spec.seed, node=None,
            message=f"compile_graph raised {type(exc).__name__}: {exc}",
        )]

    inputs = random_inputs(reference_graph, seed=spec.seed + 1)
    ref = run_graph_reference(reference_graph, inputs)

    physical: Dict[str, np.ndarray] = {}
    for t in graph.graph_inputs() + graph.constants():
        lay = model.layouts.get(t.name)
        arr = np.asarray(inputs[t.name], dtype=np.float64)
        physical[t.name] = lay.materialize(arr) if lay is not None else arr
    try:
        buffers = run_program(model.program, physical)
    except Exception as exc:
        return [OracleFailure(
            check="numerics", seed=spec.seed, node=None,
            message=f"run_program raised {type(exc).__name__}: {exc}",
        )]

    failures: List[OracleFailure] = []
    for node in reference_graph.nodes:
        tname = node.output.name
        if tname not in buffers:
            failures.append(OracleFailure(
                check="numerics", seed=spec.seed, node=node.name,
                message=f"no buffer produced for {tname}",
            ))
            continue
        lay = model.layouts.get(tname)
        phys = buffers[tname]
        if lay is not None:
            expect = lay.physical_shape()
            if tuple(phys.shape) != tuple(expect):
                # store_at extension slots trail the data; trim them
                phys = phys[tuple(slice(0, s) for s in expect)]
            logical = lay.unmaterialize(phys)
        else:
            logical = phys
        want = ref[tname]
        if logical.shape != want.shape:
            failures.append(OracleFailure(
                check="numerics", seed=spec.seed, node=node.name,
                message=(f"shape mismatch: compiled {logical.shape} vs "
                         f"reference {want.shape}"),
            ))
            continue
        if not np.allclose(logical, want, atol=opts.atol, rtol=opts.rtol):
            err = float(np.max(np.abs(logical - want)))
            failures.append(OracleFailure(
                check="numerics", seed=spec.seed, node=node.name,
                message=f"value mismatch, max abs err {err:.3e}",
                details={"max_abs_err": err},
            ))
    return failures


# ---------------------------------------------------------------------------
# (b) propagation invariants
# ---------------------------------------------------------------------------

def _elementwise_chain(graph, node):
    """Single-consumer pure-elementwise chain downstream of ``node``."""
    chain = []
    cur = node
    while True:
        consumers = graph.consumers_of(cur.output.name)
        if len(consumers) != 1 or not consumers[0].is_elementwise:
            return chain
        cur = consumers[0]
        chain.append(cur)


def _tiled_layout(shape) -> Optional[Layout]:
    """A basic (replicable) non-identity layout for ``shape``: split the
    largest splittable dim, move its inner half innermost; fall back to a
    plain reorder when every extent is prime-ish."""
    lay = Layout(shape)
    dims = lay.dim_names()
    best = None
    for i, extent in enumerate(shape):
        for f in (2, 3):
            if extent % f == 0 and extent > f:
                if best is None or extent > shape[best[0]]:
                    best = (i, f)
                break
    if best is not None:
        i, f = best
        name = dims[i]
        split = lay.split(name, [shape[i] // f, f])
        perm = [d for d in split.dim_names() if d != f"{name}.1"] + [f"{name}.1"]
        return split.reorder(perm)
    if len(shape) >= 2:
        perm = list(dims[:-2]) + [dims[-1], dims[-2]]
        return lay.reorder(perm)
    return None


def check_propagation(spec: GraphSpec, opts: OracleOptions) -> List[OracleFailure]:
    failures: List[OracleFailure] = []
    probe_graph = spec.build()
    anchors = [
        n for n in probe_graph.complex_nodes()
        if _elementwise_chain(probe_graph, n)
    ]
    for anchor_probe in anchors:
        lay = _tiled_layout(anchor_probe.output.shape)
        if lay is None:
            continue
        graph = spec.build()  # fresh instance per anchor (engine mutates state)
        anchor = next(n for n in graph.nodes if n.name == anchor_probe.name)
        chain = _elementwise_chain(graph, anchor)
        n_nodes = len(graph.nodes)
        engine = PropagationEngine(graph)
        engine.assign_operator_layouts(anchor, {anchor.output.name: lay})

        if engine.state.conversions:
            failures.append(OracleFailure(
                check="propagation", seed=spec.seed, node=anchor.name,
                message=(f"{len(engine.state.conversions)} conversions "
                         "inserted on a pure elementwise chain"),
                details={"conversions": list(engine.state.conversions)},
            ))
        if len(graph.nodes) != n_nodes:
            failures.append(OracleFailure(
                check="propagation", seed=spec.seed, node=anchor.name,
                message="graph grew during elementwise replication",
            ))
        for node in chain:
            got = engine.state.layouts.get(node.output.name)
            if got is None or got.signature() != lay.signature():
                failures.append(OracleFailure(
                    check="propagation", seed=spec.seed, node=node.name,
                    message="layout did not replicate down elementwise chain",
                ))
                break

        # fusion preserved: layout replication must not lose any fuse pair
        # that identity layouts would have formed along the anchor chain
        baseline = _assign_fuse_groups(graph, {})
        groups = _assign_fuse_groups(graph, engine.state.layouts)
        want = {anchor.name} | {n.name for n in chain}
        for name in want:
            if (name in baseline) and (name not in groups):
                failures.append(OracleFailure(
                    check="propagation", seed=spec.seed, node=name,
                    message="fuse group lost under replicated layouts",
                ))

        # barrier: the next complex operator after the chain stays untouched
        tail = chain[-1] if chain else anchor
        downstream = probe_graph.consumers_of(tail.output.name) \
            if chain else []
        for consumer in downstream:
            if consumer.is_complex and \
                    consumer.output.name in engine.state.layouts:
                failures.append(OracleFailure(
                    check="propagation", seed=spec.seed, node=consumer.name,
                    message="propagation crossed a complex-operator barrier",
                ))

    # advanced layouts must not replicate (constraint 1), on any anchor
    for anchor_probe in anchors:
        shape = anchor_probe.output.shape
        dims = Layout(shape).dim_names()
        unfold_dim = None
        for i, extent in enumerate(shape):
            if extent >= 4:
                unfold_dim = dims[i]
                break
        if unfold_dim is None:
            continue
        graph = spec.build()
        anchor = next(n for n in graph.nodes if n.name == anchor_probe.name)
        chain = _elementwise_chain(graph, anchor)
        adv = Layout(shape).unfold(unfold_dim, 2, 1)
        engine = PropagationEngine(graph)
        engine.assign_operator_layouts(anchor, {anchor.output.name: adv})
        if engine.state.conversions:
            failures.append(OracleFailure(
                check="propagation", seed=spec.seed, node=anchor.name,
                message="advanced layout assignment inserted conversions",
            ))
        for node in chain:
            if node.output.name in engine.state.layouts:
                failures.append(OracleFailure(
                    check="propagation", seed=spec.seed, node=node.name,
                    message="advanced (unfolded) layout replicated downstream",
                ))
                break
        break  # one advanced probe per spec is enough
    return failures


# ---------------------------------------------------------------------------
# (c) tuned never loses to untuned
# ---------------------------------------------------------------------------

def check_tuned(spec: GraphSpec, opts: OracleOptions) -> List[OracleFailure]:
    from ..tuning.scheduler import tune_network

    machine = opts.machine_spec()
    try:
        result = tune_network(
            lambda: spec.build(), machine, budget=opts.tune_budget,
            seed=spec.seed,
        )
    except Exception as exc:
        return [OracleFailure(
            check="tuned", seed=spec.seed, node=None,
            message=f"tune_network raised {type(exc).__name__}: {exc}",
        )]
    if result.network_latency_s > result.baseline_latency_s * (1 + 1e-9):
        return [OracleFailure(
            check="tuned", seed=spec.seed, node=None,
            message=(f"tuned schedule lost to untuned baseline: "
                     f"{result.network_latency_s:.3e}s vs "
                     f"{result.baseline_latency_s:.3e}s"),
            details={
                "network_latency_s": result.network_latency_s,
                "baseline_latency_s": result.baseline_latency_s,
            },
        )]
    return []
