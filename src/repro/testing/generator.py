"""Seeded random workload generator (in the spirit of loop_tool's generators).

A :class:`GraphSpec` is a *replayable* description of one generated model:
a seed, a family, an input shape and a list of plain-dict operator specs.
Everything downstream (the differential oracle, failure records, the
pretraining corpus) works in terms of specs, because specs -- unlike live
:class:`~repro.graph.graph.Graph` objects -- serialize to canonical JSON,
hash stably across processes, and rebuild the *identical* graph on replay:

- :func:`generate_spec` draws a spec from a seed (``random.Random`` only;
  no ``hash()``, no set iteration, so ``PYTHONHASHSEED`` cannot leak in);
- :meth:`GraphSpec.build` deterministically turns a spec into a graph --
  the same spec always yields the same node names, shapes and attrs;
- :func:`graph_fingerprint` digests a graph's structure so replay
  identity is checkable (``build(spec) == build(from_json(to_json(spec)))``).

Shape *bucketing* keeps the workloads diverse but interpreter-sized:
channel and spatial extents are drawn from named buckets (powers of two,
awkward primes, mixed composites) so tiling templates, divisor-based
schedules and propagation all see hostile sizes, not just 2^n.
"""

from __future__ import annotations

import copy
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.builder import GraphBuilder
from ..graph.graph import Graph
from ..ops.common import out_size

SPEC_VERSION = 1

#: channel/size buckets -- "prime" is the paper-unfriendly one (nothing
#: divides, so layout templates degenerate and divisor schedules get lonely)
CHANNEL_BUCKETS: Dict[str, Sequence[int]] = {
    "pow2": (4, 8, 16),
    "prime": (3, 5, 7),
    "mixed": (6, 10, 12),
}
SPATIAL_BUCKETS: Dict[str, Sequence[int]] = {
    "pow2": (8, 16),
    "prime": (7, 11, 13),
    "mixed": (6, 9, 10, 12),
}

FAMILIES = ("image", "matrix", "seq", "conv1d", "volume")

#: elementwise vocabulary shared by every family
_ACTS = ("relu", "relu6", "sigmoid", "tanh", "gelu")
_SCALES = (0.5, 2.0, -1.5, 0.25)


class SpecError(ValueError):
    """A spec that cannot be built (invalid after editing/minimization)."""


@dataclass
class GraphSpec:
    """One generated workload: replayable, serializable, hashable."""

    seed: int
    family: str
    input_shape: Tuple[int, ...]
    ops: List[Dict] = field(default_factory=list)
    version: int = SPEC_VERSION

    # -- serialization ----------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "seed": self.seed,
            "family": self.family,
            "input_shape": list(self.input_shape),
            "ops": [dict(op) for op in self.ops],
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace -- the hash substrate."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict) -> "GraphSpec":
        if int(data.get("version", -1)) != SPEC_VERSION:
            raise SpecError(
                f"spec version {data.get('version')!r} != {SPEC_VERSION}"
            )
        return cls(
            seed=int(data["seed"]),
            family=str(data["family"]),
            input_shape=tuple(int(s) for s in data["input_shape"]),
            ops=[dict(op) for op in data["ops"]],
        )

    @classmethod
    def from_json(cls, text: str) -> "GraphSpec":
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Stable content digest of the canonical serialization."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def copy(self) -> "GraphSpec":
        return GraphSpec(
            seed=self.seed, family=self.family,
            input_shape=tuple(self.input_shape),
            ops=copy.deepcopy(self.ops),
        )

    # -- construction ------------------------------------------------------------
    def build(self, name: Optional[str] = None) -> Graph:
        """Deterministically rebuild the graph this spec describes.

        Raises :class:`SpecError` when the op list is inconsistent (shape
        mismatches, bad residual references) -- the minimizer relies on
        this to reject invalid op removals.
        """
        b = GraphBuilder(name or f"fuzz{self.seed}")
        x = b.input(tuple(self.input_shape))
        produced = [x]  # index 0 = graph input, i+1 = output of ops[i]
        try:
            for op in self.ops:
                x = _apply_op(b, x, produced, op)
                produced.append(x)
            graph = b.build()
        except SpecError:
            raise
        except (ValueError, KeyError, IndexError, ZeroDivisionError) as exc:
            raise SpecError(f"spec does not build: {exc}") from exc
        if not graph.complex_nodes():
            raise SpecError("spec has no complex operator")
        return graph

    def __repr__(self) -> str:
        kinds = ",".join(op["kind"] for op in self.ops)
        return (f"GraphSpec(seed={self.seed}, family={self.family!r}, "
                f"input={self.input_shape}, ops=[{kinds}])")


def _apply_op(b: GraphBuilder, x, produced: List, op: Dict):
    """Emit one spec op through the graph builder."""
    kind = op["kind"]
    if kind == "conv2d":
        return b.conv2d(
            x, op["out_channels"], op["kernel"], stride=op.get("stride", 1),
            pad=op.get("pad"), groups=op.get("groups", 1),
            dilation=op.get("dilation", 1),
        )
    if kind == "depthwise":
        return b.depthwise_conv2d(
            x, op["kernel"], stride=op.get("stride", 1), pad=op.get("pad"),
            dilation=op.get("dilation", 1),
        )
    if kind == "conv1d":
        return b.conv1d(
            x, op["out_channels"], op["kernel"], stride=op.get("stride", 1),
            pad=op.get("pad"), dilation=op.get("dilation", 1),
        )
    if kind == "conv3d":
        return b.conv3d(
            x, op["out_channels"], op["kernel"], stride=op.get("stride", 1),
            pad=op.get("pad"),
        )
    if kind == "max_pool":
        return b.max_pool2d(x, op["window"], op["stride"],
                            pad=op.get("pad", 0))
    if kind == "avg_pool":
        return b.avg_pool2d(x, op["window"], op["stride"])
    if kind == "global_avg_pool":
        return b.global_avg_pool(x)
    if kind == "pad":
        return b.pad(x, tuple(op["pad"]))
    if kind == "batch_norm":
        return b.batch_norm(x)
    if kind == "bias":
        return b.bias_add(x, op.get("dim", "channel"))
    if kind == "act":
        if op["fn"] not in _ACTS:
            raise SpecError(f"unknown activation {op['fn']!r}")
        return b.activate(x, op["fn"])
    if kind == "scale":
        return b.scale(x, float(op["factor"]))
    if kind == "add_const":
        return b.add(x, b.const("fc", x.shape))
    if kind == "residual":
        ref = int(op["from"])
        if not 0 <= ref < len(produced):
            raise SpecError(f"residual from {ref} out of range")
        other = produced[ref]
        if tuple(other.shape) != tuple(x.shape):
            raise SpecError(
                f"residual shape mismatch {other.shape} vs {x.shape}"
            )
        return b.add(x, other)
    if kind == "dense":
        return b.dense(x, op["units"], bias=bool(op.get("bias", True)),
                       act=op.get("act"))
    if kind == "softmax":
        return b.softmax_last(x)
    if kind == "layer_norm":
        return b.layer_norm(x)
    if kind == "batch_gemm":
        bsz, _m, k = x.shape
        return b.batch_gemm(x, b.const("bg", (bsz, k, op["units"])))
    if kind == "transpose_last":
        return b.transpose_last(x)
    raise SpecError(f"unknown op kind {kind!r}")


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

def _bucket(rng: random.Random, buckets: Dict[str, Sequence[int]]) -> int:
    return rng.choice(buckets[rng.choice(sorted(buckets))])


def _divisors(n: int) -> List[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def _conv2d_spec(rng: random.Random, shape: Tuple[int, ...],
                 grouped: bool, dilated: bool) -> Optional[Dict]:
    """A valid conv2d op spec for the current shape, or None."""
    _n, c, h, w = shape
    kernel = rng.choice([1, 3, 3])
    dilation = rng.choice([2, 3]) if (dilated and kernel > 1) else 1
    stride = rng.choice([1, 1, 2])
    out_channels = _bucket(rng, CHANNEL_BUCKETS)
    groups = 1
    if grouped:
        shared = [d for d in _divisors(c) if d > 1 and out_channels % d == 0]
        if not shared:
            return None
        groups = rng.choice(shared)
    pad = rng.choice([0, ((kernel - 1) * dilation) // 2])
    span = (kernel - 1) * dilation + 1
    if min(h, w) + 2 * pad < span:
        return None
    return {
        "kind": "conv2d", "out_channels": out_channels, "kernel": kernel,
        "stride": stride, "pad": pad, "groups": groups, "dilation": dilation,
    }


def _image_op(rng: random.Random, shape: Tuple[int, ...],
              produced_shapes: List[Tuple[int, ...]]) -> Optional[Dict]:
    """One random op for a 4-D NCHW tensor (None = no valid op this draw)."""
    if len(shape) != 4:  # e.g. after global_avg_pool -> [N, C]
        return _elementwise_op(rng, channelwise=False)
    _n, c, h, w = shape
    kind = rng.choice(
        ["conv2d", "conv2d", "grouped", "dilated", "depthwise", "pool",
         "elementwise", "elementwise", "elementwise", "residual", "pad"]
    )
    if kind in ("conv2d", "grouped", "dilated"):
        return _conv2d_spec(rng, shape, grouped=(kind == "grouped"),
                            dilated=(kind == "dilated"))
    if kind == "depthwise":
        kernel = rng.choice([3, 3, 5])
        dilation = rng.choice([1, 1, 2])
        span = (kernel - 1) * dilation + 1
        pad = ((kernel - 1) * dilation) // 2
        if min(h, w) + 2 * pad < span:
            return None
        return {"kind": "depthwise", "kernel": kernel,
                "stride": rng.choice([1, 1, 2]), "pad": pad,
                "dilation": dilation}
    if kind == "pool":
        which = rng.choice(["max_pool", "avg_pool", "global_avg_pool"])
        if which == "global_avg_pool":
            return {"kind": which}
        window = rng.choice([2, 3])
        stride = rng.choice([1, 2])
        if min(h, w) < window:
            return None
        return {"kind": which, "window": window, "stride": stride}
    if kind == "pad":
        p = rng.choice([1, 2])
        return {"kind": "pad", "pad": [p, p]}
    if kind == "residual":
        matches = [i for i, s in enumerate(produced_shapes)
                   if tuple(s) == tuple(shape) and i < len(produced_shapes) - 1]
        if not matches:
            return None
        return {"kind": "residual", "from": rng.choice(matches)}
    return _elementwise_op(rng, channelwise=True)


def _elementwise_op(rng: random.Random, channelwise: bool) -> Dict:
    kind = rng.choice(
        ["act", "act", "scale", "add_const", "bias", "batch_norm"]
        if channelwise else ["act", "act", "scale", "add_const", "bias"]
    )
    if kind == "act":
        return {"kind": "act", "fn": rng.choice(_ACTS)}
    if kind == "scale":
        return {"kind": "scale", "factor": rng.choice(_SCALES)}
    if kind == "bias":
        return {"kind": "bias", "dim": "channel" if channelwise else "last"}
    return {"kind": kind}


def _matrix_op(rng: random.Random, shape: Tuple[int, ...],
               produced_shapes: List[Tuple[int, ...]]) -> Optional[Dict]:
    kind = rng.choice(
        ["dense", "dense", "softmax", "layer_norm", "elementwise",
         "elementwise", "residual"]
    )
    if kind == "dense":
        return {"kind": "dense", "units": _bucket(rng, CHANNEL_BUCKETS) * 2,
                "bias": rng.random() < 0.7,
                "act": rng.choice([None, "relu", "gelu"])}
    if kind in ("softmax", "layer_norm"):
        return {"kind": kind}
    if kind == "residual":
        matches = [i for i, s in enumerate(produced_shapes)
                   if tuple(s) == tuple(shape) and i < len(produced_shapes) - 1]
        if not matches:
            return None
        return {"kind": "residual", "from": rng.choice(matches)}
    return _elementwise_op(rng, channelwise=False)


def _seq_op(rng: random.Random, shape: Tuple[int, ...],
            produced_shapes: List[Tuple[int, ...]]) -> Optional[Dict]:
    _b, m, k = shape
    kind = rng.choice(
        ["batch_gemm", "softmax", "transpose_last", "elementwise",
         "elementwise", "residual", "scale"]
    )
    if kind == "batch_gemm":
        return {"kind": "batch_gemm", "units": _bucket(rng, CHANNEL_BUCKETS)}
    if kind == "transpose_last":
        return {"kind": "transpose_last"}
    if kind == "softmax":
        return {"kind": "softmax"}
    if kind == "scale":
        return {"kind": "scale", "factor": rng.choice(_SCALES)}
    if kind == "residual":
        matches = [i for i, s in enumerate(produced_shapes)
                   if tuple(s) == tuple(shape) and i < len(produced_shapes) - 1]
        if not matches:
            return None
        return {"kind": "residual", "from": rng.choice(matches)}
    return {"kind": "act", "fn": rng.choice(_ACTS)}


def _shape_after(shape: Tuple[int, ...], op: Dict) -> Tuple[int, ...]:
    """Output shape of one spec op (mirrors the builder's shape logic)."""
    kind = op["kind"]
    if kind in ("conv2d", "depthwise"):
        n, c, h, w = shape
        k, s = op["kernel"], op.get("stride", 1)
        d, p = op.get("dilation", 1), op.get("pad")
        if p is None:
            p = ((k - 1) * d) // 2
        oh = out_size(h + 2 * p, k, s, d)
        ow = out_size(w + 2 * p, k, s, d)
        oc = op["out_channels"] if kind == "conv2d" else c
        return (n, oc, oh, ow)
    if kind == "conv1d":
        n, _c, w = shape
        k, s, d = op["kernel"], op.get("stride", 1), op.get("dilation", 1)
        p = op.get("pad")
        if p is None:
            p = ((k - 1) * d) // 2
        return (n, op["out_channels"], out_size(w + 2 * p, k, s, d))
    if kind == "conv3d":
        n, _c, dd, h, w = shape
        k, s = op["kernel"], op.get("stride", 1)
        p = op.get("pad")
        if p is None:
            p = (k - 1) // 2
        return (n, op["out_channels"], out_size(dd + 2 * p, k, s),
                out_size(h + 2 * p, k, s), out_size(w + 2 * p, k, s))
    if kind in ("max_pool", "avg_pool"):
        n, c, h, w = shape
        win, s = op["window"], op["stride"]
        p = op.get("pad", 0)
        return (n, c, out_size(h + 2 * p, win, s), out_size(w + 2 * p, win, s))
    if kind == "global_avg_pool":
        return (shape[0], shape[1])
    if kind == "pad":
        pads = tuple(op["pad"])
        lead = shape[: len(shape) - len(pads)]
        return lead + tuple(s + 2 * p for s, p in zip(shape[len(lead):], pads))
    if kind == "dense":
        return (shape[0], op["units"])
    if kind == "batch_gemm":
        return (shape[0], shape[1], op["units"])
    if kind == "transpose_last":
        return (shape[0], shape[2], shape[1])
    return tuple(shape)  # elementwise / softmax / layer_norm / residual


_FAMILY_OPS = {"image": _image_op, "matrix": _matrix_op, "seq": _seq_op}


def generate_spec(
    seed: int,
    max_ops: int = 6,
    families: Optional[Sequence[str]] = None,
) -> GraphSpec:
    """Draw one workload spec from a seed.

    The first op is always a complex anchor (convolution or GMM variant) so
    every generated graph carries at least one tuning task; subsequent ops
    are drawn from the family's transition table with validity re-rolls.
    """
    rng = random.Random(seed)
    pool = sorted(families) if families else list(FAMILIES)
    for fam in pool:
        if fam not in FAMILIES:
            raise ValueError(f"unknown family {fam!r}; choose from {FAMILIES}")
    # rare families get less probability mass
    weights = {"image": 5, "matrix": 3, "seq": 2, "conv1d": 1, "volume": 1}
    family = rng.choices(pool, weights=[weights[f] for f in pool])[0]

    batch = rng.choice([1, 1, 2])
    ops: List[Dict] = []
    if family == "image":
        shape: Tuple[int, ...] = (
            batch, _bucket(rng, CHANNEL_BUCKETS),
            _bucket(rng, SPATIAL_BUCKETS), _bucket(rng, SPATIAL_BUCKETS),
        )
        anchor = None
        while anchor is None:
            style = rng.choice(["plain", "grouped", "dilated", "depthwise"])
            if style == "depthwise":
                anchor = {"kind": "depthwise", "kernel": 3, "stride": 1,
                          "pad": 1, "dilation": rng.choice([1, 1, 2])}
            else:
                anchor = _conv2d_spec(rng, shape,
                                      grouped=(style == "grouped"),
                                      dilated=(style == "dilated"))
        ops.append(anchor)
    elif family == "matrix":
        shape = (
            rng.choice([4, 6, 8, 16]) * batch, _bucket(rng, CHANNEL_BUCKETS),
        )
        ops.append({"kind": "dense", "units": _bucket(rng, CHANNEL_BUCKETS),
                    "bias": rng.random() < 0.7, "act": None})
    elif family == "seq":
        shape = (batch * rng.choice([2, 4]), rng.choice([4, 6, 8]),
                 _bucket(rng, CHANNEL_BUCKETS))
        ops.append({"kind": "batch_gemm",
                    "units": _bucket(rng, CHANNEL_BUCKETS)})
    elif family == "conv1d":
        shape = (batch, _bucket(rng, CHANNEL_BUCKETS),
                 rng.choice([12, 16, 19, 24]))
        ops.append({"kind": "conv1d",
                    "out_channels": _bucket(rng, CHANNEL_BUCKETS),
                    "kernel": 3, "stride": rng.choice([1, 2]),
                    "pad": 1, "dilation": rng.choice([1, 2])})
    else:  # volume
        shape = (1, rng.choice([2, 3, 4]), rng.choice([4, 6]),
                 rng.choice([6, 7, 8]), rng.choice([6, 7, 8]))
        ops.append({"kind": "conv3d", "out_channels": rng.choice([3, 4, 6]),
                    "kernel": 3, "stride": 1, "pad": 1})

    produced_shapes: List[Tuple[int, ...]] = [tuple(shape)]
    cur = _shape_after(shape, ops[0])
    produced_shapes.append(cur)

    pick = _FAMILY_OPS.get(family)
    budget = {"image": max_ops, "matrix": max_ops, "seq": max_ops,
              "conv1d": max(max_ops - 2, 2), "volume": 2}[family]
    n_more = rng.randint(1, budget)
    for _ in range(n_more):
        op = None
        for _attempt in range(8):
            if pick is not None:
                op = pick(rng, cur, produced_shapes)
            elif family == "conv1d":
                op = {"kind": "act", "fn": rng.choice(_ACTS)} \
                    if rng.random() < 0.7 else \
                    {"kind": "scale", "factor": rng.choice(_SCALES)}
            else:  # volume: elementwise only (interpreter cost)
                op = {"kind": "act", "fn": rng.choice(_ACTS)}
            if op is not None:
                break
        if op is None:
            continue
        ops.append(op)
        cur = _shape_after(cur, op)
        produced_shapes.append(cur)

    return GraphSpec(seed=seed, family=family, input_shape=tuple(shape),
                     ops=ops)


# ---------------------------------------------------------------------------
# Graph fingerprinting (replay identity)
# ---------------------------------------------------------------------------

def graph_fingerprint(graph: Graph) -> str:
    """Stable structural digest of a built graph.

    Covers node names, tags, attrs, axes and tensor shapes/edges -- enough
    to prove that a replayed spec rebuilt the *same* graph, independent of
    process, hash seed or dict identity.
    """
    payload = []
    for node in graph.nodes:
        payload.append({
            "name": node.name,
            "tags": list(node.tags),
            "attrs": sorted((k, str(v)) for k, v in node.attrs.items()),
            "axes": [[a.name, a.extent] for a in node.axes],
            "reduce": [[a.name, a.extent] for a in node.reduce_axes],
            "reduce_op": node.reduce_op,
            "out": [node.output.name, list(node.output.shape)],
            "ins": [[t.name, list(t.shape)] for t in node.inputs],
        })
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()
