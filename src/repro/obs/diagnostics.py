"""Search-quality diagnostics derived from trace events and metrics.

ALT's measurement-saving loop (paper Section 5.2.3) only works if the
learned cost model *ranks* candidates well: real measurements are spent on
the predicted top-k only, so a mis-ranking model silently wastes budget
without any error surfacing.  This module turns the raw observability
streams into the quantities that make such regressions visible:

- **Cost-model calibration** -- every ``cost_model_batch`` event carries
  the model's predicted scores and the measured latencies for one measured
  batch, tagged with the retrain *generation* that ranked it.  Pooling the
  pairs per generation yields pairwise rank accuracy, top-k recall and a
  predicted-vs-measured correlation (the scatter's summary statistic), so
  "the model got better as it retrained" is a checkable claim.
- **PPO learning curves** -- ``ppo_update`` events give per-update mean
  reward and losses for the layout and loop actors.
- **Layout-episode table** -- ``layout_episode`` events aggregate into a
  per-layout reward/latency table (which layouts the joint stage tried,
  what they earned).
- **Propagation counts** -- conversion / absorption / replication counters
  from the metrics snapshot.

All functions accept parsed trace events (``TraceData.events`` or live
``Trace.events``) and plain metric snapshots; nothing here re-runs any
search.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: default k for top-k recall (the paper measures the predicted top-8)
DEFAULT_TOP_K = 8


def _event_attrs(e: Dict, name: str) -> Optional[Dict]:
    if e.get("name") != name:
        return None
    if e.get("kind") not in (None, "event"):
        return None
    return e.get("attrs") or {}


# ---------------------------------------------------------------------------
# Rank-quality primitives
# ---------------------------------------------------------------------------

def pairwise_rank_accuracy(
    predicted: Sequence[float], measured: Sequence[float]
) -> Tuple[int, int]:
    """(correct, comparable) ordered pairs.

    A pair is comparable when both the predictions and the latencies
    differ; it is correct when the higher-scored candidate (scores are
    throughput-like: higher = predicted faster) is the lower-latency one.
    Non-finite latencies participate: predicting a failing candidate below
    a working one is a correct ranking.
    """
    correct = total = 0
    n = min(len(predicted), len(measured))
    for i in range(n):
        for j in range(i + 1, n):
            if predicted[i] == predicted[j] or measured[i] == measured[j]:
                continue
            total += 1
            if (predicted[i] > predicted[j]) == (measured[i] < measured[j]):
                correct += 1
    return correct, total


def top_k_recall(
    predicted: Sequence[float], measured: Sequence[float], k: int
) -> Tuple[int, int]:
    """(hits, k): overlap between the predicted-best and actual-best k."""
    n = min(len(predicted), len(measured))
    k = min(k, n)
    if k <= 0:
        return 0, 0
    pred_top = set(
        sorted(range(n), key=lambda i: (-predicted[i], i))[:k]
    )
    meas_top = set(
        sorted(range(n), key=lambda i: (measured[i], i))[:k]
    )
    return len(pred_top & meas_top), k


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    pairs = [
        (x, y) for x, y in zip(xs, ys)
        if math.isfinite(x) and math.isfinite(y)
    ]
    if len(pairs) < 3:
        return None
    mx = sum(p[0] for p in pairs) / len(pairs)
    my = sum(p[1] for p in pairs) / len(pairs)
    sxx = sum((p[0] - mx) ** 2 for p in pairs)
    syy = sum((p[1] - my) ** 2 for p in pairs)
    sxy = sum((p[0] - mx) * (p[1] - my) for p in pairs)
    if sxx <= 0 or syy <= 0:
        return None
    return sxy / math.sqrt(sxx * syy)


# ---------------------------------------------------------------------------
# Cost-model calibration
# ---------------------------------------------------------------------------

def cost_model_diagnostics(
    events: Sequence[Dict], k: int = DEFAULT_TOP_K
) -> Optional[Dict]:
    """Per-retrain-generation calibration from ``cost_model_batch`` events.

    Returns ``None`` when the run produced no ranked batches (untrained
    model or cost model disabled).  Pairs are pooled per generation across
    batches; counts are kept alongside the ratios so summaries from
    several runs merge exactly.
    """
    pooled: Dict[int, Dict[str, List[float]]] = {}
    n_batches = 0
    for e in events:
        attrs = _event_attrs(e, "cost_model_batch")
        if attrs is None:
            continue
        pred = attrs.get("predicted") or []
        meas = attrs.get("measured") or []
        if not pred or not meas:
            continue
        n_batches += 1
        gen = int(attrs.get("generation", 0))
        bucket = pooled.setdefault(gen, {"pred": [], "meas": []})
        n = min(len(pred), len(meas))
        bucket["pred"].extend(float(v) for v in pred[:n])
        bucket["meas"].extend(float(v) for v in meas[:n])
    if not pooled:
        return None

    def _stats(pred: List[float], meas: List[float]) -> Dict:
        correct, total = pairwise_rank_accuracy(pred, meas)
        hits, kk = top_k_recall(pred, meas, k)
        scores = [-math.log2(m) if m > 0 and math.isfinite(m) else None
                  for m in meas]
        finite = [(p, s) for p, s in zip(pred, scores) if s is not None]
        corr = _pearson([p for p, _ in finite], [s for _, s in finite])
        return {
            "points": len(pred),
            "pairs_correct": correct,
            "pairs_total": total,
            "rank_accuracy": correct / total if total else None,
            "topk_hits": hits,
            "topk_total": kk,
            "topk_recall": hits / kk if kk else None,
            "correlation": corr,
            # the scatter itself, capped: enough to re-plot, never unbounded
            "scatter": [
                [round(p, 6), m] for p, m in list(zip(pred, meas))[:256]
            ],
        }

    generations = {
        gen: _stats(b["pred"], b["meas"]) for gen, b in sorted(pooled.items())
    }
    # Scores from different retrain generations live on different scales,
    # so the overall view sums the per-generation *counts* rather than
    # pooling raw scores (same rule ``merge_summaries`` uses across runs).
    def _tot(key: str) -> int:
        return sum(s[key] for s in generations.values())

    pairs_correct, pairs_total = _tot("pairs_correct"), _tot("pairs_total")
    topk_hits, topk_total = _tot("topk_hits"), _tot("topk_total")
    weighted = [
        (s["correlation"], s["points"]) for s in generations.values()
        if s["correlation"] is not None
    ]
    overall = {
        "points": _tot("points"),
        "pairs_correct": pairs_correct,
        "pairs_total": pairs_total,
        "rank_accuracy": pairs_correct / pairs_total if pairs_total else None,
        "topk_hits": topk_hits,
        "topk_total": topk_total,
        "topk_recall": topk_hits / topk_total if topk_total else None,
        "correlation": (
            sum(c * w for c, w in weighted) / sum(w for _, w in weighted)
            if weighted else None
        ),
        "batches": n_batches,
        "generations": len(generations),
    }
    return {"overall": overall, "per_generation": generations}


# ---------------------------------------------------------------------------
# PPO learning curves
# ---------------------------------------------------------------------------

def ppo_curves(events: Sequence[Dict]) -> Optional[Dict]:
    """Per-actor update curves from ``ppo_update`` events."""
    curves: Dict[str, Dict[str, List[float]]] = {}
    for e in events:
        attrs = _event_attrs(e, "ppo_update")
        if attrs is None:
            continue
        actor = str(attrs.get("actor", "ppo"))
        c = curves.setdefault(
            actor,
            {"mean_reward": [], "policy_loss": [], "value_loss": [],
             "transitions": []},
        )
        for key in c:
            v = attrs.get(key)
            if v is not None:
                c[key].append(float(v))
    if not curves:
        return None
    out: Dict[str, Dict] = {}
    for actor, c in sorted(curves.items()):
        rewards = c["mean_reward"]
        out[actor] = {
            "updates": len(rewards),
            "mean_reward": rewards,
            "policy_loss": c["policy_loss"],
            "value_loss": c["value_loss"],
            "first_reward": rewards[0] if rewards else None,
            "last_reward": rewards[-1] if rewards else None,
        }
    return out


# ---------------------------------------------------------------------------
# Layout episodes / propagation
# ---------------------------------------------------------------------------

def layout_episode_table(events: Sequence[Dict]) -> List[Dict]:
    """Per-layout reward table from the joint stage's ``layout_episode``
    events, best layout first."""
    by_layout: Dict[Tuple[str, str], Dict] = {}
    for e in events:
        attrs = _event_attrs(e, "layout_episode")
        if attrs is None:
            continue
        key = (str(attrs.get("task", "?")), str(attrs.get("layout", "?")))
        row = by_layout.setdefault(
            key,
            {"task": key[0], "layout": key[1], "episodes": 0,
             "from_actor": 0, "best_latency": math.inf, "rewards": []},
        )
        row["episodes"] += 1
        if attrs.get("from_actor"):
            row["from_actor"] += 1
        best = attrs.get("best")
        if isinstance(best, (int, float)) and best < row["best_latency"]:
            row["best_latency"] = float(best)
        reward = attrs.get("reward")
        if isinstance(reward, (int, float)) and math.isfinite(reward):
            row["rewards"].append(float(reward))
    rows = []
    for row in by_layout.values():
        rewards = row.pop("rewards")
        row["mean_reward"] = (
            sum(rewards) / len(rewards) if rewards else None
        )
        if not math.isfinite(row["best_latency"]):
            row["best_latency"] = None
        rows.append(row)
    rows.sort(
        key=lambda r: (r["best_latency"] is None,
                       r["best_latency"] if r["best_latency"] is not None
                       else 0.0)
    )
    return rows


def propagation_summary(metrics: Dict) -> Dict:
    """Conversion / absorption / replication counts from a metrics snapshot."""
    return {
        "conversions": metrics.get("propagation.conversions", 0),
        "absorptions": metrics.get("propagation.absorptions", 0),
        "replications": metrics.get("propagation.replications", 0),
    }


# ---------------------------------------------------------------------------
# The full bundle + renderer
# ---------------------------------------------------------------------------

def run_diagnostics(
    events: Sequence[Dict], metrics: Dict, k: int = DEFAULT_TOP_K
) -> Dict:
    """Everything the run registry stores per run under ``diagnostics``."""
    return {
        "cost_model": cost_model_diagnostics(events, k=k),
        "ppo": ppo_curves(events),
        "layout_episodes": layout_episode_table(events),
        "propagation": propagation_summary(metrics),
    }


def render_diagnostics(diag: Dict) -> str:
    """Plain-text view (``repro runs show``)."""
    lines = ["search-quality diagnostics:"]
    cm = diag.get("cost_model")
    if cm:
        o = cm["overall"]
        acc = o.get("rank_accuracy")
        rec = o.get("topk_recall")
        corr = o.get("correlation")
        lines.append(
            f"  cost model: {o['points']} ranked points in {o['batches']} "
            f"batches over {o['generations']} generation(s)"
        )
        lines.append(
            "    rank accuracy "
            + (f"{acc * 100:.1f}%" if acc is not None else "n/a")
            + f" ({o['pairs_correct']}/{o['pairs_total']} pairs), top-k "
            + (f"recall {rec * 100:.1f}%" if rec is not None else "recall n/a")
            + (f", corr {corr:+.3f}" if corr is not None else "")
        )
        for gen, s in cm["per_generation"].items():
            acc = s.get("rank_accuracy")
            lines.append(
                f"    gen {gen}: {s['points']} pts, rank acc "
                + (f"{acc * 100:.1f}%" if acc is not None else "n/a")
            )
    else:
        lines.append("  cost model: no ranked batches recorded")
    ppo = diag.get("ppo")
    if ppo:
        for actor, c in ppo.items():
            line = f"  {actor}: {c['updates']} updates"
            if c.get("first_reward") is not None:
                line += (
                    f", reward {c['first_reward']:.3f} -> "
                    f"{c['last_reward']:.3f}"
                )
            lines.append(line)
    episodes = diag.get("layout_episodes") or []
    if episodes:
        lines.append("  layout episodes (best first):")
        for row in episodes[:8]:
            best = row["best_latency"]
            best_s = f"{best * 1e6:9.2f} us" if best is not None else "   failed"
            mr = row["mean_reward"]
            lines.append(
                f"    {row['layout'][:44]:44s} {best_s}  "
                f"eps={row['episodes']} actor={row['from_actor']}"
                + (f" reward={mr:.2f}" if mr is not None else "")
            )
    prop = diag.get("propagation") or {}
    if any(prop.values()):
        lines.append(
            f"  propagation: {prop.get('conversions', 0)} conversions, "
            f"{prop.get('absorptions', 0)} absorptions, "
            f"{prop.get('replications', 0)} replications"
        )
    return "\n".join(lines)
