"""Observability subsystem: structured tracing, metrics, timelines, logging.

The compile/tune pipeline threads a single :class:`Trace` through
``CompileOptions`` (and the tuner entry points); everything downstream --
the per-task tuners, the PPO agents, the cost model, layout propagation and
the measurement engine -- records spans, events and metrics into it.  A
disabled trace (the default) records nothing and leaves tuned results
bit-identical.

Quick tour::

    from repro.obs import Trace, trace_report, timeline_report

    trace = Trace(name="resnet18")
    model = compile_graph(graph, machine, CompileOptions(trace=trace))
    trace.save("run.jsonl")          # JSONL: spans + rounds + metrics
    print(trace_report(trace))       # span flamegraph (text)
    print(timeline_report(trace))    # per-task reward / latency curves

Or from the CLI: ``python -m repro compile resnet18 --trace-out run.jsonl``
then ``python -m repro trace run.jsonl``.

For *where the time goes* (aggregated per-phase wall time and throughput
rather than a span tree), thread a :class:`Profiler` the same way::

    from repro.obs import Profiler, profile_report

    prof = Profiler()
    result = tune_alt(comp, machine, budget=512, profiler=prof)
    print(profile_report(prof))      # hot-path table, self-time sorted

Or from the CLI: ``python -m repro profile gmm --size 16 --budget 96``.
"""

from .dashboard import dashboard_data, render_dashboard, write_dashboard

from .compare import (
    compare_summaries,
    compare_throughput,
    render_compare,
    render_throughput_compare,
    write_compare,
)
from .diagnostics import (
    cost_model_diagnostics,
    layout_episode_table,
    pairwise_rank_accuracy,
    ppo_curves,
    render_diagnostics,
    run_diagnostics,
    top_k_recall,
)
from .log import log, setup_logging
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import (
    NULL_PROFILER,
    PROFILE_SCHEMA_VERSION,
    PhaseStat,
    Profiler,
    attribution_fraction,
    profile_report,
)
from .render import span_coverage, span_self_s, timeline_report, trace_report
from .runstore import (
    RunRecord,
    RunStore,
    RunWriter,
    git_sha,
    load_summary,
    merge_summaries,
    trace_meta,
)
from .timeline import TimelineRecorder, best_so_far_curve, timeline_from_events
from .trace import (
    NULL_TRACE,
    TRACE_SCHEMA_VERSION,
    Span,
    Trace,
    TraceData,
    build_span_tree,
    iter_trace_records,
    load_trace,
)
from .watch import (
    HEALTH_SCHEMA_VERSION,
    TraceTail,
    Watchdog,
    WatchRules,
    WatchState,
    evaluate,
    render_watch_frame,
    watch_run,
    write_health,
)

__all__ = [
    "Counter", "DEFAULT_BUCKETS", "Gauge", "HEALTH_SCHEMA_VERSION",
    "Histogram", "MetricsRegistry",
    "NULL_PROFILER", "NULL_TRACE", "PROFILE_SCHEMA_VERSION", "PhaseStat",
    "Profiler", "RunRecord", "RunStore", "RunWriter", "Span",
    "TimelineRecorder", "Trace", "TraceData", "TraceTail",
    "TRACE_SCHEMA_VERSION", "Watchdog", "WatchRules", "WatchState",
    "attribution_fraction", "best_so_far_curve", "build_span_tree",
    "compare_summaries", "compare_throughput", "cost_model_diagnostics",
    "dashboard_data", "evaluate",
    "git_sha", "iter_trace_records", "layout_episode_table", "load_summary",
    "load_trace", "log",
    "merge_summaries", "pairwise_rank_accuracy", "ppo_curves",
    "profile_report", "render_compare", "render_dashboard",
    "render_diagnostics", "render_throughput_compare",
    "render_watch_frame", "run_diagnostics", "setup_logging",
    "span_coverage", "span_self_s", "timeline_from_events", "timeline_report",
    "top_k_recall",
    "trace_meta", "trace_report", "watch_run", "write_compare",
    "write_dashboard", "write_health",
]
