"""Text renderers for traces and tuning timelines.

``trace_report`` prints the span tree as a text flamegraph (duration, share
of parent, bar); ``timeline_report`` prints per-task reward curves and the
best-latency trajectory.  Both accept a live :class:`~repro.obs.trace.Trace`,
a parsed :class:`~repro.obs.trace.TraceData`, or a JSONL path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from .timeline import best_so_far_curve, timeline_from_events
from .trace import Trace, TraceData, load_trace

_BAR_WIDTH = 20


def _fmt_dur(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} us"


def _coerce(source: Union[str, Trace, TraceData]) -> TraceData:
    if isinstance(source, TraceData):
        return source
    if isinstance(source, Trace):
        spans = [e for e in source.events if e.get("kind") == "span"]
        events = [e for e in source.events if e.get("kind") == "event"]
        return TraceData(
            {"name": source.name, **source.meta}, spans, events,
            source.metrics.snapshot(),
        )
    return load_trace(source)


# ---------------------------------------------------------------------------
# Span flamegraph
# ---------------------------------------------------------------------------

def span_self_s(node) -> float:
    """A span's *self* time: its duration minus its direct children's."""
    return max(
        node.duration_s - sum(c.duration_s for c in node.children), 0.0
    )


def _order_children(children, sort: Optional[str]):
    """Children in render order; ``None`` keeps chronological t_start order
    (how the JSONL recorded them)."""
    if sort == "self":
        return sorted(children, key=lambda c: -span_self_s(c))
    if sort == "total":
        return sorted(children, key=lambda c: -c.duration_s)
    if sort == "name":
        return sorted(children, key=lambda c: c.name)
    return list(children)


def _render_span(node, total: float, parent_s: float, depth: int,
                 lines: List[str], max_children: int,
                 sort: Optional[str] = None) -> None:
    frac = node.duration_s / total if total > 0 else 0.0
    parent_frac = node.duration_s / parent_s if parent_s > 0 else 0.0
    self_s = span_self_s(node)
    bar = "#" * max(int(round(frac * _BAR_WIDTH)), 1 if frac > 0 else 0)
    label = "  " * depth + node.name
    extras = ""
    attrs = node.attrs or {}
    shown = {k: v for k, v in attrs.items()
             if k in ("task", "graph", "mode", "machine", "submitted",
                      "fresh", "budget", "rounds", "error")}
    if shown:
        extras = "  " + " ".join(f"{k}={v}" for k, v in sorted(shown.items()))
    lines.append(
        f"  {label:36s} {_fmt_dur(node.duration_s)} {frac * 100:5.1f}%"
        f" {_fmt_dur(self_s)} self {parent_frac * 100:5.1f}%p"
        f" |{bar:<{_BAR_WIDTH}s}|{extras}"
    )
    children = _order_children(node.children, sort)
    if max_children and len(children) > max_children:
        head = children[:max_children]
        hidden = children[max_children:]
        for child in head:
            _render_span(child, total, node.duration_s, depth + 1, lines,
                         max_children, sort)
        rest = sum(c.duration_s for c in hidden)
        lines.append(
            "  " + "  " * (depth + 1)
            + f"... {len(hidden)} more spans{'':9s}{_fmt_dur(rest)}"
        )
    else:
        for child in children:
            _render_span(child, total, node.duration_s, depth + 1, lines,
                         max_children, sort)


def span_coverage(node) -> float:
    """Fraction of a span's duration covered by its direct children."""
    if node.duration_s <= 0:
        return 1.0
    return min(sum(c.duration_s for c in node.children) / node.duration_s, 1.0)


def trace_report(source: Union[str, Trace, TraceData],
                 max_children: int = 24,
                 sort: Optional[str] = None) -> str:
    """Text flamegraph of the recorded span tree plus key metrics.

    Columns per span: total duration, percent of the *root*, self time
    (duration minus direct children -- the hot-leaf signal), and percent of
    the *parent*.  ``sort`` reorders siblings: ``"self"``/``"total"``
    (descending) or ``"name"``; ``None`` keeps chronological order.
    """
    if sort not in (None, "self", "total", "name"):
        raise ValueError(
            f"sort must be one of None, 'self', 'total', 'name'; got {sort!r}"
        )
    data = _coerce(source)
    lines = [f"trace {data.name!r}:"]
    # attribution header: who/what produced this trace (seed, source SHA,
    # repro version ride in the JSONL meta record)
    attribution = {
        k: data.meta[k]
        for k in ("seed", "git_sha", "repro_version")
        if data.meta.get(k) is not None
    }
    if attribution:
        lines.append(
            "  " + "  ".join(f"{k}={v}" for k, v in sorted(attribution.items()))
        )
    if not data.roots:
        lines.append("  (no spans recorded)")
    for root in data.roots:
        _render_span(root, root.duration_s, root.duration_s, 0, lines,
                     max_children, sort)
    if data.metrics:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(data.metrics):
            v = data.metrics[name]
            if isinstance(v, dict):  # histogram snapshot
                tails = "".join(
                    f" {p}={v[p]:.4g}"
                    for p in ("p50", "p95", "p99")
                    if isinstance(v.get(p), (int, float))
                )
                lines.append(
                    f"  {name:36s} n={v.get('count', 0)}"
                    f" mean={v.get('mean', 0.0):.4g}{tails}"
                )
            elif isinstance(v, float):
                lines.append(f"  {name:36s} {v:.6g}")
            else:
                lines.append(f"  {name:36s} {v}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Tuning timeline / reward curve
# ---------------------------------------------------------------------------

def _spark(values: Sequence[float], width: int = 32) -> str:
    """Down-sampled text sparkline over finite values."""
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if not finite:
        return "(no finite samples)"
    lo, hi = min(finite), max(finite)
    glyphs = ".:-=+*#%@"
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    out = []
    for v in values:
        if v is None or not math.isfinite(v):
            out.append(" ")
            continue
        t = 0.0 if hi == lo else (v - lo) / (hi - lo)
        out.append(glyphs[min(int(t * (len(glyphs) - 1) + 0.5),
                              len(glyphs) - 1)])
    return "".join(out)


def timeline_report(source: Union[str, Trace, TraceData, Sequence[Dict]],
                    task: Optional[str] = None) -> str:
    """Per-task tuning summary: rounds, stages, reward curve, best latency."""
    if isinstance(source, (list, tuple)):
        rounds = [dict(r) for r in source]
    else:
        data = _coerce(source)
        rounds = timeline_from_events(data.events)
    if task is not None:
        rounds = [r for r in rounds if r.get("task") == task]
    by_task: Dict[str, List[Dict]] = {}
    for r in rounds:
        by_task.setdefault(r.get("task", "?"), []).append(r)
    lines = ["tuning timeline:"]
    if not by_task:
        lines.append("  (no rounds recorded)")
    for name in sorted(by_task):
        rs = by_task[name]
        curve = best_so_far_curve(rs)
        finite = [v for v in curve if math.isfinite(v)]
        best = min(finite) if finite else math.inf
        joint = sum(1 for r in rs if r.get("stage") == "joint")
        rewards = [r.get("reward") for r in rs if r.get("reward") is not None]
        lines.append(
            f"  {name}: {len(rs)} rounds ({joint} joint, "
            f"{len(rs) - joint} loop), best {best * 1e6:.2f} us"
        )
        lines.append(f"    best-so-far  {_spark(curve)}")
        if rewards:
            lines.append(
                f"    reward       {_spark(rewards)}  "
                f"(last {rewards[-1]:.3f}, max {max(rewards):.3f})"
            )
        last = rs[-1]
        lines.append(
            f"    measurements {last.get('measurements')}, "
            f"budget remaining {last.get('budget_remaining')}"
        )
    return "\n".join(lines)
