"""Static HTML dashboard over the run registry + committed benchmarks.

``repro dashboard`` renders one self-contained HTML file -- inline CSS,
inline SVG sparklines, zero JavaScript, zero external fetches -- so the
page works as a CI artifact, an email attachment, or a file:// open on an
air-gapped box.  It aggregates:

- every run in a :class:`~repro.obs.runstore.RunStore` (status, watchdog
  health, per-task best latency, measurements, best-so-far sparkline,
  with a ``<details>`` drill-down into alerts and config), and
- the committed ``BENCH_*.json`` history (perf-gate baseline tasks,
  tuner-throughput phases) as trend context next to the live runs.

Split on purpose into :func:`dashboard_data` (pure aggregation, easy to
test) and :func:`render_dashboard` (data -> HTML string).
"""

from __future__ import annotations

import html
import json
import math
import os
import time
from typing import Dict, List, Optional, Sequence

from .log import log
from .runstore import RunStore
from .timeline import best_so_far_curve

#: bump when the aggregated payload shape changes incompatibly
DASHBOARD_SCHEMA_VERSION = 1


def _fmt_lat(v: Optional[float]) -> str:
    if v is None or not isinstance(v, (int, float)) or not math.isfinite(v):
        return "n/a"
    return f"{v * 1e6:.2f} us"


def _svg_spark(values: Sequence[float], width: int = 140,
               height: int = 28) -> str:
    """Inline SVG polyline sparkline (empty string without >= 2 points)."""
    pts = [v for v in values
           if isinstance(v, (int, float)) and math.isfinite(v)]
    if len(pts) < 2:
        return ""
    lo, hi = min(pts), max(pts)
    span = (hi - lo) or 1.0
    n = len(pts)
    coords = " ".join(
        f"{i * (width - 2) / (n - 1) + 1:.1f},"
        f"{height - 2 - (v - lo) / span * (height - 4):.1f}"
        for i, v in enumerate(pts)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="currentColor" stroke-width="1.2" '
        f'points="{coords}"/></svg>'
    )


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def _run_row(rec) -> Dict:
    manifest = rec.manifest
    tasks = {}
    for name, res in (rec.result.get("tasks") or {}).items():
        tasks[name] = {
            "best_latency": res.get("best_latency"),
            "measurements": res.get("measurements"),
        }
    health = rec.health
    curve = best_so_far_curve(rec.rounds)
    model = rec.result.get("model") or {}
    return {
        "run_id": rec.run_id,
        "name": manifest.get("name"),
        "workload": manifest.get("workload"),
        "machine": manifest.get("machine"),
        "seed": manifest.get("seed"),
        "created": manifest.get("created"),
        "status": rec.status,
        "health_status": health.get("status"),
        "alerts": [
            {"rule": a.get("rule"), "severity": a.get("severity"),
             "message": a.get("message")}
            for a in (health.get("alerts") or [])
        ],
        "progress": health.get("progress") or {},
        "tasks": tasks,
        "model_latency": model.get("network_latency_s")
        or model.get("latency_s"),
        "curve": curve,
        "config": manifest.get("config") or {},
        "error": manifest.get("error"),
    }


def _load_bench(path: str) -> Optional[Dict]:
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as exc:
        log.warning("dashboard: skipping %s: %s", path, exc)
        return None
    return {"file": os.path.basename(path), "data": data}


def dashboard_data(
    store_root: str, bench_paths: Sequence[str] = (),
) -> Dict:
    """Aggregate a run store + bench files into the renderable payload."""
    store = RunStore(store_root)
    ids, skipped = store.scan()
    runs = [_run_row(store.load(rid)) for rid in ids]
    # per-task best-latency trend across the store, in creation order
    trends: Dict[str, List[float]] = {}
    for row in runs:
        for name, t in row["tasks"].items():
            v = t.get("best_latency")
            if isinstance(v, (int, float)) and math.isfinite(v):
                trends.setdefault(name, []).append(v)
    return {
        "schema": DASHBOARD_SCHEMA_VERSION,
        "generated_at": time.time(),
        "store": os.path.abspath(store_root),
        "runs": runs,
        "skipped": [{"entry": e, "reason": r} for e, r in skipped],
        "trends": trends,
        "benches": [
            b for b in (_load_bench(p) for p in bench_paths) if b
        ],
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

_CSS = """
body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em auto;
       max-width: 72em; padding: 0 1em; color: #1a1f24; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: .25em .6em;
         border-bottom: 1px solid #e2e6ea; vertical-align: top; }
th { font-weight: 600; border-bottom: 2px solid #c6ccd2; }
code { background: #f2f4f6; padding: 0 .25em; border-radius: 3px; }
.ok { color: #1a7f37; font-weight: 600; }
.alert { color: #b35900; font-weight: 600; }
.failed { color: #cf222e; font-weight: 600; }
.running { color: #0969da; font-weight: 600; }
.muted { color: #6a737d; }
.spark { color: #0969da; vertical-align: middle; }
details { margin: .2em 0; } summary { cursor: pointer; }
.alertbox { background: #fff4e5; border-left: 3px solid #b35900;
            padding: .3em .6em; margin: .3em 0; }
"""


def _esc(v) -> str:
    return html.escape(str(v))


def _status_cell(row: Dict) -> str:
    status = row["status"]
    cls = {"completed": "ok", "failed": "failed",
           "running": "running"}.get(status, "muted")
    out = f'<span class="{cls}">{_esc(status)}</span>'
    hs = row.get("health_status")
    if hs == "alert":
        out += ' <span class="alert">⚠</span>'
    elif hs == "ok":
        out += ' <span class="ok">✓</span>'
    return out


def _run_details(row: Dict) -> str:
    parts = []
    for a in row["alerts"]:
        parts.append(
            f'<div class="alertbox">[{_esc(a["rule"])}] '
            f'{_esc(a["message"])}</div>'
        )
    if row.get("error"):
        parts.append(f'<div class="alertbox">{_esc(row["error"])}</div>')
    p = row.get("progress") or {}
    if p:
        bits = []
        for key in ("rounds", "measurements", "budget_total", "errors",
                    "quarantined", "rank_accuracy"):
            if p.get(key) is not None:
                v = p[key]
                bits.append(
                    f"{key}={v:.3g}" if isinstance(v, float)
                    else f"{key}={v}"
                )
        if bits:
            parts.append(
                f'<div class="muted">{_esc("  ".join(bits))}</div>'
            )
    if row["config"]:
        cfg = json.dumps(row["config"], sort_keys=True)
        parts.append(f"<div><code>{_esc(cfg)}</code></div>")
    body = "".join(parts) or '<div class="muted">no detail recorded</div>'
    return (
        f"<details><summary>{_esc(row['run_id'])}</summary>{body}</details>"
    )


def _runs_section(data: Dict) -> str:
    rows = []
    for row in reversed(data["runs"]):  # newest first
        tasks = "<br>".join(
            f"{_esc(name)}: {_fmt_lat(t['best_latency'])}"
            f' <span class="muted">({t.get("measurements")} meas)</span>'
            for name, t in sorted(row["tasks"].items())
        ) or '<span class="muted">-</span>'
        created = row.get("created")
        when = (
            time.strftime("%Y-%m-%d %H:%M", time.gmtime(created))
            if isinstance(created, (int, float)) else "?"
        )
        rows.append(
            "<tr>"
            f"<td>{_run_details(row)}</td>"
            f"<td>{_esc(row.get('workload') or row.get('name') or '?')}</td>"
            f"<td>{_status_cell(row)}</td>"
            f"<td>{tasks}</td>"
            f"<td>{_svg_spark(row['curve'])}</td>"
            f'<td class="muted">{_esc(when)}</td>'
            "</tr>"
        )
    skipped = ""
    if data["skipped"]:
        items = ", ".join(
            f"{_esc(s['entry'])} ({_esc(s['reason'])})"
            for s in data["skipped"]
        )
        skipped = f'<p class="muted">skipped entries: {items}</p>'
    return (
        "<h2>Runs</h2>"
        "<table><tr><th>run</th><th>workload</th><th>status</th>"
        "<th>best latency</th><th>best-so-far</th><th>created (UTC)</th>"
        f"</tr>{''.join(rows)}</table>{skipped}"
    )


def _trends_section(data: Dict) -> str:
    if not data["trends"]:
        return ""
    rows = "".join(
        "<tr>"
        f"<td><code>{_esc(name)}</code></td>"
        f"<td>{_svg_spark(vals)}</td>"
        f"<td>{_fmt_lat(vals[-1])}</td>"
        f"<td>{_fmt_lat(min(vals))}</td>"
        f"<td>{len(vals)}</td>"
        "</tr>"
        for name, vals in sorted(data["trends"].items())
    )
    return (
        "<h2>Per-task trend (across the store, oldest → newest)</h2>"
        "<table><tr><th>task</th><th>best latency trend</th><th>latest</th>"
        f"<th>best</th><th>runs</th></tr>{rows}</table>"
    )


def _bench_section(bench: Dict) -> str:
    data = bench["data"]
    title = f"<h2>Benchmark: <code>{_esc(bench['file'])}</code></h2>"
    if isinstance(data.get("tasks"), dict):  # run-summary shape (baseline)
        rows = "".join(
            "<tr>"
            f"<td><code>{_esc(name)}</code></td>"
            f"<td>{_fmt_lat(t.get('best_latency'))}</td>"
            f"<td>{t.get('measurements')}</td>"
            f"<td>{t.get('noise_rel')}</td>"
            "</tr>"
            for name, t in sorted(data["tasks"].items())
        )
        return (
            title + "<table><tr><th>task</th><th>best latency</th>"
            f"<th>measurements</th><th>noise</th></tr>{rows}</table>"
        )
    if isinstance(data.get("workloads"), dict):  # throughput shape
        rows = []
        for name, w in sorted(data["workloads"].items()):
            phases = w.get("phases") or {}
            spark = _svg_spark(
                [p.get("self_s") or 0.0 for _, p in sorted(phases.items())]
            )
            rows.append(
                "<tr>"
                f"<td><code>{_esc(name)}</code></td>"
                f"<td>{w.get('candidates_per_s')}</td>"
                f"<td>{w.get('candidates')}</td>"
                f"<td>{spark} <span class='muted'>"
                f"{len(phases)} phases</span></td>"
                "</tr>"
            )
        return (
            title + "<table><tr><th>workload</th><th>candidates/s</th>"
            f"<th>candidates</th><th>phase self-times</th></tr>"
            f"{''.join(rows)}</table>"
        )
    pretty = json.dumps(data, indent=2, sort_keys=True)[:4000]
    return title + f"<pre>{_esc(pretty)}</pre>"


def render_dashboard(data: Dict) -> str:
    """Aggregated payload -> one self-contained HTML page."""
    when = time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(data["generated_at"])
    )
    n_alert = sum(
        1 for r in data["runs"] if r.get("health_status") == "alert"
    )
    banner = (
        f'<p><span class="alert">{n_alert} run(s) with active '
        "alerts</span></p>"
        if n_alert else '<p><span class="ok">all runs healthy</span></p>'
    )
    sections = [_runs_section(data), _trends_section(data)]
    sections.extend(_bench_section(b) for b in data["benches"])
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>repro dashboard</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>repro dashboard</h1>"
        f'<p class="muted">store <code>{_esc(data["store"])}</code> · '
        f"{len(data['runs'])} run(s) · generated {when}</p>"
        f"{banner}{''.join(sections)}"
        "</body></html>"
    )


def write_dashboard(
    store_root: str,
    out_path: str,
    bench_paths: Sequence[str] = (),
) -> Dict:
    """Aggregate + render + write; returns the aggregated payload."""
    data = dashboard_data(store_root, bench_paths)
    tmp = out_path + ".tmp"
    with open(tmp, "w") as f:
        f.write(render_dashboard(data))
    os.replace(tmp, out_path)
    log.info("dashboard written: %s (%d runs)", out_path, len(data["runs"]))
    return data
