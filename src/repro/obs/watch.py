"""Live run health: a rule engine over the streamed trace, plus the
``repro watch`` tail view.

The streaming sink (:class:`repro.obs.Trace` with ``stream_to=``) turns a
run's ``trace.jsonl`` into a live feed; this module is the consumer side:

- :class:`WatchState` folds the record stream into a compact incremental
  aggregate (rounds, best-so-far curve, error/quarantine marks, cost-model
  rank pairs, budget burn) at constant memory, so a multi-GB trace tails
  as cheaply as a small one.
- :func:`evaluate` runs the health rules over that state and produces the
  ``health.json`` payload: stall (no best-latency improvement in N
  rounds), measurement error-rate / quarantine spikes, cost-model
  rank-accuracy collapse, checkpoint age, plus an ETA from the
  budget-burn rate.
- :class:`Watchdog` rides *inside* a tuning process as a trace listener:
  every round it re-evaluates, writes ``health.json`` atomically into the
  run directory, and emits a ``health`` event into the stream whenever the
  active alert set changes (so the alert history is itself in the trace).
- :class:`TraceTail` + :func:`watch_run` are the *external* consumer: an
  incremental JSONL reader tolerant of partial last lines and end-save
  rewrites, and the ``repro watch`` driver that refreshes a terminal frame
  until the run leaves ``running`` (``--fail-on`` maps active alerts to a
  nonzero exit code for CI and fleet coordinators).

Health payload schema (``health.json`` and the ``health`` trace event)::

    {"schema": 1, "run_id": ..., "status": "ok" | "alert",
     "run_status": "running" | "completed" | "failed",
     "alerts": [{"rule": str, "severity": "warn" | "critical",
                 "message": str, "data": {...}}, ...],
     "progress": {"rounds", "best_latency", "measurements",
                  "budget_total", "budget_spent", "eta_s", ...}}
"""

from __future__ import annotations

import math
import os
import time
from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from .diagnostics import pairwise_rank_accuracy
from .log import log
from .runstore import (
    CHECKPOINT_FILE,
    HEALTH_FILE,
    MANIFEST_FILE,
    STATUS_RUNNING,
    _write_json,
)
from .trace import TraceReadStats, parse_trace_line

#: bump when the health payload schema changes incompatibly
HEALTH_SCHEMA_VERSION = 1

#: every rule name the engine can raise (``--fail-on any`` expands to this)
RULE_NAMES = (
    "stall", "errors", "quarantine", "cost_model", "checkpoint_age",
    "workers",
)


@dataclass
class WatchRules:
    """Thresholds for the health rules (see module docstring).

    Defaults are sized for the pinned gate workloads (budget ~100, rounds
    ~25): loose enough that a healthy run never alerts, tight enough that
    a dead cost model or an error storm flips within a few rounds.
    """

    #: alert when the best latency has not improved for this many rounds
    stall_rounds: int = 30
    #: error-rate window, counted in fresh evaluations
    error_window: int = 40
    #: alert when recent errors / window exceeds this rate ...
    error_rate: float = 0.25
    #: ... and at least this many errors happened (absolute floor)
    error_min: int = 5
    #: quarantine window, counted in fresh evaluations
    quarantine_window: int = 40
    #: alert when more candidates than this were quarantined in-window
    quarantine_max: int = 3
    #: alert when recent cost-model rank accuracy drops below this ...
    rank_floor: float = 0.5
    #: ... judged only once this many comparable pairs accumulated
    rank_min_pairs: int = 60
    #: alert when a running run's checkpoint is older than this (seconds)
    checkpoint_max_age_s: float = 600.0
    #: fleet lease-retry window, counted in lease dispatches
    workers_window: int = 25
    #: alert when recent lease retries / window exceeds this rate ...
    workers_retry_rate: float = 0.5
    #: ... and at least this many retries happened (absolute floor)
    workers_retry_min: int = 3

    @classmethod
    def parse(cls, spec: Optional[str]) -> "WatchRules":
        """``"stall_rounds=10,error_rate=0.5"`` -> rules (CLI ``--rules``)."""
        rules = cls()
        if not spec:
            return rules
        types = {f.name: f.type for f in fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"watch rule {part!r}: expected name=value")
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in types:
                raise ValueError(
                    f"unknown watch rule {key!r} (known: {sorted(types)})"
                )
            cast = float if "float" in str(types[key]) else int
            setattr(rules, key, cast(value))
        return rules


def parse_fail_on(spec: Optional[str]) -> Tuple[str, ...]:
    """``--fail-on`` value -> rule-name tuple (``"any"`` means all)."""
    if not spec:
        return ()
    names = [s.strip() for s in spec.split(",") if s.strip()]
    if "any" in names:
        return RULE_NAMES
    for n in names:
        if n not in RULE_NAMES:
            raise ValueError(
                f"unknown health rule {n!r} (known: {list(RULE_NAMES)})"
            )
    return tuple(names)


# ---------------------------------------------------------------------------
# Incremental stream aggregation
# ---------------------------------------------------------------------------

class WatchState:
    """Constant-memory fold over a trace record stream.

    ``feed`` every record (from a live :class:`~repro.obs.Trace` listener
    or a :class:`TraceTail`); read the aggregates any time.  Bounded
    deques hold only the recent windows the rules and the terminal frame
    need -- the full stream is never retained.
    """

    #: cap on the rendered best-so-far curve; beyond it the curve is
    #: decimated 2:1 (the sparkline downsamples anyway)
    CURVE_CAP = 4096

    def __init__(self):
        self.meta: Dict = {}
        self.metrics: Dict = {}
        # -- rounds
        self.rounds_total = 0
        self.stage_counts: Dict[str, int] = {}
        self.last_round: Dict = {}
        self.best_latency = math.inf
        self.last_improvement_round = 0
        self.curve: List[float] = []
        self.recent_round_ts: deque = deque(maxlen=32)
        # per-task budget bookkeeping (last round per task)
        self.task_measurements: Dict[str, int] = {}
        self.task_budget_remaining: Dict[str, int] = {}
        # -- measurement health
        self.errors_total = 0
        self.error_kinds: Dict[str, int] = {}
        self.error_marks: deque = deque(maxlen=512)  # fresh_total at error
        self.quarantined_total = 0
        self.quarantine_marks: deque = deque(maxlen=512)
        self.degraded = False
        self.fresh_total = 0
        self.fresh_inflight = 0
        self.recent_batches: deque = deque(maxlen=64)  # (t_end, dur, fresh)
        # -- cost model
        self.cm_generation: Optional[int] = None
        self.cm_pairs: deque = deque(maxlen=32)  # (correct, comparable)
        # -- serve fleet (worker registrations / lease lifecycle)
        self.workers: Dict[str, bool] = {}  # name -> currently live
        self.workers_registered_total = 0
        self.workers_evicted_total = 0
        self.leases_dispatched = 0
        self.leases_completed = 0
        self.lease_retries = 0
        self.lease_quarantined = 0
        #: leases_dispatched mark at each retry (windowed retry rate)
        self.lease_retry_marks: deque = deque(maxlen=512)
        self.fleet_degraded = False
        # -- network scheduler
        self.network_budget: Optional[int] = None
        self.network_spent: Optional[int] = None
        self.grants_total = 0
        self.last_grant: Dict = {}
        self.tasks_started: Dict[str, Dict] = {}
        self.task_results: Dict[str, Dict] = {}
        self.network_result: Optional[Dict] = None
        # -- stream shape
        self.records_total = 0
        self.last_ts = 0.0
        self.health_events = 0
        self.last_health: Dict = {}

    # -- feeding ----------------------------------------------------------
    def feed(self, record: Dict) -> None:
        kind = record.get("kind")
        if kind == "meta":
            self.meta = record
            return
        if kind == "metrics":
            self.metrics = record.get("snapshot", {})
            return
        self.records_total += 1
        if kind == "span":
            self._feed_span(record)
        elif kind == "event":
            self._feed_event(record)

    def _bump_ts(self, ts) -> None:
        if isinstance(ts, (int, float)) and math.isfinite(ts):
            self.last_ts = max(self.last_ts, float(ts))

    def _feed_span(self, record: Dict) -> None:
        self._bump_ts(record.get("t_end"))
        if record.get("name") != "measure_batch":
            return
        attrs = record.get("attrs") or {}
        fresh = attrs.get("fresh")
        if isinstance(fresh, (int, float)):
            self.fresh_total += int(fresh)
            self.fresh_inflight = max(self.fresh_inflight - int(fresh), 0)
        t0, t1 = record.get("t_start"), record.get("t_end")
        dur = (t1 - t0) if isinstance(t0, (int, float)) and \
            isinstance(t1, (int, float)) else 0.0
        self.recent_batches.append(
            (t1 or 0.0, max(dur, 0.0), int(fresh or 0))
        )

    def _feed_event(self, record: Dict) -> None:
        self._bump_ts(record.get("ts"))
        name = record.get("name")
        attrs = record.get("attrs") or {}
        if name == "round":
            self._feed_round(record, attrs)
        elif name == "measure_error":
            self.errors_total += 1
            kind = str(attrs.get("kind", "?"))
            self.error_kinds[kind] = self.error_kinds.get(kind, 0) + 1
            self.error_marks.append(self.fresh_total)
        elif name == "measure_quarantined":
            self.quarantined_total += 1
            self.quarantine_marks.append(self.fresh_total)
        elif name == "measure_batch_start":
            f = attrs.get("fresh")
            if isinstance(f, (int, float)):
                self.fresh_inflight += int(f)
        elif name == "measure_degraded":
            self.degraded = True
        elif name == "worker_registered":
            self.workers[str(attrs.get("worker"))] = True
            self.workers_registered_total += 1
        elif name == "worker_evicted":
            self.workers[str(attrs.get("worker"))] = False
            self.workers_evicted_total += 1
        elif name == "lease_dispatch":
            self.leases_dispatched += 1
        elif name == "lease_complete":
            self.leases_completed += 1
        elif name == "lease_retry":
            self.lease_retries += 1
            self.lease_retry_marks.append(self.leases_dispatched)
        elif name == "lease_quarantined":
            self.lease_quarantined += 1
        elif name == "fleet_degraded":
            self.fleet_degraded = True
        elif name == "fleet_restored":
            self.fleet_degraded = False
        elif name == "cost_model_batch":
            gen = attrs.get("generation")
            if gen is not None:
                self.cm_generation = gen
            if not isinstance(gen, (int, float)) or gen < 1:
                # generation 0 is the untrained model: its ranking is
                # legitimately uninformative, not a collapse
                return
            predicted = attrs.get("predicted") or []
            measured = [
                math.inf if m == "Infinity" else float(m)
                for m in (attrs.get("measured") or [])
                if isinstance(m, (int, float, str))
            ]
            correct, comparable = pairwise_rank_accuracy(predicted, measured)
            if comparable:
                self.cm_pairs.append((correct, comparable))
        elif name == "budget_grant":
            self.grants_total += 1
            self.last_grant = attrs
            spent = attrs.get("spent_total")
            if isinstance(spent, (int, float)):
                self.network_spent = int(spent)
        elif name == "network_start":
            budget = attrs.get("budget")
            if isinstance(budget, (int, float)):
                self.network_budget = int(budget)
        elif name == "task_start":
            self.tasks_started[str(attrs.get("task"))] = attrs
        elif name == "task_result":
            self.task_results[str(attrs.get("task"))] = attrs
        elif name == "network_result":
            self.network_result = attrs
        elif name == "health":
            self.health_events += 1
            self.last_health = attrs

    def _feed_round(self, record: Dict, attrs: Dict) -> None:
        self.rounds_total += 1
        self.last_round = attrs
        stage = str(attrs.get("stage", "?"))
        self.stage_counts[stage] = self.stage_counts.get(stage, 0) + 1
        self.recent_round_ts.append(record.get("ts") or self.last_ts)
        best = attrs.get("best_so_far")
        if isinstance(best, (int, float)) and math.isfinite(best):
            if best < self.best_latency:
                self.best_latency = best
                self.last_improvement_round = self.rounds_total
            self.curve.append(best)
            if len(self.curve) > self.CURVE_CAP:
                self.curve = self.curve[::2]
        task = str(attrs.get("task", "?"))
        m = attrs.get("measurements")
        if isinstance(m, (int, float)):
            self.task_measurements[task] = int(m)
        rem = attrs.get("budget_remaining")
        if isinstance(rem, (int, float)):
            self.task_budget_remaining[task] = int(rem)

    # -- derived views -----------------------------------------------------
    def budget_totals(self) -> Tuple[Optional[int], Optional[int]]:
        """(budget_total, budget_spent) -- network grants win over the
        per-task round bookkeeping when both are present."""
        if self.network_budget is not None:
            return self.network_budget, self.network_spent or 0
        if not self.task_measurements:
            return None, None
        spent = sum(self.task_measurements.values())
        total = spent + sum(self.task_budget_remaining.values())
        return total, spent

    def eta_s(self) -> Optional[float]:
        """Remaining-budget estimate from the observed burn rate."""
        total, spent = self.budget_totals()
        if total is None or not spent or self.last_ts <= 0:
            return None
        rate = spent / self.last_ts
        if rate <= 0:
            return None
        return max(total - spent, 0) / rate

    def recent_error_count(self, window: int) -> int:
        floor = self.fresh_total - window
        return sum(1 for mark in self.error_marks if mark >= floor)

    def recent_quarantine_count(self, window: int) -> int:
        floor = self.fresh_total - window
        return sum(1 for mark in self.quarantine_marks if mark >= floor)

    def live_worker_count(self) -> int:
        return sum(1 for alive in self.workers.values() if alive)

    def recent_lease_retries(self, window: int) -> int:
        floor = self.leases_dispatched - window
        return sum(1 for mark in self.lease_retry_marks if mark >= floor)

    def recent_rank_accuracy(self) -> Tuple[Optional[float], int]:
        """(accuracy, comparable-pairs) over the recent cost-model batches."""
        correct = sum(c for c, _ in self.cm_pairs)
        total = sum(t for _, t in self.cm_pairs)
        return (correct / total if total else None), total

    def measure_throughput(self) -> Optional[float]:
        """Fresh evaluations per second over the recent batch window."""
        dur = sum(d for _, d, _ in self.recent_batches)
        fresh = sum(f for _, _, f in self.recent_batches)
        if dur <= 0 or fresh <= 0:
            return None
        return fresh / dur

    def rounds_per_min(self) -> Optional[float]:
        if len(self.recent_round_ts) < 2:
            return None
        ts = [t for t in self.recent_round_ts if isinstance(t, (int, float))]
        if len(ts) < 2 or ts[-1] <= ts[0]:
            return None
        return (len(ts) - 1) / (ts[-1] - ts[0]) * 60.0


# ---------------------------------------------------------------------------
# Rule engine
# ---------------------------------------------------------------------------

def _alert(rule: str, severity: str, message: str, **data) -> Dict:
    return {"rule": rule, "severity": severity, "message": message,
            "data": data}


def evaluate(
    state: WatchState,
    rules: Optional[WatchRules] = None,
    *,
    run_status: str = STATUS_RUNNING,
    run_id: Optional[str] = None,
    checkpoint_age_s: Optional[float] = None,
) -> Dict:
    """Run every health rule over ``state`` -> the health payload.

    ``run_status`` gates the liveness rules: a completed run that simply
    converged is not "stalled", and its checkpoint age is meaningless --
    those two rules only fire while the manifest still says ``running``.
    """
    rules = rules or WatchRules()
    alerts: List[Dict] = []
    live = run_status == STATUS_RUNNING

    since = state.rounds_total - state.last_improvement_round
    if live and state.rounds_total >= rules.stall_rounds and \
            since >= rules.stall_rounds:
        alerts.append(_alert(
            "stall", "warn",
            f"no best-latency improvement in {since} rounds "
            f"(threshold {rules.stall_rounds})",
            rounds_since_improvement=since,
            best_latency=(
                state.best_latency
                if math.isfinite(state.best_latency) else None
            ),
        ))

    window = min(rules.error_window, max(state.fresh_total, 1))
    recent_errors = state.recent_error_count(rules.error_window)
    rate = recent_errors / window
    if recent_errors >= rules.error_min and rate > rules.error_rate:
        alerts.append(_alert(
            "errors", "critical",
            f"{recent_errors} measurement error(s) in the last "
            f"{window} fresh evaluation(s) (rate {rate:.2f} > "
            f"{rules.error_rate:.2f})",
            recent=recent_errors, window=window, rate=rate,
            kinds=dict(state.error_kinds),
        ))

    recent_q = state.recent_quarantine_count(rules.quarantine_window)
    if recent_q > rules.quarantine_max:
        alerts.append(_alert(
            "quarantine", "warn",
            f"{recent_q} candidate(s) quarantined in the last "
            f"{rules.quarantine_window} fresh evaluation(s) "
            f"(threshold {rules.quarantine_max})",
            recent=recent_q, window=rules.quarantine_window,
        ))

    accuracy, pairs = state.recent_rank_accuracy()
    if accuracy is not None and pairs >= rules.rank_min_pairs and \
            accuracy < rules.rank_floor:
        alerts.append(_alert(
            "cost_model", "warn",
            f"cost-model rank accuracy collapsed to {accuracy:.2f} over "
            f"{pairs} recent pair(s) (floor {rules.rank_floor:.2f})",
            rank_accuracy=accuracy, pairs=pairs,
            generation=state.cm_generation,
        ))

    fleet_active = state.workers_registered_total > 0
    if fleet_active:
        live_workers = state.live_worker_count()
        if live and live_workers == 0:
            alerts.append(_alert(
                "workers", "critical",
                f"fleet is empty ({state.workers_evicted_total} eviction(s) "
                "so far); measurement degraded to local serial execution",
                live=0, evicted=state.workers_evicted_total,
                degraded=state.fleet_degraded,
            ))
        # one window for numerator and denominator: early in a run the
        # window clamps to the dispatch count, and counting retries over
        # the full rules window while dividing by the clamp would inflate
        # the rate past its documented retries-per-dispatch meaning
        window = min(rules.workers_window, max(state.leases_dispatched, 1))
        recent_retries = state.recent_lease_retries(window)
        retry_rate = recent_retries / window
        if recent_retries >= rules.workers_retry_min and \
                retry_rate > rules.workers_retry_rate:
            alerts.append(_alert(
                "workers", "warn",
                f"{recent_retries} lease retr(ies) in the last {window} "
                f"dispatch(es) (rate {retry_rate:.2f} > "
                f"{rules.workers_retry_rate:.2f})",
                recent=recent_retries, window=window, rate=retry_rate,
                live=live_workers,
            ))

    if live and checkpoint_age_s is not None and \
            checkpoint_age_s > rules.checkpoint_max_age_s:
        alerts.append(_alert(
            "checkpoint_age", "warn",
            f"checkpoint is {checkpoint_age_s:.0f}s old "
            f"(threshold {rules.checkpoint_max_age_s:.0f}s)",
            age_s=checkpoint_age_s,
        ))

    total, spent = state.budget_totals()
    progress = {
        "rounds": state.rounds_total,
        "stages": dict(state.stage_counts),
        "best_latency": (
            state.best_latency if math.isfinite(state.best_latency) else None
        ),
        "rounds_since_improvement": since,
        "measurements": spent,
        "fresh_evaluations": state.fresh_total,
        "budget_total": total,
        "budget_spent": spent,
        "eta_s": state.eta_s(),
        "elapsed_s": state.last_ts,
        "errors": state.errors_total,
        "quarantined": state.quarantined_total,
        "degraded": state.degraded,
        "tasks": len(state.task_measurements),
        "rank_accuracy": accuracy,
        "throughput_fresh_per_s": state.measure_throughput(),
        "rounds_per_min": state.rounds_per_min(),
        # serve-fleet health (all-zero outside `repro serve` runs)
        "workers": {
            "live": state.live_worker_count(),
            "seen": len(state.workers),
            "registrations": state.workers_registered_total,
            "evictions": state.workers_evicted_total,
            "leases_dispatched": state.leases_dispatched,
            "leases_completed": state.leases_completed,
            "lease_retries": state.lease_retries,
            "lease_retry_rate": (
                state.lease_retries / state.leases_dispatched
                if state.leases_dispatched else 0.0
            ),
            "lease_quarantined": state.lease_quarantined,
            "degraded": state.fleet_degraded,
        },
    }
    return {
        "schema": HEALTH_SCHEMA_VERSION,
        "run_id": run_id,
        "generated_at": time.time(),
        "status": "alert" if alerts else "ok",
        "run_status": run_status,
        "alerts": alerts,
        "progress": progress,
    }


def checkpoint_age_s(run_dir: Optional[str]) -> Optional[float]:
    """Age of the run's checkpoint file; ``None`` when absent (a run tuned
    without ``--checkpoint-every`` has nothing to age-check)."""
    if not run_dir:
        return None
    try:
        return max(
            time.time()
            - os.path.getmtime(os.path.join(run_dir, CHECKPOINT_FILE)),
            0.0,
        )
    except OSError:
        return None


def write_health(run_dir: str, health: Dict) -> str:
    """Atomically persist the health payload into the run directory."""
    path = os.path.join(run_dir, HEALTH_FILE)
    _write_json(path, health)
    return path


# ---------------------------------------------------------------------------
# In-process watchdog (producer side)
# ---------------------------------------------------------------------------

class Watchdog:
    """Trace listener that keeps ``health.json`` current while a run tunes.

    Attach with :meth:`attach`; every ``round``/``budget_grant`` record
    re-evaluates the rules, rewrites ``health.json`` (atomic), and -- only
    when the set of active alert rules changes -- emits a ``health`` event
    into the stream, so the trace itself records when the run went
    unhealthy and when it recovered.  :meth:`finalize` writes the closing
    payload with the run's terminal status.
    """

    #: record names that trigger a re-evaluation (errors/quarantines feed
    #: state on every record; rules re-run at round granularity plus on the
    #: first sign of measurement trouble)
    EVAL_EVENTS = ("round", "budget_grant", "measure_error",
                   "measure_quarantined", "network_result",
                   # fleet transitions re-evaluate immediately so
                   # health.json reflects evictions/degradation live
                   "worker_registered", "worker_evicted", "lease_retry",
                   "fleet_degraded", "fleet_restored")

    def __init__(self, trace, run_dir: Optional[str] = None,
                 rules: Optional[WatchRules] = None,
                 run_id: Optional[str] = None):
        self.trace = trace
        self.run_dir = run_dir
        self.rules = rules or WatchRules()
        self.run_id = run_id or (
            os.path.basename(run_dir.rstrip(os.sep)) if run_dir else None
        )
        self.state = WatchState()
        self.health: Dict = {}
        self._active: Tuple[str, ...] = ()

    def attach(self) -> "Watchdog":
        self.trace.add_listener(self._on_record)
        return self

    def _on_record(self, record: Dict) -> None:
        self.state.feed(record)
        if record.get("kind") == "event" and \
                record.get("name") in self.EVAL_EVENTS:
            self.check()

    def check(self, run_status: str = STATUS_RUNNING) -> Dict:
        """Re-run the rules; persist + emit on state change."""
        self.health = evaluate(
            self.state, self.rules, run_status=run_status,
            run_id=self.run_id,
            checkpoint_age_s=checkpoint_age_s(self.run_dir),
        )
        active = tuple(sorted(a["rule"] for a in self.health["alerts"]))
        if active != self._active:
            went, cleared = (
                sorted(set(active) - set(self._active)),
                sorted(set(self._active) - set(active)),
            )
            self._active = active
            # listener-emitted records stream but are not re-dispatched,
            # so this cannot recurse into _on_record
            self.trace.event(
                "health", status=self.health["status"],
                alerts=list(active), raised=went, cleared=cleared,
                messages=[a["message"] for a in self.health["alerts"]],
            )
            if went:
                log.warning("watchdog: alert(s) raised: %s", ", ".join(went))
            if cleared and not went:
                log.info("watchdog: alert(s) cleared: %s", ", ".join(cleared))
        if self.run_dir:
            try:
                write_health(self.run_dir, self.health)
            except OSError as exc:  # health is advisory; never kill the run
                log.warning("watchdog: cannot write health.json: %s", exc)
        return self.health

    def finalize(self, run_status: str) -> Dict:
        """Closing evaluation with the run's terminal status (liveness
        rules -- stall, checkpoint age -- no longer apply)."""
        return self.check(run_status=run_status)


# ---------------------------------------------------------------------------
# External tail (consumer side)
# ---------------------------------------------------------------------------

class TraceTail:
    """Incremental reader of a (possibly live) ``trace.jsonl``.

    ``poll()`` returns the records appended since the last poll.  A
    partial last line (the writer is mid-append, or the run was killed
    mid-write) is buffered, not counted corrupt, and completed on the next
    poll.  ``Trace.save``'s end-save atomically *replaces* the file; the
    tail detects the inode swap (or a shrink) and signals a restart so the
    consumer can rebuild its state from the canonical rewrite.
    """

    def __init__(self, path: str):
        self.path = path
        self.stats = TraceReadStats()
        self._offset = 0
        self._carry = ""
        self._inode: Optional[int] = None

    def poll(self) -> Tuple[bool, List[Dict]]:
        """-> ``(restarted, records)``; ``restarted`` means the file was
        swapped/truncated and the returned records start from the top."""
        try:
            st = os.stat(self.path)
        except OSError:
            return False, []
        restarted = False
        if (self._inode is not None and st.st_ino != self._inode) or \
                st.st_size < self._offset:
            restarted = True
            self._offset = 0
            self._carry = ""
            self.stats = TraceReadStats()
        self._inode = st.st_ino
        if st.st_size <= self._offset:
            return restarted, []
        records: List[Dict] = []
        try:
            with open(self.path) as f:
                f.seek(self._offset)
                chunk = f.read()
                self._offset = f.tell()
        except OSError:
            return restarted, []
        data = self._carry + chunk
        lines = data.split("\n")
        self._carry = lines.pop()  # "" after a complete line, else partial
        for line in lines:
            d = parse_trace_line(line, self.stats)
            if d is not None:
                records.append(d)
        return restarted, records


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None or not math.isfinite(seconds):
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_watch_frame(state: WatchState, health: Dict,
                       title: str = "run") -> str:
    """One terminal frame of the live view (plain text, no escapes)."""
    from .render import _spark

    p = health.get("progress", {})
    run_status = health.get("run_status", "?")
    lines = [
        f"watch {title}  status={run_status}"
        f"  elapsed {_fmt_s(p.get('elapsed_s'))}"
        + (f"  eta ~{_fmt_s(p['eta_s'])}" if p.get("eta_s") else "")
    ]
    stages = ", ".join(
        f"{v} {k}" for k, v in sorted(state.stage_counts.items())
    ) or "none yet"
    best = p.get("best_latency")
    best_txt = f"{best * 1e6:.2f} us" if best is not None else "n/a"
    total, spent = p.get("budget_total"), p.get("budget_spent")
    budget_txt = (
        f"{spent}/{total}" if total is not None else str(spent or 0)
    )
    lines.append(
        f"  rounds {state.rounds_total} ({stages})  best {best_txt}"
        f"  measurements {budget_txt}"
    )
    if state.curve:
        lines.append(f"  best-so-far  {_spark(state.curve)}")
    tput = p.get("throughput_fresh_per_s")
    rpm = p.get("rounds_per_min")
    lines.append(
        "  throughput   "
        + (f"{tput:.1f} fresh/s" if tput else "n/a")
        + (f"   {rpm:.1f} rounds/min" if rpm else "")
        + (f"   {state.fresh_inflight} in flight"
           if state.fresh_inflight else "")
    )
    kinds = ", ".join(
        f"{k}={v}" for k, v in sorted(state.error_kinds.items())
    )
    lines.append(
        f"  errors {state.errors_total}" + (f" ({kinds})" if kinds else "")
        + f"   quarantined {state.quarantined_total}"
        + f"   degraded {'yes' if state.degraded else 'no'}"
    )
    if state.workers_registered_total:
        lines.append(
            f"  fleet        {state.live_worker_count()} live / "
            f"{len(state.workers)} seen, "
            f"{state.workers_evicted_total} evicted   "
            f"leases {state.leases_completed}/{state.leases_dispatched}"
            + (f" ({state.lease_retries} retried)"
               if state.lease_retries else "")
            + ("   DEGRADED" if state.fleet_degraded else "")
        )
    acc = p.get("rank_accuracy")
    if acc is not None:
        gen = state.cm_generation
        lines.append(
            f"  cost model   rank-acc {acc:.2f} (recent"
            + (f", gen {gen}" if gen is not None else "") + ")"
        )
    if state.tasks_started or len(state.task_measurements) > 1:
        done = len(state.task_results)
        lines.append(
            f"  tasks        {len(state.task_measurements)} active, "
            f"{done} finished"
        )
    alerts = health.get("alerts") or []
    if alerts:
        for a in alerts:
            lines.append(f"  ALERT [{a['rule']}] {a['message']}")
    else:
        lines.append("  alerts: none")
    return "\n".join(lines)


def _run_status(run_dir: str) -> str:
    """The manifest's current lifecycle state (re-read every poll -- the
    writer flips it on exit)."""
    import json

    try:
        with open(os.path.join(run_dir, MANIFEST_FILE)) as f:
            return json.load(f).get("status", STATUS_RUNNING)
    except (OSError, ValueError):
        return STATUS_RUNNING


def watch_run(
    run_dir: str,
    *,
    rules: Optional[WatchRules] = None,
    fail_on: Tuple[str, ...] = (),
    interval: float = 1.0,
    once: bool = False,
    max_seconds: Optional[float] = None,
    emit: Optional[Callable[[str], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Tail a run directory until it leaves ``running`` (the ``repro
    watch`` engine).

    Renders a frame through ``emit`` after every poll that changed the
    stream (and always at exit).  Returns the process exit code: ``1``
    when any rule named in ``fail_on`` is active in the *final* health
    evaluation, else ``0``.  ``once`` renders a single frame -- the mode
    for finished runs and scripted checks; ``max_seconds`` bounds a live
    tail (the run keeps going; only the watcher stops).
    """
    rules = rules or WatchRules()
    run_id = os.path.basename(os.path.abspath(run_dir).rstrip(os.sep))
    tail = TraceTail(os.path.join(run_dir, "trace.jsonl"))
    state = WatchState()
    health: Dict = {}
    deadline = (
        time.monotonic() + max_seconds if max_seconds is not None else None
    )
    while True:
        restarted, records = tail.poll()
        if restarted:
            state = WatchState()
        for r in records:
            state.feed(r)
        status = _run_status(run_dir)
        health = evaluate(
            state, rules, run_status=status, run_id=run_id,
            checkpoint_age_s=checkpoint_age_s(run_dir),
        )
        done = once or status != STATUS_RUNNING or (
            deadline is not None and time.monotonic() >= deadline
        )
        if emit and (records or restarted or done):
            emit(render_watch_frame(state, health, title=run_id))
        if done:
            break
        sleep(interval)
    active = {a["rule"] for a in health.get("alerts", [])}
    if active & set(fail_on):
        return 1
    return 0
