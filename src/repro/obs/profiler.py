"""Phase profiler: wall-time and allocation attribution for the tuner.

The span tracer (:mod:`repro.obs.trace`) answers *what happened* -- one
record per span, a full tree.  This module answers *where the time goes*:
the tuning inner loop runs thousands of rounds, and keeping one record per
round would drown both the trace and the analysis.  A :class:`Profiler`
instead folds every timed region into one aggregated :class:`PhaseStat`
per phase name -- count, total time, **self time** (total minus the time
spent in nested phases) and an item counter (candidates, stages, points)
that turns into a candidates-per-second throughput figure.  That is the
report ROADMAP item 3 ("make the tuner itself fast") aims with, and the
data behind ``BENCH_tuner_throughput.json``.

Phase names are dotted and stable across PRs (see the glossary in
DESIGN.md): ``tune`` is the root; ``space.sample``, ``space.build``,
``lower``, ``cost_model.features``, ``cost_model.predict``,
``cost_model.train``, ``ppo.walk``, ``ppo.update``, ``measure``,
``measure.eval``, ``measure.cache_sim``, ``checkpoint`` cover the inner
loop.  Per-retrain-generation inference cost lands in the auxiliary table
(``aux``) so the per-phase totals stay clean.

Design rules (mirroring the tracer's):

- **Zero observable cost when disabled.**  ``NULL_PROFILER`` (and any
  ``Profiler(enabled=False)``) hands out a shared no-op context manager,
  keeps no stack, allocates nothing per call and never touches the RNG --
  tuned results are bit-identical with profiling on or off, and the
  per-call overhead is one attribute lookup plus a ``with`` block
  (asserted against a <2% budget by the tests).
- **Self time partitions wall time.**  Every phase exit charges its
  duration to the parent's child-time accumulator, so summing ``self_s``
  over all phases (plus the root's own self time) reconstructs the root's
  total exactly -- the hot-path table's percentages are of the same pie.
- **Opt-in deep capture.**  ``cprofile_start``/``cprofile_stop`` wrap
  :mod:`cProfile` and export *folded stacks* (``caller;callee value``
  lines) for external flamegraph tools; ``snapshot_memory`` records
  :mod:`tracemalloc` deltas at round boundaries.  Both are off unless
  explicitly started -- they are diagnosis tools, not always-on telemetry.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

#: bump when the profile.json layout changes incompatibly
PROFILE_SCHEMA_VERSION = 1


class PhaseStat:
    """Aggregated timings for one phase name."""

    __slots__ = ("count", "total_s", "child_s", "items")

    def __init__(self):
        self.count = 0
        self.total_s = 0.0
        self.child_s = 0.0
        self.items = 0

    @property
    def self_s(self) -> float:
        """Time spent in this phase minus time in nested phases."""
        return max(self.total_s - self.child_s, 0.0)

    @property
    def items_per_s(self) -> Optional[float]:
        """Throughput over *total* phase time (None without items)."""
        if not self.items or self.total_s <= 0:
            return None
        return self.items / self.total_s

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "items": self.items,
            "items_per_s": self.items_per_s,
        }

    def __repr__(self) -> str:
        return (
            f"PhaseStat(count={self.count}, total={self.total_s:.6f}s, "
            f"self={self.self_s:.6f}s, items={self.items})"
        )


class _NullPhase:
    """Shared no-op context manager: the entire disabled-profiler path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def add_items(self, n: int) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _Phase:
    """Live frame of one ``with profiler.phase(...)`` block."""

    __slots__ = ("_profiler", "name", "items", "t0", "child_s")

    def __init__(self, profiler: "Profiler", name: str, items: int):
        self._profiler = profiler
        self.name = name
        self.items = items
        self.t0 = 0.0
        self.child_s = 0.0

    def add_items(self, n: int) -> None:
        """Count work done inside the phase when the amount is only known
        mid-block (e.g. fresh evaluations within a measured batch)."""
        self.items += n

    def __enter__(self) -> "_Phase":
        self.t0 = time.perf_counter()
        self._profiler._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dt = time.perf_counter() - self.t0
        prof = self._profiler
        stack = prof._stack
        # tolerate mispaired exits the same way the tracer does: pop back
        # to (and including) this frame
        while stack:
            top = stack.pop()
            if top is self:
                break
        if stack:
            stack[-1].child_s += dt
        else:
            prof._root_s += dt
        stat = prof.phases.get(self.name)
        if stat is None:
            stat = prof.phases[self.name] = PhaseStat()
        stat.count += 1
        stat.total_s += dt
        stat.child_s += self.child_s
        stat.items += self.items


class Profiler:
    """Aggregating phase profiler for one run.

    ``Profiler(enabled=False)`` is the null profiler: :meth:`phase` returns
    a shared no-op context manager and nothing is recorded.  Instrumented
    code holds a profiler reference unconditionally (the
    :data:`NULL_PROFILER` module default) so call sites never branch.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.phases: Dict[str, PhaseStat] = {}
        #: auxiliary keyed accumulators (per-generation cost-model stats);
        #: not part of the self-time pie
        self.aux: Dict[str, Dict] = {}
        self.memory_snapshots: List[Dict] = []
        self._stack: List[_Phase] = []
        self._root_s = 0.0
        self._cprofile = None
        self._tracemalloc_started = False

    # -- phase timing -------------------------------------------------------
    def phase(self, name: str, items: int = 0):
        """Open an aggregated timed region::

            with profiler.phase("cost_model.predict", items=len(stages)):
                ...
        """
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name, items)

    def tally(self, name: str, seconds: float, items: int = 0) -> None:
        """Fold an externally measured duration into the auxiliary table.

        For breakdowns that must not double-count against the phase pie --
        e.g. ``cost_model.predict`` is one phase, but its per-retrain-
        generation split rides here as ``cost_model.predict.gen<N>``.
        """
        if not self.enabled:
            return
        row = self.aux.get(name)
        if row is None:
            row = self.aux[name] = {"count": 0, "total_s": 0.0, "items": 0}
        row["count"] += 1
        row["total_s"] += seconds
        row["items"] += items

    @property
    def wall_s(self) -> float:
        """Total profiled wall time (sum of root-level phase durations)."""
        if self._root_s > 0:
            return self._root_s
        # nothing has closed at root level yet: the pie so far is the sum
        # of all self times
        return sum(s.self_s for s in self.phases.values())

    # -- opt-in cProfile capture -------------------------------------------
    def cprofile_start(self) -> None:
        """Begin a :mod:`cProfile` capture (heavy; opt-in only)."""
        if not self.enabled or self._cprofile is not None:
            return
        import cProfile

        self._cprofile = cProfile.Profile()
        self._cprofile.enable()

    def cprofile_stop(self) -> None:
        if self._cprofile is not None:
            self._cprofile.disable()

    def cprofile_folded(self, limit: int = 2000) -> List[str]:
        """The capture as folded-stack lines (``caller;callee value``).

        cProfile records caller/callee *pairs*, not full stacks, so the
        export is two frames deep: each callee's cumulative time is split
        across its callers proportionally.  That is exactly the input
        flamegraph tools accept, and enough to see which call edges are
        hot.  Values are microseconds (integers, as the tools expect).
        """
        if self._cprofile is None:
            return []
        import pstats

        stats = pstats.Stats(self._cprofile)
        lines: List[str] = []

        def _label(func) -> str:
            filename, lineno, name = func
            if filename.startswith("<"):
                return name
            import os

            return f"{os.path.basename(filename)}:{lineno}:{name}"

        for func, (cc, nc, tt, ct, callers) in stats.stats.items():
            label = _label(func)
            if not callers:
                if tt > 0:
                    lines.append(f"{label} {int(tt * 1e6)}")
                continue
            caller_ct = sum(c[3] for c in callers.values()) or 1.0
            for caller, (ccc, cnc, ctt, cct) in callers.items():
                share = tt * (cct / caller_ct)
                if share <= 0:
                    continue
                lines.append(f"{_label(caller)};{label} {int(share * 1e6)}")
        lines.sort(key=lambda ln: -int(ln.rsplit(" ", 1)[1]))
        return lines[:limit]

    def save_folded(self, path: str) -> int:
        """Write the folded stacks; returns the number of lines."""
        lines = self.cprofile_folded()
        with open(path, "w") as f:
            for line in lines:
                f.write(line + "\n")
        return len(lines)

    # -- opt-in allocation snapshots ---------------------------------------
    def memory_start(self) -> None:
        """Begin :mod:`tracemalloc` tracking (heavy; opt-in only)."""
        if not self.enabled or self._tracemalloc_started:
            return
        import tracemalloc

        tracemalloc.start()
        self._tracemalloc_started = True

    def snapshot_memory(self, label: str, top: int = 8) -> Optional[Dict]:
        """Record current/peak traced allocation plus the top allocating
        sites; call at round boundaries (a no-op unless started)."""
        if not self._tracemalloc_started:
            return None
        import tracemalloc

        current, peak = tracemalloc.get_traced_memory()
        snap = tracemalloc.take_snapshot()
        rows = []
        for stat in snap.statistics("lineno")[:top]:
            frame = stat.traceback[0]
            import os

            rows.append({
                "site": f"{os.path.basename(frame.filename)}:{frame.lineno}",
                "kb": round(stat.size / 1024, 1),
                "blocks": stat.count,
            })
        entry = {
            "label": label,
            "current_kb": round(current / 1024, 1),
            "peak_kb": round(peak / 1024, 1),
            "top": rows,
        }
        self.memory_snapshots.append(entry)
        return entry

    def memory_stop(self) -> None:
        if self._tracemalloc_started:
            import tracemalloc

            tracemalloc.stop()
            self._tracemalloc_started = False

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict:
        """The ``profile.json`` payload (see :data:`PROFILE_SCHEMA_VERSION`)."""
        aux = {
            name: {
                **row,
                "items_per_s": (
                    row["items"] / row["total_s"]
                    if row["items"] and row["total_s"] > 0 else None
                ),
            }
            for name, row in self.aux.items()
        }
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "enabled": self.enabled,
            "wall_s": self.wall_s,
            "phases": {
                name: stat.to_dict() for name, stat in self.phases.items()
            },
            "aux": aux,
            "memory": list(self.memory_snapshots),
        }


#: module-level null profiler for instrumentation sites with no
#: caller-provided profiler; records nothing, shares no state
NULL_PROFILER = Profiler(enabled=False)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:9.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:9.3f} ms"
    return f"{seconds * 1e6:9.1f} us"


def profile_report(source, sort: str = "self") -> str:
    """Hot-path table from a :class:`Profiler` or a ``profile.json`` dict.

    One row per phase, sorted by self time (the attribution that tells you
    what to optimize), with percent-of-wall columns and per-phase
    throughput.  The ``(untracked)`` row is the root's own self time --
    control flow between instrumented phases.
    """
    data = source.to_dict() if isinstance(source, Profiler) else dict(source)
    phases = data.get("phases") or {}
    wall = data.get("wall_s") or 0.0
    if not phases:
        return "phase profile: (no phases recorded)"
    rows = []
    for name, st in phases.items():
        if name == "tune":
            continue  # the root shows up as (untracked) self time
        rows.append((name, st))
    root = phases.get("tune")
    keyfns = {
        "self": lambda r: -(r[1].get("self_s") or 0.0),
        "total": lambda r: -(r[1].get("total_s") or 0.0),
        "name": lambda r: r[0],
    }
    rows.sort(key=keyfns.get(sort, keyfns["self"]))
    lines = [
        f"phase profile (wall {wall:.3f} s):",
        f"  {'phase':26s} {'count':>7s} {'total':>12s} {'self':>12s} "
        f"{'self%':>6s} {'items':>8s} {'items/s':>10s}",
    ]
    for name, st in rows:
        self_s = st.get("self_s") or 0.0
        pct = (self_s / wall * 100.0) if wall > 0 else 0.0
        rate = st.get("items_per_s")
        rate_s = f"{rate:10.1f}" if rate is not None else f"{'-':>10s}"
        items = st.get("items") or 0
        items_s = f"{items:8d}" if items else f"{'-':>8s}"
        lines.append(
            f"  {name:26s} {st.get('count', 0):7d} "
            f"{_fmt_s(st.get('total_s') or 0.0)} {_fmt_s(self_s)} "
            f"{pct:5.1f}% {items_s} {rate_s}"
        )
    if root is not None:
        self_s = root.get("self_s") or 0.0
        pct = (self_s / wall * 100.0) if wall > 0 else 0.0
        lines.append(
            f"  {'(untracked)':26s} {root.get('count', 0):7d} "
            f"{'':>12s} {_fmt_s(self_s)} {pct:5.1f}% {'-':>8s} {'-':>10s}"
        )
    aux = data.get("aux") or {}
    if aux:
        lines.append("")
        lines.append("  per-generation cost-model inference:")
        for name in sorted(aux):
            row = aux[name]
            rate = row.get("items_per_s")
            rate_s = f"{rate:.0f}/s" if rate is not None else "-"
            lines.append(
                f"    {name:30s} n={row.get('count', 0):<6d} "
                f"{_fmt_s(row.get('total_s') or 0.0)}  "
                f"items={row.get('items', 0)} ({rate_s})"
            )
    mem = data.get("memory") or []
    if mem:
        lines.append("")
        lines.append("  allocation snapshots:")
        for snap in mem[-6:]:
            lines.append(
                f"    {snap.get('label', '?'):24s} "
                f"current {snap.get('current_kb', 0):>9.1f} KB  "
                f"peak {snap.get('peak_kb', 0):>9.1f} KB"
            )
    return "\n".join(lines)


def attribution_fraction(source) -> float:
    """Fraction of the root ``tune`` phase's wall time attributed to
    non-root phase self times (the acceptance criterion: >= 0.9)."""
    data = source.to_dict() if isinstance(source, Profiler) else dict(source)
    phases = data.get("phases") or {}
    root = phases.get("tune")
    if not root or not root.get("total_s"):
        return 0.0
    covered = sum(
        (st.get("self_s") or 0.0)
        for name, st in phases.items() if name != "tune"
    )
    return covered / root["total_s"]
