"""Span-based tracer for the compile/tune pipeline.

A :class:`Trace` records a tree of timed :class:`Span`\\ s (``compile`` >
``tune_task`` > ``joint_stage`` > ``measure_batch`` ...) plus point events
(tuning rounds, conversions inserted), with structured attributes on every
node.  Everything serializes to JSONL so a run can be shipped and rendered
later (``python -m repro trace run.jsonl``).

Design rules:

- **Zero observable cost when disabled.**  A disabled trace still hands out
  ``Span`` objects (callers read durations off them -- the measurement
  engine's wall-time accounting comes from ``measure_batch`` spans), but it
  records no events, keeps no tree, and never touches the RNG, so tuned
  results are bit-identical with tracing on or off.
- **Monotonic timestamps.**  All times are ``time.perf_counter`` offsets
  from the trace origin; children always nest within their parents.
- **One file, append-friendly.**  The JSONL stream is a ``meta`` header,
  one ``span`` record per finished span, ``event`` records, and a final
  ``metrics`` snapshot of the trace's registry.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from .log import log
from .metrics import MetricsRegistry

#: bump when the JSONL schema changes incompatibly
TRACE_SCHEMA_VERSION = 1

#: record kinds this reader understands; anything else is assumed to come
#: from a newer writer and is skipped (forward compatibility)
KNOWN_RECORD_KINDS = ("meta", "span", "event", "metrics")


def _json_safe(v):
    """Best-effort attribute coercion: JSON scalars pass through, container
    types recurse, everything else becomes ``repr``."""
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    if isinstance(v, (list, tuple)):
        return [_json_safe(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _json_safe(x) for k, x in v.items()}
    return repr(v)


class Span:
    """One timed region; build via :meth:`Trace.span`."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t_start", "t_end",
                 "children")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 t_start: float):
        self.name = name
        self.attrs: Dict = {}
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.children: List["Span"] = []

    def set(self, **attrs) -> "Span":
        """Attach structured attributes (kept on start, merged on end)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_s(self) -> float:
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def to_dict(self) -> Dict:
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": _json_safe(self.attrs),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms)"


class _SpanContext:
    """Context manager tying a span's lifetime to a ``with`` block."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", span: Span):
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._trace._finish(self._span)


class Trace:
    """A run's observability context: span tree + events + metrics.

    ``Trace(enabled=False)`` is the null trace: spans still time themselves
    (their durations feed the metrics registry) but nothing is recorded.
    """

    def __init__(self, enabled: bool = True, name: str = "run",
                 metrics: Optional[MetricsRegistry] = None,
                 meta: Optional[Dict] = None):
        self.enabled = enabled
        self.name = name
        #: extra attribution fields merged into the JSONL ``meta`` header
        #: (``seed``, ``git_sha``, ``repro_version`` ... -- saved traces
        #: should say where they came from)
        self.meta = dict(meta) if meta else {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events: List[Dict] = []  # finished spans + point events, in order
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._t0 = time.perf_counter()

    # -- recording -----------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested timed region::

            with trace.span("measure_batch", task=name) as sp:
                ...
                sp.set(fresh=3)
        """
        parent = self._stack[-1] if self._stack else None
        sp = Span(name, self._next_id, parent.span_id if parent else None,
                  self._now())
        self._next_id += 1
        if attrs:
            sp.attrs.update(attrs)
        if self.enabled:
            if parent is not None:
                parent.children.append(sp)
            else:
                self.roots.append(sp)
        self._stack.append(sp)
        return _SpanContext(self, sp)

    def _finish(self, span: Span) -> None:
        span.t_end = self._now()
        # tolerate mispaired exits: pop back to (and including) this span
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self.enabled:
            self.events.append(span.to_dict())

    def event(self, name: str, **attrs) -> None:
        """Record a point event under the current span."""
        if not self.enabled:
            return
        parent = self._stack[-1] if self._stack else None
        self.events.append({
            "kind": "event",
            "name": name,
            "ts": self._now(),
            "span": parent.span_id if parent else None,
            "attrs": _json_safe(attrs),
        })

    # -- serialization -------------------------------------------------------
    def lines(self) -> List[str]:
        """The trace as JSONL lines (header, events, metrics snapshot)."""
        header = {
            "kind": "meta",
            "version": TRACE_SCHEMA_VERSION,
            "name": self.name,
        }
        for k, v in self.meta.items():
            header.setdefault(k, _json_safe(v))
        out = [json.dumps(header)]
        out.extend(json.dumps(e) for e in self.events)
        out.append(json.dumps({
            "kind": "metrics",
            "snapshot": self.metrics.snapshot(),
        }))
        return out

    def save(self, path: str) -> None:
        """Atomic write-then-rename: a run killed mid-save leaves either the
        previous complete trace or none, never a truncated JSONL file."""
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            for line in self.lines():
                f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)


#: module-level null trace for instrumentation sites with no caller-provided
#: trace; records nothing and shares no state with real traces (its registry
#: is still real, but per-import and never snapshotted)
NULL_TRACE = Trace(enabled=False, name="null")


# ---------------------------------------------------------------------------
# Loading / reconstruction
# ---------------------------------------------------------------------------

class TraceData:
    """A parsed JSONL trace: span tree, point events, metrics snapshot."""

    def __init__(self, meta: Dict, spans: List[Dict], events: List[Dict],
                 metrics: Dict):
        self.meta = meta
        self.spans = spans  # flat span dicts, end order
        self.events = events  # point events, emit order
        self.metrics = metrics
        self.roots = build_span_tree(spans)

    @property
    def name(self) -> str:
        return self.meta.get("name", "run")


class _SpanNode:
    """Reconstructed span with children (mirror of :class:`Span`)."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t_start", "t_end",
                 "children")

    def __init__(self, d: Dict):
        self.name = d.get("name", "?")
        self.attrs = d.get("attrs") or {}
        self.span_id = d.get("id")
        self.parent_id = d.get("parent")
        self.t_start = d.get("t_start", 0.0)
        self.t_end = d.get("t_end") or d.get("t_start", 0.0)
        self.children: List["_SpanNode"] = []

    @property
    def duration_s(self) -> float:
        return (self.t_end or 0.0) - (self.t_start or 0.0)


def build_span_tree(spans: List[Dict]) -> List[_SpanNode]:
    """Rebuild the span forest from flat span records."""
    nodes = {d["id"]: _SpanNode(d) for d in spans if d.get("id") is not None}
    roots: List[_SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id)
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.t_start)
    roots.sort(key=lambda n: n.t_start)
    return roots


def load_trace(path: str) -> TraceData:
    """Parse a ``Trace.save`` JSONL file.

    Forward compatible by design: record kinds this reader does not know
    (e.g. written by a newer repro) are skipped with one summary warning,
    and corrupt/truncated lines (a killed run's partial last write) are
    dropped silently -- the renderer never crashes on a foreign trace.
    """
    meta: Dict = {}
    spans: List[Dict] = []
    events: List[Dict] = []
    metrics: Dict = {}
    unknown: Dict[str, int] = {}
    corrupt = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except ValueError:
                corrupt += 1
                continue
            kind = d.get("kind") if isinstance(d, dict) else None
            if kind == "meta":
                meta = d
            elif kind == "span":
                spans.append(d)
            elif kind == "event":
                events.append(d)
            elif kind == "metrics":
                metrics = d.get("snapshot", {})
            else:
                unknown[str(kind)] = unknown.get(str(kind), 0) + 1
    if unknown:
        log.warning(
            "%s: skipped %d record(s) of unknown kind %s (newer trace "
            "schema? this reader knows %s)",
            path, sum(unknown.values()), sorted(unknown),
            list(KNOWN_RECORD_KINDS),
        )
    if corrupt:
        log.debug("%s: dropped %d corrupt/truncated line(s)", path, corrupt)
    return TraceData(meta, spans, events, metrics)
