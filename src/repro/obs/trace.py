"""Span-based tracer for the compile/tune pipeline.

A :class:`Trace` records a tree of timed :class:`Span`\\ s (``compile`` >
``tune_task`` > ``joint_stage`` > ``measure_batch`` ...) plus point events
(tuning rounds, conversions inserted), with structured attributes on every
node.  Everything serializes to JSONL so a run can be shipped and rendered
later (``python -m repro trace run.jsonl``).

Design rules:

- **Zero observable cost when disabled.**  A disabled trace still hands out
  ``Span`` objects (callers read durations off them -- the measurement
  engine's wall-time accounting comes from ``measure_batch`` spans), but it
  records no events, keeps no tree, and never touches the RNG, so tuned
  results are bit-identical with tracing on or off.
- **Monotonic timestamps.**  All times are ``time.perf_counter`` offsets
  from the trace origin; children always nest within their parents.
- **One file, append-friendly.**  The JSONL stream is a ``meta`` header,
  one ``span`` record per finished span, ``event`` records, and a final
  ``metrics`` snapshot of the trace's registry.
- **Live streaming is the same file.**  ``Trace(stream_to=path)`` appends
  every finished record to ``path`` as it happens (one atomic line write +
  flush per record, with a ``metrics`` snapshot re-emitted every
  ``stream_metrics_every`` records so a tailing consumer sees counters
  move).  A completed run's final :meth:`Trace.save` atomically rewrites
  the same file into the canonical end-save form, so streaming-vs-end-save
  traces are event-identical; a killed run leaves the streamed prefix --
  truncated at worst mid-line -- which the reader tolerates.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from .log import log
from .metrics import MetricsRegistry

#: bump when the JSONL schema changes incompatibly
TRACE_SCHEMA_VERSION = 1

#: record kinds this reader understands; anything else is assumed to come
#: from a newer writer and is skipped (forward compatibility)
KNOWN_RECORD_KINDS = ("meta", "span", "event", "metrics")


def _json_safe(v):
    """Best-effort attribute coercion: JSON scalars pass through, container
    types recurse, everything else becomes ``repr``."""
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    if isinstance(v, (list, tuple)):
        return [_json_safe(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _json_safe(x) for k, x in v.items()}
    return repr(v)


class Span:
    """One timed region; build via :meth:`Trace.span`."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t_start", "t_end",
                 "children")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 t_start: float):
        self.name = name
        self.attrs: Dict = {}
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.children: List["Span"] = []

    def set(self, **attrs) -> "Span":
        """Attach structured attributes (kept on start, merged on end)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_s(self) -> float:
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def to_dict(self) -> Dict:
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": _json_safe(self.attrs),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms)"


class _SpanContext:
    """Context manager tying a span's lifetime to a ``with`` block."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", span: Span):
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._trace._finish(self._span)


class Trace:
    """A run's observability context: span tree + events + metrics.

    ``Trace(enabled=False)`` is the null trace: spans still time themselves
    (their durations feed the metrics registry) but nothing is recorded.
    """

    def __init__(self, enabled: bool = True, name: str = "run",
                 metrics: Optional[MetricsRegistry] = None,
                 meta: Optional[Dict] = None,
                 stream_to: Optional[str] = None,
                 stream_append: bool = False,
                 stream_metrics_every: int = 32):
        self.enabled = enabled
        self.name = name
        #: extra attribution fields merged into the JSONL ``meta`` header
        #: (``seed``, ``git_sha``, ``repro_version`` ... -- saved traces
        #: should say where they came from)
        self.meta = dict(meta) if meta else {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events: List[Dict] = []  # finished spans + point events, in order
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._t0 = time.perf_counter()
        # -- live streaming / listeners (no-ops unless explicitly enabled)
        self.stream_metrics_every = max(int(stream_metrics_every), 1)
        self._stream = None
        self._stream_path: Optional[str] = None
        self._since_snapshot = 0
        self._listeners: List = []
        self._dispatching = False
        if stream_to is not None and self.enabled:
            self.stream_start(stream_to, append=stream_append)

    # -- live streaming ------------------------------------------------------
    @property
    def stream_path(self) -> Optional[str]:
        """The live JSONL file this trace appends to (``None`` when not
        streaming)."""
        return self._stream_path

    def stream_start(self, path: str, append: bool = False) -> None:
        """Start appending every finished record to ``path`` as it happens.

        ``append=True`` continues an existing stream (a resumed run keeps
        writing to the same ``trace.jsonl``); a fresh ``meta`` header is
        emitted either way -- the reader keeps the last one, so a resumed
        stream reads with the resuming session's attribution.
        """
        if not self.enabled:
            return
        self.stream_close()
        heal = False
        if append:
            # a run killed mid-append leaves a torn final line with no
            # newline; terminate it so the resumed records stay parseable
            try:
                with open(path, "rb") as f:
                    f.seek(-1, os.SEEK_END)
                    heal = f.read(1) != b"\n"
            except (OSError, ValueError):
                heal = False
        self._stream = open(path, "a" if append else "w")
        self._stream_path = path
        if heal:
            try:
                self._stream.write("\n")
            except OSError:
                pass
        header = self._header()
        if append:
            header["resumed"] = True
        self._write_line(header)

    def stream_close(self, final_metrics: bool = False) -> None:
        """Stop streaming; optionally append a closing metrics snapshot (for
        consumers of a stream that will never see an end-save rewrite)."""
        if self._stream is None:
            return
        if final_metrics:
            self._write_line(
                {"kind": "metrics", "snapshot": self.metrics.snapshot()}
            )
        try:
            self._stream.flush()
            os.fsync(self._stream.fileno())
        except (OSError, ValueError):
            pass
        try:
            self._stream.close()
        except OSError:
            pass
        self._stream = None
        self._stream_path = None

    def add_listener(self, fn) -> None:
        """Register ``fn(record_dict)`` to observe every finished record
        (spans at end, events immediately).  Records a listener emits while
        handling a record are streamed but not re-dispatched, so a watchdog
        can write ``health`` events into the trace it is watching."""
        self._listeners.append(fn)

    def _write_line(self, record: Dict) -> None:
        if self._stream is None:
            return
        try:
            # one write + flush per record: the OS appends a whole line
            # atomically for a single writer, so a tailing reader sees either
            # the full line or (after a crash) a truncated final line
            self._stream.write(json.dumps(record) + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            log.warning("trace stream %s failed; disabling streaming",
                        self._stream_path)
            self._stream = None
            self._stream_path = None

    def _emit(self, record: Dict) -> None:
        """Deliver a freshly finished record to the stream and listeners."""
        if self._stream is not None:
            self._write_line(record)
            self._since_snapshot += 1
            if self._since_snapshot >= self.stream_metrics_every:
                self._since_snapshot = 0
                self._write_line(
                    {"kind": "metrics", "snapshot": self.metrics.snapshot()}
                )
        if self._listeners and not self._dispatching:
            self._dispatching = True
            try:
                for fn in self._listeners:
                    fn(record)
            finally:
                self._dispatching = False

    # -- recording -----------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested timed region::

            with trace.span("measure_batch", task=name) as sp:
                ...
                sp.set(fresh=3)
        """
        parent = self._stack[-1] if self._stack else None
        sp = Span(name, self._next_id, parent.span_id if parent else None,
                  self._now())
        self._next_id += 1
        if attrs:
            sp.attrs.update(attrs)
        if self.enabled:
            if parent is not None:
                parent.children.append(sp)
            else:
                self.roots.append(sp)
        self._stack.append(sp)
        return _SpanContext(self, sp)

    def _finish(self, span: Span) -> None:
        span.t_end = self._now()
        # tolerate mispaired exits: pop back to (and including) this span
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self.enabled:
            record = span.to_dict()
            self.events.append(record)
            self._emit(record)

    def event(self, name: str, **attrs) -> None:
        """Record a point event under the current span."""
        if not self.enabled:
            return
        parent = self._stack[-1] if self._stack else None
        record = {
            "kind": "event",
            "name": name,
            "ts": self._now(),
            "span": parent.span_id if parent else None,
            "attrs": _json_safe(attrs),
        }
        self.events.append(record)
        self._emit(record)

    # -- serialization -------------------------------------------------------
    def _header(self) -> Dict:
        header = {
            "kind": "meta",
            "version": TRACE_SCHEMA_VERSION,
            "name": self.name,
        }
        for k, v in self.meta.items():
            header.setdefault(k, _json_safe(v))
        return header

    def lines(self) -> List[str]:
        """The trace as JSONL lines (header, events, metrics snapshot)."""
        out = [json.dumps(self._header())]
        out.extend(json.dumps(e) for e in self.events)
        out.append(json.dumps({
            "kind": "metrics",
            "snapshot": self.metrics.snapshot(),
        }))
        return out

    def save(self, path: str) -> None:
        """Atomic write-then-rename: a run killed mid-save leaves either the
        previous complete trace or none, never a truncated JSONL file.

        A trace streaming to ``path`` closes its stream first, then rewrites
        the file into the canonical end-save form -- the completed run's
        trace is byte-for-byte the same whether it streamed or not.
        """
        if self._stream is not None and self._stream_path is not None and \
                os.path.abspath(self._stream_path) == os.path.abspath(path):
            self.stream_close()
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            for line in self.lines():
                f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)


#: module-level null trace for instrumentation sites with no caller-provided
#: trace; records nothing and shares no state with real traces (its registry
#: is still real, but per-import and never snapshotted)
NULL_TRACE = Trace(enabled=False, name="null")


# ---------------------------------------------------------------------------
# Loading / reconstruction
# ---------------------------------------------------------------------------

class TraceData:
    """A parsed JSONL trace: span tree, point events, metrics snapshot."""

    def __init__(self, meta: Dict, spans: List[Dict], events: List[Dict],
                 metrics: Dict):
        self.meta = meta
        self.spans = spans  # flat span dicts, end order
        self.events = events  # point events, emit order
        self.metrics = metrics
        self.roots = build_span_tree(spans)

    @property
    def name(self) -> str:
        return self.meta.get("name", "run")


class _SpanNode:
    """Reconstructed span with children (mirror of :class:`Span`)."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "t_start", "t_end",
                 "children")

    def __init__(self, d: Dict):
        self.name = d.get("name", "?")
        self.attrs = d.get("attrs") or {}
        self.span_id = d.get("id")
        self.parent_id = d.get("parent")
        self.t_start = d.get("t_start", 0.0)
        self.t_end = d.get("t_end") or d.get("t_start", 0.0)
        self.children: List["_SpanNode"] = []

    @property
    def duration_s(self) -> float:
        return (self.t_end or 0.0) - (self.t_start or 0.0)


def build_span_tree(spans: List[Dict]) -> List[_SpanNode]:
    """Rebuild the span forest from flat span records."""
    nodes = {d["id"]: _SpanNode(d) for d in spans if d.get("id") is not None}
    roots: List[_SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id)
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.t_start)
    roots.sort(key=lambda n: n.t_start)
    return roots


class TraceReadStats:
    """What a lazy read skipped: corrupt lines and unknown record kinds."""

    __slots__ = ("corrupt", "unknown")

    def __init__(self):
        self.corrupt = 0
        self.unknown: Dict[str, int] = {}


def parse_trace_line(line: str, stats: Optional[TraceReadStats] = None):
    """One JSONL line -> record dict, or ``None`` for blank/corrupt lines
    and unknown record kinds (counted into ``stats`` when given)."""
    line = line.strip()
    if not line:
        return None
    try:
        d = json.loads(line)
    except ValueError:
        if stats is not None:
            stats.corrupt += 1
        return None
    kind = d.get("kind") if isinstance(d, dict) else None
    if kind not in KNOWN_RECORD_KINDS:
        if stats is not None:
            stats.unknown[str(kind)] = stats.unknown.get(str(kind), 0) + 1
        return None
    return d


def iter_trace_records(path: str, stats: Optional[TraceReadStats] = None):
    """Lazily yield the records of a JSONL trace, one line at a time.

    Never loads the file into memory -- a multi-GB streamed trace tails at
    a constant footprint.  Corrupt/truncated lines (a killed run's partial
    last write) and unknown record kinds are skipped, counted into
    ``stats`` when the caller passes a :class:`TraceReadStats`.
    """
    with open(path) as f:
        for line in f:
            d = parse_trace_line(line, stats)
            if d is not None:
                yield d


def load_trace(path: str) -> TraceData:
    """Parse a ``Trace.save`` (or live-streamed) JSONL file.

    Forward compatible by design: record kinds this reader does not know
    (e.g. written by a newer repro) are skipped with one summary warning,
    and corrupt/truncated lines (a killed run's partial last write) are
    dropped silently -- the renderer never crashes on a foreign trace.
    Repeated ``meta``/``metrics`` records (a streamed run re-emits both)
    resolve to the last one seen.
    """
    meta: Dict = {}
    spans: List[Dict] = []
    events: List[Dict] = []
    metrics: Dict = {}
    stats = TraceReadStats()
    for d in iter_trace_records(path, stats):
        kind = d.get("kind")
        if kind == "meta":
            meta = d
        elif kind == "span":
            spans.append(d)
        elif kind == "event":
            events.append(d)
        elif kind == "metrics":
            metrics = d.get("snapshot", {})
    if stats.unknown:
        log.warning(
            "%s: skipped %d record(s) of unknown kind %s (newer trace "
            "schema? this reader knows %s)",
            path, sum(stats.unknown.values()), sorted(stats.unknown),
            list(KNOWN_RECORD_KINDS),
        )
    if stats.corrupt:
        log.debug("%s: dropped %d corrupt/truncated line(s)",
                  path, stats.corrupt)
    return TraceData(meta, spans, events, metrics)
