"""Shared logger for the whole package.

Library code logs through ``repro.obs.log.log`` (the ``"repro"`` logger)
instead of printing; only the CLI prints to stdout.  ``setup_logging``
wires a stderr handler and maps the CLI's ``--verbose``/``--quiet`` flags
onto levels.
"""

from __future__ import annotations

import logging

#: the package logger -- ``from repro.obs.log import log; log.info(...)``
log = logging.getLogger("repro")
log.addHandler(logging.NullHandler())  # silent unless the host configures us


def setup_logging(verbosity: int = 0) -> logging.Logger:
    """Configure the ``repro`` logger for CLI use.

    ``verbosity``: negative = warnings only (``-q``), 0 = info, positive =
    debug (``-v``).  Idempotent: reconfigures the same stream handler.
    """
    level = (
        logging.WARNING if verbosity < 0
        else logging.DEBUG if verbosity > 0
        else logging.INFO
    )
    handler = None
    for h in log.handlers:
        if isinstance(h, logging.StreamHandler) and not isinstance(
            h, logging.NullHandler
        ):
            handler = h
            break
    if handler is None:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname).1s %(name)s: %(message)s")
        )
        log.addHandler(handler)
    handler.setLevel(level)
    log.setLevel(level)
    return log
