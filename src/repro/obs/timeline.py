"""Per-task tuning timeline: one record per tuner round.

The two-stage tuner (joint cross-exploration, then loop-only refinement)
makes hundreds of decisions per task; the timeline captures each round --
which stage ran, which layout was under assessment, the reward fed back to
the PPO actor, the latencies actually measured (top-k), the best-so-far
trajectory and the budget remaining -- so a run can answer "why did this
layout win" after the fact.

Records are plain dicts: they ride inside :class:`~repro.obs.trace.Trace`
JSONL streams as ``round`` events, surface on ``TuneResult.timeline``, and
serialize next to tuning records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class TimelineRecorder:
    """Collects round records for one tuning task.

    Bound to a task duck-typed with ``comp.name``, ``best_latency``,
    ``measurements``, ``remaining_budget()`` and ``trace``; every record is
    also emitted as a ``round`` trace event.
    """

    def __init__(self, task):
        self.task = task
        self.rounds: List[Dict] = []

    def record(
        self,
        stage: str,
        layout: Optional[str] = None,
        round_best: Optional[float] = None,
        reward: Optional[float] = None,
        top_k: Optional[Sequence[float]] = None,
    ) -> Dict:
        task = self.task
        entry: Dict = {
            "round": len(self.rounds),
            "stage": stage,
            "task": task.comp.name,
            "layout": layout,
            "round_best": round_best,
            "reward": reward,
            "top_k": list(top_k) if top_k is not None else None,
            "best_so_far": task.best_latency,
            "measurements": task.measurements,
            "budget_remaining": task.remaining_budget(),
        }
        self.rounds.append(entry)
        task.trace.event("round", **entry)
        return entry

    def snapshot(self) -> List[Dict]:
        return [dict(r) for r in self.rounds]


def timeline_from_events(events: Sequence[Dict]) -> List[Dict]:
    """Extract round records from parsed trace events (see ``load_trace``)."""
    out: List[Dict] = []
    for e in events:
        if e.get("name") == "round":
            out.append(dict(e.get("attrs") or {}))
    return out


def best_so_far_curve(rounds: Sequence[Dict]) -> List[float]:
    """The best-latency trajectory over a task's rounds (monotone
    non-increasing by construction of the task bookkeeping)."""
    return [
        r["best_so_far"] for r in rounds if r.get("best_so_far") is not None
    ]
