"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the structured-telemetry substrate for the whole stack: the
measurement engine, the PPO agents, the cost model and layout propagation
all record into one of these instead of growing ad-hoc stat fields.  A
registry is plain in-memory state -- cheap to create per task or per trace,
snapshot-able to a JSON-friendly dict, and mergeable for aggregation.

Conventions
-----------

- Metric names are dotted paths (``measure.batches``, ``ppo.policy_loss``).
- Counters only go up; gauges hold the last value (or accumulate with
  ``add``); histograms bin observations into fixed buckets so percentile
  summaries never require storing raw samples.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

#: default histogram bucket upper edges (log-spaced; covers losses and
#: latencies alike).  Bin i counts observations in (edge[i-1], edge[i]].
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n


class Gauge:
    """A last-value (or accumulated) float."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def add(self, v: float) -> None:
        self.value += float(v)


class Histogram:
    """Fixed-bucket histogram.

    ``edges`` are strictly increasing upper bounds; an observation ``v``
    lands in the first bucket with ``v <= edge``, or in the overflow
    bucket past the last edge.  Non-finite observations are counted
    separately (``nonfinite``) and excluded from ``sum``.
    """

    __slots__ = ("edges", "counts", "overflow", "nonfinite", "count", "sum",
                 "min", "max")

    def __init__(self, edges: Optional[Sequence[float]] = None):
        edges = tuple(edges) if edges is not None else DEFAULT_BUCKETS
        if list(edges) != sorted(set(edges)):
            raise ValueError("histogram edges must be strictly increasing")
        self.edges = edges
        self.counts = [0] * len(edges)
        self.overflow = 0
        self.nonfinite = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        self.count += 1
        if not math.isfinite(v):
            self.nonfinite += 1
            return
        self.sum += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        i = bisect.bisect_left(self.edges, v)
        if i >= len(self.edges):
            self.overflow += 1
        else:
            self.counts[i] += 1

    @property
    def mean(self) -> float:
        finite = self.count - self.nonfinite
        return self.sum / finite if finite else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``q`` in [0, 1]) of the finite
        observations, by linear interpolation inside the owning bucket.

        Buckets only remember counts, so the estimate is exact at bucket
        edges and linear in between; the first bucket interpolates up from
        ``min`` and the overflow bucket caps at ``max``.  Returns ``None``
        with no finite observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile q must be in [0, 1]; got {q}")
        finite = self.count - self.nonfinite
        if finite <= 0:
            return None
        target = q * finite
        cum = 0.0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            lo = self.edges[i - 1] if i > 0 else self.min
            hi = self.edges[i]
            if cum + c >= target:
                frac = (target - cum) / c
                return max(min(lo + frac * (hi - lo), self.max), self.min)
            cum += c
        # the target observation sits past the last edge
        if self.overflow:
            lo = max(self.edges[-1], self.min)
            frac = (target - cum) / self.overflow
            return max(min(lo + frac * (self.max - lo), self.max), self.min)
        return self.max

    def as_dict(self) -> Dict:
        finite = self.count > self.nonfinite
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if finite else None,
            "max": self.max if finite else None,
            "p50": self.percentile(0.50) if finite else None,
            "p95": self.percentile(0.95) if finite else None,
            "p99": self.percentile(0.99) if finite else None,
            "nonfinite": self.nonfinite,
            "buckets": [
                [edge, c] for edge, c in zip(self.edges, self.counts)
            ] + [["inf", self.overflow]],
        }


class MetricsRegistry:
    """Named metrics, created on first use.

    Re-requesting a name returns the existing instrument; requesting it as
    a different kind raises, so one name never means two things.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        m = self._metrics.get(name)
        if m is None:
            m = cls(*args)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise ValueError(
                f"metric {name!r} already registered as {type(m).__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(name, Histogram, edges)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, default=None):
        """Scalar value of a counter/gauge (``default`` if unregistered)."""
        m = self._metrics.get(name)
        if m is None:
            return default
        if isinstance(m, Histogram):
            return m.as_dict()
        return m.value

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly view of every metric."""
        out: Dict[str, object] = {}
        for name in self.names():
            m = self._metrics[name]
            out[name] = m.as_dict() if isinstance(m, Histogram) else m.value
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters/gauges/histograms into this one
        (per-task registries aggregate into a run-level view)."""
        for name, m in other._metrics.items():
            if isinstance(m, Counter):
                self.counter(name).inc(m.value)
            elif isinstance(m, Gauge):
                self.gauge(name).add(m.value)
            elif isinstance(m, Histogram):
                h = self.histogram(name, m.edges)
                h.count += m.count
                h.sum += m.sum
                h.overflow += m.overflow
                h.nonfinite += m.nonfinite
                h.min = min(h.min, m.min)
                h.max = max(h.max, m.max)
                for i, c in enumerate(m.counts):
                    h.counts[i] += c
