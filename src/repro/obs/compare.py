"""Noise-aware comparison of two persisted runs (the perf-regression gate).

``compare_summaries`` diffs two run summaries (see
:meth:`repro.obs.runstore.RunRecord.summary`) task by task and produces the
machine-readable verdict CI gates on (``BENCH_compare.json``):

- **best-latency delta** per shared task, with a per-task tolerance that is
  the larger of the caller's relative threshold and the task's own
  *search-noise* estimate (the spread of the run's best round results --
  two healthy runs of a stochastic tuner legitimately land anywhere on
  that plateau, so the gate must not fire inside it);
- **cost-model rank accuracy** on both sides (a search-quality regression
  is reported even when the final latency happens to survive);
- an overall verdict: ``identical`` (bit-equal outcomes, e.g. two runs
  with the same seed), ``pass``, or ``fail`` (any task regressed beyond
  tolerance, or a task disappeared).

The baseline side can be a committed summary JSON -- the comparator never
needs the full run directory of the reference.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence

COMPARE_SCHEMA_VERSION = 1

#: default relative regression threshold (5%)
DEFAULT_THRESHOLD = 0.05
#: absolute latency floor below which deltas are numerical noise
ABS_NOISE_FLOOR_S = 1e-12
#: rank-accuracy drop (absolute) that flags a search-quality regression
RANK_ACCURACY_DROP = 0.10


def task_noise_rel(rounds: Sequence[Dict]) -> float:
    """Relative search-noise estimate for one task from its round records.

    The spread between the best and the 5th-best round result approximates
    the plateau the search walks near its optimum; a re-run with another
    seed typically lands within it.  Clamped to [0, 0.5] so a noisy task
    can widen the gate's tolerance but never disable it.
    """
    bests = sorted(
        float(r["round_best"]) for r in rounds
        if isinstance(r.get("round_best"), (int, float))
        and math.isfinite(r["round_best"]) and r["round_best"] > 0
    )
    if len(bests) < 2:
        return 0.0
    top = bests[: min(5, len(bests))]
    spread = (top[-1] - top[0]) / top[0]
    return min(max(spread, 0.0), 0.5)


def _rank_accuracy(summary: Optional[Dict]) -> Optional[float]:
    try:
        return summary["diagnostics"]["cost_model"]["overall"]["rank_accuracy"]
    except (KeyError, TypeError):
        return None


def _geomean(ratios: List[float]) -> Optional[float]:
    finite = [r for r in ratios if r > 0 and math.isfinite(r)]
    if not finite:
        return None
    return math.exp(sum(math.log(r) for r in finite) / len(finite))


def compare_summaries(
    base: Dict,
    cand: Dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict:
    """Diff two run summaries; see the module docstring for semantics."""
    base_tasks: Dict[str, Dict] = base.get("tasks") or {}
    cand_tasks: Dict[str, Dict] = cand.get("tasks") or {}
    rows: List[Dict] = []
    ratios: List[float] = []
    identical = True
    failures: List[str] = []

    for name in sorted(set(base_tasks) | set(cand_tasks)):
        b = base_tasks.get(name)
        c = cand_tasks.get(name)
        if b is None or c is None:
            identical = False
            status = "missing-in-baseline" if b is None else "missing-in-candidate"
            if c is None:
                failures.append(f"{name}: task missing from candidate run")
            rows.append({
                "task": name,
                "base_latency": b and b.get("best_latency"),
                "cand_latency": c and c.get("best_latency"),
                "delta_rel": None,
                "tolerance": threshold,
                "status": status,
            })
            continue
        b_lat = b.get("best_latency")
        c_lat = c.get("best_latency")
        noise = max(b.get("noise_rel") or 0.0, c.get("noise_rel") or 0.0)
        tolerance = max(threshold, noise)
        row = {
            "task": name,
            "base_latency": b_lat,
            "cand_latency": c_lat,
            "base_measurements": b.get("measurements"),
            "cand_measurements": c.get("measurements"),
            "noise_rel": noise,
            "tolerance": tolerance,
        }
        if not (
            isinstance(b_lat, (int, float)) and isinstance(c_lat, (int, float))
            and b_lat > 0 and c_lat > 0
            and math.isfinite(b_lat) and math.isfinite(c_lat)
        ):
            identical = identical and b_lat == c_lat
            row.update(delta_rel=None, status="not-comparable")
            rows.append(row)
            continue
        delta = c_lat / b_lat - 1.0
        row["delta_rel"] = delta
        ratios.append(c_lat / b_lat)
        if b_lat != c_lat or b.get("measurements") != c.get("measurements"):
            identical = False
        if delta > tolerance and (c_lat - b_lat) > ABS_NOISE_FLOOR_S:
            row["status"] = "regressed"
            failures.append(
                f"{name}: best latency regressed {delta * 100:+.1f}% "
                f"(tolerance {tolerance * 100:.1f}%)"
            )
        elif delta < -tolerance:
            row["status"] = "improved"
        else:
            row["status"] = "unchanged"
        rows.append(row)

    # end-to-end network latency: compile and network-tune runs record a
    # model-level latency; a regression there gates even when every shared
    # per-task row survived (conversion/fusion overhead is network-level)
    network: Optional[Dict] = None
    b_model = base.get("model") or {}
    c_model = cand.get("model") or {}
    b_net = b_model.get("latency_s")
    c_net = c_model.get("latency_s")
    if (
        isinstance(b_net, (int, float)) and isinstance(c_net, (int, float))
        and b_net > 0 and c_net > 0
        and math.isfinite(b_net) and math.isfinite(c_net)
    ):
        delta = c_net / b_net - 1.0
        if b_net != c_net:
            identical = False
        if delta > threshold and (c_net - b_net) > ABS_NOISE_FLOOR_S:
            status = "regressed"
            failures.append(
                f"network latency regressed {delta * 100:+.1f}% "
                f"(tolerance {threshold * 100:.1f}%)"
            )
        elif delta < -threshold:
            status = "improved"
        else:
            status = "unchanged"
        network = {
            "graph": c_model.get("graph") or b_model.get("graph"),
            "base_latency": b_net,
            "cand_latency": c_net,
            "delta_rel": delta,
            "tolerance": threshold,
            "status": status,
        }

    acc_base = _rank_accuracy(base)
    acc_cand = _rank_accuracy(cand)
    rank_delta = (
        acc_cand - acc_base
        if acc_base is not None and acc_cand is not None else None
    )
    if rank_delta is not None and rank_delta < -RANK_ACCURACY_DROP:
        identical = False
        failures.append(
            f"cost-model rank accuracy dropped "
            f"{acc_base * 100:.1f}% -> {acc_cand * 100:.1f}%"
        )
    if rank_delta not in (None, 0.0):
        identical = False

    verdict = (
        "identical" if identical and not failures
        else ("fail" if failures else "pass")
    )
    return {
        "schema": COMPARE_SCHEMA_VERSION,
        "baseline": {
            "run_id": base.get("run_id"),
            "git_sha": base.get("git_sha"),
            "seed": base.get("seed"),
        },
        "candidate": {
            "run_id": cand.get("run_id"),
            "git_sha": cand.get("git_sha"),
            "seed": cand.get("seed"),
        },
        "threshold": threshold,
        "tasks": rows,
        "network": network,
        "geomean_latency_ratio": _geomean(ratios),
        "rank_accuracy": {
            "baseline": acc_base,
            "candidate": acc_cand,
            "delta": rank_delta,
        },
        "failures": failures,
        "verdict": verdict,
    }


def render_compare(result: Dict) -> str:
    """Plain-text comparison table + verdict."""
    lines = [
        "run comparison "
        f"(baseline {result['baseline'].get('run_id') or '?'} vs "
        f"candidate {result['candidate'].get('run_id') or '?'}):",
        f"  {'task':20s} {'baseline':>12s} {'candidate':>12s} "
        f"{'delta':>8s} {'tol':>6s}  status",
    ]
    for row in result["tasks"]:
        b, c = row.get("base_latency"), row.get("cand_latency")
        b_s = f"{b * 1e6:9.2f} us" if isinstance(b, (int, float)) else "      -"
        c_s = f"{c * 1e6:9.2f} us" if isinstance(c, (int, float)) else "      -"
        d = row.get("delta_rel")
        d_s = f"{d * 100:+.1f}%" if d is not None else "-"
        tol = row.get("tolerance")
        tol_s = f"{tol * 100:.0f}%" if tol is not None else "-"
        lines.append(
            f"  {row['task']:20s} {b_s:>12s} {c_s:>12s} {d_s:>8s} "
            f"{tol_s:>6s}  {row['status']}"
        )
    net = result.get("network")
    if net is not None:
        lines.append(
            f"  network {net.get('graph') or '?'}: "
            f"{net['base_latency'] * 1e3:.4f} ms -> "
            f"{net['cand_latency'] * 1e3:.4f} ms "
            f"({net['delta_rel'] * 100:+.1f}%)  {net['status']}"
        )
    gm = result.get("geomean_latency_ratio")
    if gm is not None:
        lines.append(f"  geomean latency ratio: {gm:.4f}")
    acc = result.get("rank_accuracy") or {}
    if acc.get("baseline") is not None or acc.get("candidate") is not None:
        fmt = lambda v: f"{v * 100:.1f}%" if v is not None else "n/a"  # noqa: E731
        lines.append(
            f"  cost-model rank accuracy: {fmt(acc.get('baseline'))} -> "
            f"{fmt(acc.get('candidate'))}"
        )
    for failure in result.get("failures", []):
        lines.append(f"  FAIL: {failure}")
    lines.append(f"  verdict: {result['verdict'].upper()}")
    return "\n".join(lines)


def write_compare(result: Dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# Tuner-throughput gate (BENCH_tuner_throughput.json)
# ---------------------------------------------------------------------------

#: default relative candidates/sec regression threshold.  Wide on purpose:
#: unlike the latency gate (deterministic given the seed), wall-clock
#: throughput varies with the CI machine, so only a large drop is a credible
#: code regression rather than host noise -- and each workload's measured
#: repeat noise widens its own tolerance further.
THROUGHPUT_THRESHOLD = 0.5


def compare_throughput(
    base: Dict,
    cand: Dict,
    threshold: float = THROUGHPUT_THRESHOLD,
) -> Dict:
    """Diff two ``BENCH_tuner_throughput.json`` payloads.

    Gates on end-to-end ``candidates_per_s`` per workload with tolerance
    ``max(threshold, noise_rel)`` (noise measured from repeat runs when the
    bench was generated); per-phase rates ride along as informational rows
    so a regression arrives with its own attribution.
    """
    base_wl: Dict[str, Dict] = base.get("workloads") or {}
    cand_wl: Dict[str, Dict] = cand.get("workloads") or {}
    rows: List[Dict] = []
    failures: List[str] = []

    for name in sorted(set(base_wl) | set(cand_wl)):
        b = base_wl.get(name)
        c = cand_wl.get(name)
        if b is None or c is None:
            if c is None:
                failures.append(f"{name}: workload missing from candidate")
            rows.append({
                "workload": name,
                "base_cps": b and b.get("candidates_per_s"),
                "cand_cps": c and c.get("candidates_per_s"),
                "delta_rel": None,
                "tolerance": threshold,
                "status": (
                    "missing-in-baseline" if b is None
                    else "missing-in-candidate"
                ),
                "phases": [],
            })
            continue
        b_cps = b.get("candidates_per_s")
        c_cps = c.get("candidates_per_s")
        noise = max(b.get("noise_rel") or 0.0, c.get("noise_rel") or 0.0)
        tolerance = max(threshold, noise)
        phases = []
        b_ph = b.get("phases") or {}
        c_ph = c.get("phases") or {}
        for ph in sorted(set(b_ph) | set(c_ph)):
            phases.append({
                "phase": ph,
                "base_self_s": (b_ph.get(ph) or {}).get("self_s"),
                "cand_self_s": (c_ph.get(ph) or {}).get("self_s"),
            })
        row = {
            "workload": name,
            "base_cps": b_cps,
            "cand_cps": c_cps,
            "noise_rel": noise,
            "tolerance": tolerance,
            "phases": phases,
        }
        if not (
            isinstance(b_cps, (int, float)) and isinstance(c_cps, (int, float))
            and b_cps > 0 and c_cps > 0
            and math.isfinite(b_cps) and math.isfinite(c_cps)
        ):
            row.update(delta_rel=None, status="not-comparable")
            rows.append(row)
            continue
        # throughput: *lower* is the regression direction
        delta = c_cps / b_cps - 1.0
        row["delta_rel"] = delta
        if delta < -tolerance:
            row["status"] = "regressed"
            failures.append(
                f"{name}: candidates/sec regressed {delta * 100:+.1f}% "
                f"({b_cps:.1f} -> {c_cps:.1f}, tolerance "
                f"{tolerance * 100:.0f}%)"
            )
        elif delta > tolerance:
            row["status"] = "improved"
        else:
            row["status"] = "unchanged"
        rows.append(row)

    return {
        "schema": COMPARE_SCHEMA_VERSION,
        "threshold": threshold,
        "workloads": rows,
        "failures": failures,
        "verdict": "fail" if failures else "pass",
    }


def render_throughput_compare(result: Dict) -> str:
    """Plain-text throughput comparison + verdict."""
    lines = [
        "tuner throughput comparison:",
        f"  {'workload':20s} {'baseline':>12s} {'candidate':>12s} "
        f"{'delta':>8s} {'tol':>6s}  status",
    ]
    for row in result["workloads"]:
        b, c = row.get("base_cps"), row.get("cand_cps")
        b_s = f"{b:8.1f}/s" if isinstance(b, (int, float)) else "       -"
        c_s = f"{c:8.1f}/s" if isinstance(c, (int, float)) else "       -"
        d = row.get("delta_rel")
        d_s = f"{d * 100:+.1f}%" if d is not None else "-"
        tol = row.get("tolerance")
        tol_s = f"{tol * 100:.0f}%" if tol is not None else "-"
        lines.append(
            f"  {row['workload']:20s} {b_s:>12s} {c_s:>12s} {d_s:>8s} "
            f"{tol_s:>6s}  {row['status']}"
        )
        if row.get("status") == "regressed":
            # attribution rides with the failure: which phase slowed down
            for ph in row.get("phases") or []:
                b_ph, c_ph = ph.get("base_self_s"), ph.get("cand_self_s")
                if not (
                    isinstance(b_ph, (int, float))
                    and isinstance(c_ph, (int, float)) and b_ph > 0
                ):
                    continue
                lines.append(
                    f"    {ph['phase']:24s} self {b_ph:8.3f} s -> "
                    f"{c_ph:8.3f} s ({(c_ph / b_ph - 1) * 100:+.0f}%)"
                )
    for failure in result.get("failures", []):
        lines.append(f"  FAIL: {failure}")
    lines.append(f"  verdict: {result['verdict'].upper()}")
    return "\n".join(lines)
