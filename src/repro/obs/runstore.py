"""Persistent run registry: one directory per tuning/compile run.

A single run is observable through its JSONL trace, but nothing about a
trace persists *across* runs -- you cannot ask "did last week's change slow
down c2d tuning" from a loose file.  Ansor-lineage tuners solve this with a
durable record store; this module is that layer for the repro stack.

Directory layout (one run directory per ``tune``/``compile`` invocation)::

    <store>/
      <run_id>/                 20260806T101502-tune-gmm-1a2b3c
        manifest.json           attribution: workload key, machine, seed,
                                git SHA, repro version, CLI config, host
        trace.jsonl             the full repro.obs trace (spans/rounds/metrics)
        rounds.jsonl            per-round tuning timeline records
        result.json             per-task outcomes + model-level summary
        metrics.json            final metrics snapshot
        profile.json            phase profile (``repro.obs.profiler``), only
                                when the run was profiled (``--profile``)

Everything is plain JSON on purpose: runs are diffable with shell tools,
commit-able as CI baselines, and readable by any future analysis layer.
``RunRecord.summary()`` condenses a run into the comparable form consumed
by :mod:`repro.obs.compare` (and by the committed ``BENCH_baseline.json``).
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
import uuid
from typing import Dict, List, Optional

from .log import log
from .trace import Trace, TraceData, load_trace

#: bump when the on-disk run layout changes incompatibly
RUNSTORE_SCHEMA_VERSION = 1

MANIFEST_FILE = "manifest.json"
TRACE_FILE = "trace.jsonl"
ROUNDS_FILE = "rounds.jsonl"
RESULT_FILE = "result.json"
METRICS_FILE = "metrics.json"
#: aggregated per-phase wall-time attribution (``repro.obs.profiler``
#: schema); present only for runs recorded with profiling enabled
PROFILE_FILE = "profile.json"
#: cross-task scheduler grant log of a network tuning run (one JSON row per
#: budget grant: phase, task, granted/consumed, gradient, best-so-far)
ALLOCATIONS_FILE = "allocations.jsonl"
#: lease-grant log of a `repro serve` fleet run (one row per lease
#: lifecycle step), the fleet analog of the allocations log
LEASES_FILE = "leases.jsonl"
#: tuner state snapshot inside a run directory (see repro.tuning.checkpoint)
CHECKPOINT_FILE = "checkpoint.pkl"
#: latest watchdog verdict (``repro.obs.watch`` schema: status ok/alert,
#: active alerts, progress/ETA); rewritten atomically as the run tunes
HEALTH_FILE = "health.json"
#: subdirectory of minimized, replayable fuzz-failure records (one JSON per
#: failing spec: seed, graph-spec JSON, violated check, message); written by
#: ``repro fuzz`` and replayable with ``repro fuzz replay --spec``
FAILURES_DIR = "failures"

#: run lifecycle states recorded in the manifest.  ``begin`` writes
#: ``running``; exit flips it to ``completed``/``failed``.  A run that still
#: says ``running`` after its process died was interrupted -- ``repro runs
#: list`` flags it and ``repro tune --resume`` will pick it up.
STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"


def _write_json(path: str, obj) -> None:
    """Atomic write-then-rename so a crash never leaves a torn JSON file."""
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(obj, f, indent=2, sort_keys=True)
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Attribution helpers
# ---------------------------------------------------------------------------

def git_sha() -> Optional[str]:
    """Best-effort git SHA of the source tree this process imported repro
    from; ``None`` outside a git checkout (e.g. an installed wheel)."""
    root = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def repro_version() -> str:
    from .. import __version__

    return __version__


def run_environment() -> Dict:
    """Where a run happened (manifest ``environment`` block)."""
    try:
        host = socket.gethostname()
    except OSError:
        host = "unknown"
    return {
        "host": host,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def trace_meta(seed: Optional[int] = None) -> Dict:
    """Attribution fields for ``Trace(meta=...)``: saved traces should say
    which source tree and seed produced them."""
    meta: Dict = {"repro_version": repro_version(), "git_sha": git_sha()}
    if seed is not None:
        meta["seed"] = seed
    return meta


def _slug(text: str) -> str:
    keep = [c if c.isalnum() or c in "-_." else "-" for c in text]
    return "".join(keep).strip("-") or "run"


def new_run_id(name: str) -> str:
    """Sortable unique id: UTC stamp + slug + random suffix (lexical order
    == creation order, which is what ``RunStore.latest`` relies on)."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{_slug(name)}-{uuid.uuid4().hex[:6]}"


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

class RunWriter:
    """Half-open run directory; :meth:`finish` makes it durable.

    Lifecycle: :meth:`begin` stakes the directory out with a
    ``status: running`` manifest (so an interrupted run leaves evidence and
    a resumable directory), then exactly one of :meth:`finish` (flips to
    ``completed``) or :meth:`fail` (flips to ``failed``) closes it.
    """

    def __init__(self, path: str, manifest: Dict):
        self.path = path
        self.manifest = manifest

    @property
    def checkpoint_path(self) -> str:
        """Where the tuner's periodic state snapshot lives for this run."""
        return os.path.join(self.path, CHECKPOINT_FILE)

    def begin(self) -> "RunWriter":
        """Create the directory and persist the manifest as ``running``."""
        os.makedirs(self.path, exist_ok=True)
        self.manifest["status"] = STATUS_RUNNING
        _write_json(os.path.join(self.path, MANIFEST_FILE), self.manifest)
        return self

    def record_failure(self, payload: Dict) -> str:
        """Persist one replayable fuzz-failure record; returns its path.

        Records are numbered in arrival order and written atomically, so a
        crashed sweep still leaves every failure it found replayable.
        """
        fdir = os.path.join(self.path, FAILURES_DIR)
        os.makedirs(fdir, exist_ok=True)
        n = len([e for e in os.listdir(fdir) if e.endswith(".json")])
        check = _slug(str(payload.get("check", "failure")))
        path = os.path.join(fdir, f"{n:04d}-{check}.json")
        _write_json(path, payload)
        return path

    def fail(self, error: Optional[str] = None) -> None:
        """Mark the run ``failed`` (the exception path of the CLI)."""
        os.makedirs(self.path, exist_ok=True)
        self.manifest["status"] = STATUS_FAILED
        if error:
            self.manifest["error"] = str(error)[:500]
        _write_json(os.path.join(self.path, MANIFEST_FILE), self.manifest)

    def finish(
        self,
        trace: Trace,
        tasks: Dict[str, Dict],
        model: Optional[Dict] = None,
        allocations: Optional[List[Dict]] = None,
        profile=None,
    ) -> "RunRecord":
        """Persist the run: manifest, trace, rounds, results, metrics.

        ``tasks`` maps task name -> result dict (``best_latency``,
        ``measurements``, optional ``telemetry``/``timeline``); ``model``
        carries compile-level outcomes (end-to-end latency, conversions);
        ``allocations`` is a network tune's budget-grant log; ``profile``
        (a :class:`repro.obs.Profiler` or its ``to_dict`` payload) lands in
        ``profile.json``.
        """
        os.makedirs(self.path, exist_ok=True)
        if profile is not None:
            data = (
                profile.to_dict() if hasattr(profile, "to_dict")
                else dict(profile)
            )
            _write_json(os.path.join(self.path, PROFILE_FILE), data)
        if allocations is not None:
            with open(os.path.join(self.path, ALLOCATIONS_FILE), "w") as f:
                for row in allocations:
                    f.write(json.dumps(row) + "\n")
        trace.save(os.path.join(self.path, TRACE_FILE))
        rounds: List[Dict] = []
        for name, res in tasks.items():
            for r in res.get("timeline") or []:
                entry = dict(r)
                entry.setdefault("task", name)
                rounds.append(entry)
        with open(os.path.join(self.path, ROUNDS_FILE), "w") as f:
            for r in rounds:
                f.write(json.dumps(r) + "\n")
        result = {
            "schema": RUNSTORE_SCHEMA_VERSION,
            "tasks": {
                name: {k: v for k, v in res.items() if k != "timeline"}
                for name, res in tasks.items()
            },
            "model": model,
        }
        _write_json(os.path.join(self.path, RESULT_FILE), result)
        _write_json(
            os.path.join(self.path, METRICS_FILE), trace.metrics.snapshot()
        )
        self.manifest["status"] = STATUS_COMPLETED
        _write_json(os.path.join(self.path, MANIFEST_FILE), self.manifest)
        log.info("run recorded: %s", self.path)
        return RunRecord(self.path)


def task_result_dict(result) -> Dict:
    """Serialize a :class:`~repro.tuning.explorer.TuneResult` for
    ``result.json`` (layouts/schedules go in as readable reprs)."""
    return {
        "best_latency": result.best_latency,
        "measurements": result.measurements,
        "telemetry": result.telemetry,
        "layouts": {
            name: str(lay) for name, lay in sorted(result.best_layouts.items())
        },
        "schedule": (
            str(result.best_schedule)
            if result.best_schedule is not None else None
        ),
        "timeline": list(getattr(result, "timeline", []) or []),
    }


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

class RunRecord:
    """A persisted run; all file reads are lazy and cached."""

    def __init__(self, path: str):
        self.path = os.path.abspath(path)
        self.run_id = os.path.basename(self.path.rstrip(os.sep))
        self._manifest: Optional[Dict] = None
        self._result: Optional[Dict] = None
        self._rounds: Optional[List[Dict]] = None
        self._metrics: Optional[Dict] = None
        self._trace: Optional[TraceData] = None

    def _json(self, fname: str) -> Dict:
        try:
            with open(os.path.join(self.path, fname)) as f:
                return json.load(f)
        except (OSError, ValueError):
            return {}

    @property
    def manifest(self) -> Dict:
        if self._manifest is None:
            self._manifest = self._json(MANIFEST_FILE)
        return self._manifest

    @property
    def status(self) -> str:
        """Lifecycle state; manifests predating the field read as
        ``completed`` (they were only written at successful exit)."""
        return self.manifest.get("status", STATUS_COMPLETED)

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.path, CHECKPOINT_FILE)

    @property
    def resumable(self) -> bool:
        """An interrupted run with a tuner snapshot to pick up from."""
        return (
            self.status != STATUS_COMPLETED
            and os.path.isfile(self.checkpoint_path)
        )

    @property
    def result(self) -> Dict:
        if self._result is None:
            self._result = self._json(RESULT_FILE)
        return self._result

    @property
    def metrics(self) -> Dict:
        if self._metrics is None:
            self._metrics = self._json(METRICS_FILE)
        return self._metrics

    @property
    def profile(self) -> Dict:
        """Phase-profile payload ({} for runs recorded without --profile)."""
        return self._json(PROFILE_FILE)

    @property
    def health(self) -> Dict:
        """Latest watchdog verdict ({} for runs recorded before the
        watchdog existed or with streaming off)."""
        return self._json(HEALTH_FILE)

    @property
    def manifest_error(self) -> Optional[str]:
        """Why the manifest is unusable (``None`` for a healthy run dir)."""
        mpath = os.path.join(self.path, MANIFEST_FILE)
        if not os.path.isfile(mpath):
            return "missing manifest.json"
        try:
            with open(mpath) as f:
                json.load(f)
        except (OSError, ValueError):
            return "corrupt manifest.json"
        return None

    @property
    def rounds(self) -> List[Dict]:
        if self._rounds is None:
            self._rounds = []
            try:
                with open(os.path.join(self.path, ROUNDS_FILE)) as f:
                    for line in f:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            self._rounds.append(json.loads(line))
                        except ValueError:
                            continue
            except OSError:
                pass
        return self._rounds

    @property
    def allocations(self) -> List[Dict]:
        """Budget-grant log of a network tuning run ([] otherwise)."""
        rows: List[Dict] = []
        try:
            with open(os.path.join(self.path, ALLOCATIONS_FILE)) as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rows.append(json.loads(line))
                    except ValueError:
                        continue
        except OSError:
            pass
        return rows

    @property
    def leases(self) -> List[Dict]:
        """Lease-grant log of a `repro serve` fleet run ([] otherwise)."""
        rows: List[Dict] = []
        try:
            with open(os.path.join(self.path, LEASES_FILE)) as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rows.append(json.loads(line))
                    except ValueError:
                        continue
        except OSError:
            pass
        return rows

    @property
    def failures(self) -> List[Dict]:
        """Replayable fuzz-failure records of this run ([] otherwise)."""
        fdir = os.path.join(self.path, FAILURES_DIR)
        out: List[Dict] = []
        try:
            names = sorted(os.listdir(fdir))
        except OSError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(fdir, name)) as f:
                    out.append(json.load(f))
            except (OSError, ValueError):
                continue
        return out

    @property
    def trace_path(self) -> str:
        return os.path.join(self.path, TRACE_FILE)

    @property
    def trace(self) -> TraceData:
        if self._trace is None:
            try:
                self._trace = load_trace(self.trace_path)
            except OSError:
                self._trace = TraceData({}, [], [], {})
        return self._trace

    def summary(self) -> Dict:
        """The comparable view of a run (what baselines/compare consume)."""
        from .compare import task_noise_rel
        from .diagnostics import run_diagnostics

        manifest = self.manifest
        tasks: Dict[str, Dict] = {}
        by_task_rounds: Dict[str, List[Dict]] = {}
        for r in self.rounds:
            by_task_rounds.setdefault(r.get("task", "?"), []).append(r)
        for name, res in (self.result.get("tasks") or {}).items():
            tasks[name] = {
                "best_latency": res.get("best_latency"),
                "measurements": res.get("measurements"),
                "noise_rel": task_noise_rel(by_task_rounds.get(name, [])),
            }
        diag = run_diagnostics(self.trace.events, self.metrics)
        return {
            "schema": RUNSTORE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "name": manifest.get("name"),
            "machine": manifest.get("machine"),
            "seed": manifest.get("seed"),
            "git_sha": manifest.get("git_sha"),
            "repro_version": manifest.get("repro_version"),
            "tasks": tasks,
            "model": self.result.get("model"),
            "diagnostics": diag,
            # tuning-database provenance: which store served the run and the
            # hit/miss/warm-start counters (None for database-less runs)
            "database": manifest.get("database"),
        }


class RunStore:
    """A directory of runs; creation, listing and reference resolution."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)

    def create(
        self,
        name: str,
        *,
        machine: str,
        seed: Optional[int],
        workload: str,
        config: Optional[Dict] = None,
    ) -> RunWriter:
        run_id = new_run_id(name)
        manifest = {
            "schema": RUNSTORE_SCHEMA_VERSION,
            "run_id": run_id,
            "name": name,
            "workload": workload,
            "machine": machine,
            "seed": seed,
            "git_sha": git_sha(),
            "repro_version": repro_version(),
            "created": time.time(),
            "config": dict(config or {}),
            "environment": run_environment(),
        }
        return RunWriter(os.path.join(self.root, run_id), manifest)

    def scan(self) -> "tuple[List[str], List[tuple[str, str]]]":
        """Valid run ids plus skipped ``(entry, reason)`` pairs.

        A run directory with a missing or unparseable ``manifest.json``
        (killed before the first atomic write, disk corruption, a stray
        directory dropped into the store) is reported instead of crashing
        the listing -- and excluded from every id-based lookup so the rest
        of the store keeps working.
        """
        try:
            entries = sorted(os.listdir(self.root))
        except OSError:
            return [], []
        ids: List[str] = []
        skipped: List[tuple] = []
        for e in entries:
            path = os.path.join(self.root, e)
            if not os.path.isdir(path):
                continue  # stray files are not run-like; ignore quietly
            error = RunRecord(path).manifest_error
            if error is not None:
                skipped.append((e, error))
            else:
                ids.append(e)
        return ids, skipped

    def run_ids(self) -> List[str]:
        return self.scan()[0]

    def runs(self) -> List[RunRecord]:
        return [RunRecord(os.path.join(self.root, rid)) for rid in self.run_ids()]

    def latest(self) -> Optional[RunRecord]:
        ids = self.run_ids()
        return RunRecord(os.path.join(self.root, ids[-1])) if ids else None

    def gc(
        self,
        keep_last: Optional[int] = None,
        keep_days: Optional[float] = None,
        apply: bool = False,
        now: Optional[float] = None,
    ) -> "List[Dict]":
        """Prune old run directories; plan-only unless ``apply=True``.

        A run survives when *any* keep criterion holds: it is among the
        ``keep_last`` newest, it is younger than ``keep_days`` days
        (manifests without a ``created`` stamp count as young -- never
        delete what cannot be dated), or its manifest still says
        ``running`` -- live runs are refused outright, whatever the other
        criteria say.  Returns one row per run: ``{"run_id", "action":
        "delete" | "keep", "reason"}`` in store order; with ``apply`` the
        ``delete`` rows are removed from disk (a failed removal flips the
        row to ``action: "error"``).
        """
        import shutil

        if keep_last is None and keep_days is None:
            raise ValueError("gc needs --keep-last and/or --keep-days")
        if keep_last is not None and keep_last < 0:
            raise ValueError("keep_last must be >= 0")
        ids = self.run_ids()  # sorted; run ids order lexically by creation
        now = time.time() if now is None else now
        newest = set(ids[-keep_last:]) if keep_last else set()
        plan: List[Dict] = []
        for rid in ids:
            rec = RunRecord(os.path.join(self.root, rid))
            if rec.status == STATUS_RUNNING:
                plan.append({"run_id": rid, "action": "keep",
                             "reason": "running"})
                continue
            if rid in newest:
                plan.append({"run_id": rid, "action": "keep",
                             "reason": f"newest {keep_last}"})
                continue
            if keep_days is not None:
                created = rec.manifest.get("created")
                age_days = (
                    (now - created) / 86400.0
                    if isinstance(created, (int, float)) else None
                )
                if age_days is None or age_days <= keep_days:
                    plan.append({"run_id": rid, "action": "keep",
                                 "reason": (
                                     "undated" if age_days is None
                                     else f"{age_days:.1f}d old"
                                 )})
                    continue
                reason = f"{age_days:.1f}d old"
            else:
                reason = f"older than newest {keep_last}"
            row = {"run_id": rid, "action": "delete", "reason": reason}
            if apply:
                try:
                    shutil.rmtree(os.path.join(self.root, rid))
                except OSError as exc:
                    row = {"run_id": rid, "action": "error",
                           "reason": str(exc)}
            plan.append(row)
        return plan

    def load(self, ref: str) -> RunRecord:
        """Resolve ``ref``: exact id, unique id prefix, or ``latest``."""
        ids = self.run_ids()
        if ref == "latest":
            rec = self.latest()
            if rec is None:
                raise FileNotFoundError(f"no runs in store {self.root}")
            return rec
        if ref in ids:
            return RunRecord(os.path.join(self.root, ref))
        matches = [i for i in ids if i.startswith(ref)]
        if len(matches) == 1:
            return RunRecord(os.path.join(self.root, matches[0]))
        if not matches:
            raise FileNotFoundError(f"no run {ref!r} in store {self.root}")
        raise FileNotFoundError(
            f"ambiguous run prefix {ref!r} in {self.root}: {matches}"
        )


def is_run_dir(path: str) -> bool:
    return os.path.isfile(os.path.join(path, MANIFEST_FILE))


def load_summary(ref: str, store: Optional[str] = None) -> Dict:
    """Resolve anything comparable into a summary dict.

    Accepted forms: a summary JSON file (e.g. a committed baseline), a run
    directory, a run-store directory (all runs merged, newest run winning a
    task-name collision), or a run id / unique prefix / ``latest`` inside
    ``store``.
    """
    if os.path.isfile(ref):
        with open(ref) as f:
            data = json.load(f)
        if not isinstance(data, dict) or "tasks" not in data:
            raise ValueError(f"{ref}: not a run summary (no 'tasks' key)")
        return data
    if os.path.isdir(ref):
        if is_run_dir(ref):
            return RunRecord(ref).summary()
        sub = RunStore(ref)
        if sub.run_ids():
            return merge_summaries(
                [r.summary() for r in sub.runs()], source=ref
            )
        raise FileNotFoundError(f"{ref}: neither a run nor a run store")
    if store is not None:
        return RunStore(store).load(ref).summary()
    raise FileNotFoundError(
        f"cannot resolve run reference {ref!r} (pass --store for run ids)"
    )


def merge_summaries(summaries: List[Dict], source: str = "merged") -> Dict:
    """Fold several run summaries into one comparable view (a store of
    single-op tuning runs gates like one multi-task run)."""
    if not summaries:
        raise ValueError("nothing to merge")
    out = {
        "schema": RUNSTORE_SCHEMA_VERSION,
        "run_id": f"store:{os.path.basename(os.path.abspath(source))}",
        "name": source,
        "machine": summaries[0].get("machine"),
        "seed": summaries[0].get("seed"),
        "git_sha": summaries[0].get("git_sha"),
        "repro_version": summaries[0].get("repro_version"),
        "tasks": {},
        "model": None,
        "diagnostics": None,
        "database": None,
    }
    for s in summaries:  # run_ids sort by creation time: newest wins
        out["tasks"].update(s.get("tasks") or {})
        if s.get("model"):
            out["model"] = s["model"]
        if s.get("database"):
            out["database"] = s["database"]
    out["diagnostics"] = _merge_diagnostics(
        [s.get("diagnostics") for s in summaries]
    )
    return out


def _merge_diagnostics(diags: List[Optional[Dict]]) -> Optional[Dict]:
    """Pool cost-model calibration counts across runs (exact: the stored
    counts, not the ratios, are additive); per-generation detail and the
    other per-run sections are dropped from a merged view."""
    counts = {"points": 0, "pairs_correct": 0, "pairs_total": 0,
              "topk_hits": 0, "topk_total": 0, "batches": 0,
              "generations": 0}
    seen = False
    for d in diags:
        cm = (d or {}).get("cost_model")
        if not cm:
            continue
        seen = True
        o = cm.get("overall") or {}
        for key in counts:
            counts[key] += int(o.get(key) or 0)
    if not seen:
        return None
    overall = dict(counts)
    overall["rank_accuracy"] = (
        counts["pairs_correct"] / counts["pairs_total"]
        if counts["pairs_total"] else None
    )
    overall["topk_recall"] = (
        counts["topk_hits"] / counts["topk_total"]
        if counts["topk_total"] else None
    )
    overall["correlation"] = None
    return {"cost_model": {"overall": overall, "per_generation": {}}}
