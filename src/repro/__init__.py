"""ALT reproduction: joint data-layout and loop optimization for deep
learning compilation (EuroSys 2023).

Public API tour
---------------

- **IR**: :mod:`repro.ir` -- index expressions, tensors, compute
  definitions, lowered loop nests.
- **Layouts** (the paper's transformation module): :class:`repro.Layout`
  with ``split/reorder/fuse/unfold/pad/store_at`` primitives;
  :mod:`repro.layout.propagation` for Algorithm 1.
- **Loops**: :class:`repro.LoopSchedule` with TVM-style primitives.
- **Lowering**: :func:`repro.lower_compute` rewrites every tensor access for
  the chosen layouts (paper Section 6) and applies the loop schedule.
- **Machines**: :func:`repro.get_machine` -- simulated Intel CPU / NVIDIA
  GPU / ARM CPU targets; :func:`repro.estimate_program` prices programs.
- **Auto-tuning**: :func:`repro.tune_alt` (joint stage + loop-only stage,
  PPO + cost model) and the baseline tuners in :mod:`repro.tuning.baselines`.
- **End to end**: :func:`repro.compile_graph` tunes, propagates, fuses and
  lowers a whole model graph; the zoo lives in :mod:`repro.graph.models`.
- **Observability**: :mod:`repro.obs` -- span tracer, metrics registry,
  per-task tuning timelines, the shared ``repro`` logger.  Library code
  logs (never prints); renderers live in :func:`repro.trace_report` /
  :func:`repro.timeline_report`.

Quickstart::

    from repro import Tensor, Trace, conv2d, get_machine, tune_alt
    from repro.obs import log, setup_logging

    setup_logging()                      # route the "repro" logger to stderr
    inp = Tensor("inp", (1, 64, 58, 58))
    ker = Tensor("ker", (64, 64, 3, 3), role="const")
    op = conv2d(inp, ker, stride=1)
    trace = Trace(name="quickstart")     # optional: record spans + timeline
    result = tune_alt(op, get_machine("intel_cpu"), budget=200, trace=trace)
    log.info("best %.3e s via %s", result.best_latency, result.best_layouts)
    trace.save("quickstart.jsonl")       # render: python -m repro trace ...
"""

from .exec.graph_runner import random_inputs, run_compiled, run_graph_reference
from .exec.reference import evaluate_compute
from .exec.single_op import run_compute
from .graph.builder import GraphBuilder
from .graph.graph import Graph
from .ir.compute import Access, Axis, ComputeDef
from .ir.expr import Var
from .ir.nest import Program, Stage
from .ir.tensor import Tensor
from .layout.layout import Layout
from .layout.presets import fixed_scheme_layouts
from .layout.propagation import PropagationEngine, PropagationState
from .layout.templates import template_for
from .loops.schedule import LoopSchedule
from .lower.lower import LoweringError, lower_compute
from .machine.latency import estimate_program, estimate_stage
from .machine.spec import get_machine
from .machine.trace import profile_program, profile_stage
from .obs import MetricsRegistry, Profiler, Trace, load_trace, profile_report
from .obs.log import log, setup_logging
from .ops.conv import conv1d, conv2d, conv3d, depthwise_conv2d
from .ops.gemm import batch_gemm, dense, gemm
from .pipeline import CompileOptions, CompiledModel, compile_graph
from .tuning.baselines import (
    tune_alt,
    tune_alt_ol,
    tune_ansor_like,
    tune_autotvm_like,
    tune_flextensor_like,
    tune_random_layout,
    vendor_library,
)
from .report import (
    full_report,
    layout_report,
    stage_cost_report,
    timeline_report,
    trace_report,
    tuning_report,
)
from .tuning.genetic import tune_genetic
from .tuning.pretrain import pretrain
from .tuning.records import RecordStore, TuneRecord, apply_record, record_from_result
from .tuning.task import TuningTask

__version__ = "0.1.0"

__all__ = [
    "Access", "Axis", "CompileOptions", "CompiledModel", "ComputeDef",
    "Graph", "GraphBuilder", "Layout", "LoopSchedule", "LoweringError",
    "MetricsRegistry", "Profiler", "Program", "PropagationEngine",
    "PropagationState", "profile_report",
    "Stage", "Tensor", "Trace", "TuningTask", "Var", "batch_gemm",
    "compile_graph", "conv1d", "conv2d", "conv3d", "dense",
    "depthwise_conv2d", "estimate_program", "estimate_stage",
    "evaluate_compute", "fixed_scheme_layouts", "gemm", "get_machine",
    "load_trace", "log", "lower_compute", "pretrain", "profile_program",
    "profile_stage", "random_inputs", "run_compiled", "run_compute",
    "run_graph_reference", "setup_logging", "template_for", "tune_alt",
    "tune_alt_ol", "tune_ansor_like", "tune_autotvm_like",
    "tune_flextensor_like", "tune_genetic", "tune_random_layout",
    "vendor_library", "RecordStore", "TuneRecord", "apply_record",
    "record_from_result", "full_report", "layout_report",
    "stage_cost_report", "timeline_report", "trace_report", "tuning_report",
]
