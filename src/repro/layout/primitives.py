"""Layout primitive functions (paper Section 4.1, Table 1 and Eq. 1).

Six primitives manipulate tensor storage formats:

====================  ========================================================
``split``             one dimension -> several tiled dimensions
``reorder``           permute dimensions
``fuse``              merge consecutive dimensions
``unfold``            *overlapped* tiling of one dimension (advanced)
``pad``               append zeros along one dimension (advanced)
``store_at``          attach one tensor into another's buffer (advanced)
====================  ========================================================

Every primitive provides four views of itself:

- ``apply_dims``      the transformed shape (Table 1, column 3);
- ``forward_exprs``   the transformed accessing expressions (column 4 / Eq. 1);
- ``inverse_exprs``   the physical->logical index map (``fold`` / ``unpad`` /
  inverse-split...; always well defined even for ``unfold``, because the
  overlap only makes the *forward* map one-to-many);
- ``materialize`` / ``unmaterialize``   the same transform on numpy data, used
  by the reference executor and by offline re-layout of constant tensors.

Rewritten accesses are exactly what the compiler pass of Section 6 injects, so
no operator is ever re-implemented by hand when a layout changes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ir.expr import Expr, Var, affine_coefficients, simplify, to_expr


class Dim:
    """One physical dimension: a provenance-tracking name and a size."""

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int):
        size = int(size)
        if size <= 0:
            raise ValueError(f"dim {name!r} must have positive size, got {size}")
        self.name = name
        self.size = size

    def __repr__(self) -> str:
        return f"{self.name}:{self.size}"


class RewriteContext:
    """Information the unfold rewrite needs about the surrounding loop nest.

    ``var_extents`` maps loop-variable name -> extent; ``reduce_vars`` names
    the reduction variables.  Both come from the operator being lowered.
    """

    def __init__(self, var_extents: Dict[str, int], reduce_vars: Set[str]):
        self.var_extents = dict(var_extents)
        self.reduce_vars = set(reduce_vars)


class LayoutError(ValueError):
    """Raised when a primitive cannot legally apply."""


class Primitive:
    """Base class for layout primitives."""

    #: advanced primitives may duplicate or extend data (paper Sec. 4.2,
    #: propagation constraint 1)
    advanced = False

    def apply_dims(self, dims: List[Dim]) -> List[Dim]:
        raise NotImplementedError

    def forward_exprs(
        self, exprs: List[Expr], dims: List[Dim], ctx: Optional[RewriteContext]
    ) -> List[Expr]:
        """Rewrite logical accessing expressions into the new layout."""
        raise NotImplementedError

    def inverse_exprs(self, exprs: List[Expr], dims: List[Dim]) -> List[Expr]:
        """Map physical index expressions back to the pre-primitive layout.

        ``dims`` is the dimension list *before* this primitive applied.
        """
        raise NotImplementedError

    def materialize(self, array: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def unmaterialize(self, array: np.ndarray, dims: List[Dim]) -> np.ndarray:
        raise NotImplementedError

    def is_nontrivial(self) -> bool:
        """Whether this primitive expands data (blocks layout propagation)."""
        return False


# ---------------------------------------------------------------------------
# Basic primitives
# ---------------------------------------------------------------------------

class Split(Primitive):
    """Split dimension ``dim`` into ``len(factors)`` new dimensions.

    ``prod(factors)`` must equal the dimension size (perfect split), so the
    rewritten arithmetic needs no boundary guards.
    """

    def __init__(self, dim: int, factors: Sequence[int]):
        factors = tuple(int(f) for f in factors)
        if len(factors) < 2:
            raise LayoutError("split needs at least two factors")
        if any(f <= 0 for f in factors):
            raise LayoutError(f"split factors must be positive, got {factors}")
        self.dim = int(dim)
        self.factors = factors

    def apply_dims(self, dims: List[Dim]) -> List[Dim]:
        d = dims[self.dim]
        prod = math.prod(self.factors)
        if prod != d.size:
            raise LayoutError(
                f"split of {d.name} (size {d.size}) by factors {self.factors} "
                f"is not exact (product {prod})"
            )
        new = [Dim(f"{d.name}.{j}", f) for j, f in enumerate(self.factors)]
        return dims[: self.dim] + new + dims[self.dim + 1 :]

    def forward_exprs(self, exprs, dims, ctx):
        # index_j = (e // suffix_j) % F_j; the leading index needs no mod.
        e = exprs[self.dim]
        pieces: List[Expr] = []
        suffix = math.prod(self.factors)
        for j, f in enumerate(self.factors):
            suffix //= f
            piece: Expr = e
            if suffix > 1:
                piece = piece // suffix
            if j > 0:
                piece = piece % f
            pieces.append(simplify(piece))
        return exprs[: self.dim] + pieces + exprs[self.dim + 1 :]

    def inverse_exprs(self, exprs, dims):
        m = len(self.factors)
        parts = exprs[self.dim : self.dim + m]
        suffix = math.prod(self.factors)
        total: Expr = to_expr(0)
        for part, f in zip(parts, self.factors):
            suffix //= f
            total = total + part * suffix
        return exprs[: self.dim] + [simplify(total)] + exprs[self.dim + m :]

    def materialize(self, array: np.ndarray) -> np.ndarray:
        shape = array.shape
        return array.reshape(shape[: self.dim] + self.factors + shape[self.dim + 1 :])

    def unmaterialize(self, array: np.ndarray, dims: List[Dim]) -> np.ndarray:
        shape = array.shape
        m = len(self.factors)
        merged = math.prod(self.factors)
        return array.reshape(shape[: self.dim] + (merged,) + shape[self.dim + m :])

    def __repr__(self) -> str:
        return f"split(dim={self.dim}, factors={list(self.factors)})"


class Reorder(Primitive):
    """Permute dimensions by ``perm`` (new position j holds old dim perm[j])."""

    def __init__(self, perm: Sequence[int]):
        perm = tuple(int(p) for p in perm)
        if sorted(perm) != list(range(len(perm))):
            raise LayoutError(f"reorder perm {perm} is not a permutation")
        self.perm = perm

    def apply_dims(self, dims: List[Dim]) -> List[Dim]:
        if len(self.perm) != len(dims):
            raise LayoutError(
                f"reorder perm has {len(self.perm)} entries for {len(dims)} dims"
            )
        return [dims[p] for p in self.perm]

    def forward_exprs(self, exprs, dims, ctx):
        return [exprs[p] for p in self.perm]

    def inverse_exprs(self, exprs, dims):
        inv = [0] * len(self.perm)
        for new_pos, old_pos in enumerate(self.perm):
            inv[old_pos] = new_pos
        return [exprs[i] for i in inv]

    def materialize(self, array: np.ndarray) -> np.ndarray:
        return np.transpose(array, self.perm)

    def unmaterialize(self, array: np.ndarray, dims: List[Dim]) -> np.ndarray:
        return np.transpose(array, np.argsort(self.perm))

    def __repr__(self) -> str:
        return f"reorder(perm={list(self.perm)})"


class Fuse(Primitive):
    """Merge the consecutive dimensions ``dims_range`` into one."""

    def __init__(self, start: int, count: int):
        if count < 2:
            raise LayoutError("fuse needs at least two dimensions")
        self.start = int(start)
        self.count = int(count)
        self._sizes: Tuple[int, ...] = ()

    def apply_dims(self, dims: List[Dim]) -> List[Dim]:
        group = dims[self.start : self.start + self.count]
        if len(group) != self.count:
            raise LayoutError(
                f"fuse range [{self.start}, {self.start + self.count}) out of bounds"
            )
        self._sizes = tuple(d.size for d in group)
        name = "(" + "*".join(d.name for d in group) + ")"
        size = math.prod(self._sizes)
        return dims[: self.start] + [Dim(name, size)] + dims[self.start + self.count :]

    def forward_exprs(self, exprs, dims, ctx):
        sizes = [dims[self.start + j].size for j in range(self.count)]
        total: Expr = to_expr(0)
        suffix = math.prod(sizes)
        for j in range(self.count):
            suffix //= sizes[j]
            total = total + exprs[self.start + j] * suffix
        return (
            exprs[: self.start]
            + [simplify(total)]
            + exprs[self.start + self.count :]
        )

    def inverse_exprs(self, exprs, dims):
        sizes = [dims[self.start + j].size for j in range(self.count)]
        e = exprs[self.start]
        parts: List[Expr] = []
        suffix = math.prod(sizes)
        for j, size in enumerate(sizes):
            suffix //= size
            piece: Expr = e
            if suffix > 1:
                piece = piece // suffix
            if j > 0:
                piece = piece % size
            parts.append(simplify(piece))
        return exprs[: self.start] + parts + exprs[self.start + 1 :]

    def materialize(self, array: np.ndarray) -> np.ndarray:
        shape = array.shape
        merged = math.prod(shape[self.start : self.start + self.count])
        return array.reshape(
            shape[: self.start] + (merged,) + shape[self.start + self.count :]
        )

    def unmaterialize(self, array: np.ndarray, dims: List[Dim]) -> np.ndarray:
        sizes = tuple(dims[self.start + j].size for j in range(self.count))
        shape = array.shape
        return array.reshape(shape[: self.start] + sizes + shape[self.start + 1 :])

    def __repr__(self) -> str:
        return f"fuse(start={self.start}, count={self.count})"


# ---------------------------------------------------------------------------
# Advanced primitives
# ---------------------------------------------------------------------------

class Unfold(Primitive):
    """Overlapped tiling: size-``D`` dim -> ``(ceil((D-B)/S)+1, B)`` dims.

    ``B`` is the tile size, ``S`` the stride between tile starts (Fig. 2).
    Elements shared by neighbouring tiles are *duplicated* in memory, which
    is what buys contiguity for sliding-window consumers.

    The forward access rewrite implements Eq. 1: the access expression along
    this dimension must have the sliding-window shape ``V*i + r`` with ``i``
    built from spatial loop variables and ``r`` from reduction variables
    (plus a constant).  The tile index is then ``i // w`` with
    ``w = floor((B - M) / V) + 1`` windows per tile.
    """

    advanced = True

    def __init__(self, dim: int, tile_size: int, stride: int):
        tile_size = int(tile_size)
        stride = int(stride)
        if tile_size <= 0 or stride <= 0:
            raise LayoutError("unfold needs positive tile_size and stride")
        self.dim = int(dim)
        self.tile_size = tile_size
        self.stride = stride

    def n_tiles(self, size: int) -> int:
        if self.tile_size > size:
            raise LayoutError(
                f"unfold tile_size {self.tile_size} exceeds dimension size {size}"
            )
        return (size - self.tile_size + self.stride - 1) // self.stride + 1

    def apply_dims(self, dims: List[Dim]) -> List[Dim]:
        d = dims[self.dim]
        tiles = self.n_tiles(d.size)
        new = [Dim(f"{d.name}.t", tiles), Dim(f"{d.name}.b", self.tile_size)]
        return dims[: self.dim] + new + dims[self.dim + 1 :]

    def forward_exprs(self, exprs, dims, ctx):
        if ctx is None:
            raise LayoutError("unfold access rewrite requires a RewriteContext")
        e = simplify(exprs[self.dim])
        coeffs = affine_coefficients(e)
        if coeffs is None:
            raise LayoutError(f"unfold requires an affine access, got {e}")
        const = coeffs.pop("", 0)
        spatial = {v: c for v, c in coeffs.items() if v not in ctx.reduce_vars and c}
        reduction = {v: c for v, c in coeffs.items() if v in ctx.reduce_vars and c}
        if any(c < 0 for c in reduction.values()) or const < 0:
            raise LayoutError(f"unfold does not support negative offsets in {e}")
        if not spatial:
            raise LayoutError(f"unfold access {e} has no spatial component")
        # Window stride V: gcd of the spatial coefficients.
        conv_stride = 0
        for c in spatial.values():
            conv_stride = math.gcd(conv_stride, abs(c))
        # Window index i such that spatial part == V * i.
        i_expr: Expr = to_expr(0)
        for v, c in sorted(spatial.items()):
            i_expr = i_expr + Var(v) * (c // conv_stride)
        i_expr = simplify(i_expr)
        # Window size M: max of the reduction part + const, plus one.
        window = const + 1
        for v, c in reduction.items():
            window += c * (ctx.var_extents[v] - 1)
        per_tile = (self.tile_size - window) // conv_stride + 1
        if per_tile <= 0:
            raise LayoutError(
                f"unfold tile_size {self.tile_size} smaller than window {window}"
            )
        if self.stride != conv_stride * per_tile:
            raise LayoutError(
                f"unfold stride {self.stride} incompatible with access {e}: "
                f"expected V*w = {conv_stride}*{per_tile}"
            )
        tile = simplify(i_expr // per_tile)
        offset = simplify(e - tile * self.stride)
        return exprs[: self.dim] + [tile, offset] + exprs[self.dim + 1 :]

    def inverse_exprs(self, exprs, dims):
        t, b = exprs[self.dim], exprs[self.dim + 1]
        flat = simplify(t * self.stride + b)
        return exprs[: self.dim] + [flat] + exprs[self.dim + 2 :]

    def materialize(self, array: np.ndarray) -> np.ndarray:
        size = array.shape[self.dim]
        tiles = self.n_tiles(size)
        moved = np.moveaxis(array, self.dim, 0)
        out = np.zeros((tiles, self.tile_size) + moved.shape[1:], dtype=array.dtype)
        for t in range(tiles):
            start = t * self.stride
            stop = min(start + self.tile_size, size)
            out[t, : stop - start] = moved[start:stop]
        return np.moveaxis(out, (0, 1), (self.dim, self.dim + 1))

    def unmaterialize(self, array: np.ndarray, dims: List[Dim]) -> np.ndarray:
        size = dims[self.dim].size
        moved = np.moveaxis(array, (self.dim, self.dim + 1), (0, 1))
        out = np.empty((size,) + moved.shape[2:], dtype=array.dtype)
        tiles = moved.shape[0]
        for x in range(size):
            t = min(x // self.stride, tiles - 1)
            out[x] = moved[t, x - t * self.stride]
        return np.moveaxis(out, 0, self.dim)

    def is_nontrivial(self) -> bool:
        # Overlapped tiling duplicates data whenever tiles overlap.
        return self.tile_size != self.stride

    def __repr__(self) -> str:
        return f"unfold(dim={self.dim}, tile_size={self.tile_size}, stride={self.stride})"


class Pad(Primitive):
    """Append ``after`` zeros (and prepend ``before``) along one dimension.

    Used to align rows to cache-line/bank boundaries (paper Sec. 4.1.2).
    """

    advanced = True

    def __init__(self, dim: int, before: int = 0, after: int = 0):
        if before < 0 or after < 0 or (before == 0 and after == 0):
            raise LayoutError("pad needs non-negative padding with at least one side")
        self.dim = int(dim)
        self.before = int(before)
        self.after = int(after)

    def apply_dims(self, dims: List[Dim]) -> List[Dim]:
        d = dims[self.dim]
        new = Dim(f"{d.name}+p", d.size + self.before + self.after)
        return dims[: self.dim] + [new] + dims[self.dim + 1 :]

    def forward_exprs(self, exprs, dims, ctx):
        e = simplify(exprs[self.dim] + self.before)
        return exprs[: self.dim] + [e] + exprs[self.dim + 1 :]

    def inverse_exprs(self, exprs, dims):
        e = simplify(exprs[self.dim] - self.before)
        return exprs[: self.dim] + [e] + exprs[self.dim + 1 :]

    def materialize(self, array: np.ndarray) -> np.ndarray:
        pads = [(0, 0)] * array.ndim
        pads[self.dim] = (self.before, self.after)
        return np.pad(array, pads)

    def unmaterialize(self, array: np.ndarray, dims: List[Dim]) -> np.ndarray:
        sl = [slice(None)] * array.ndim
        sl[self.dim] = slice(self.before, self.before + dims[self.dim].size)
        return array[tuple(sl)]

    def is_nontrivial(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"pad(dim={self.dim}, before={self.before}, after={self.after})"


class StoreAt(Primitive):
    """Attach this tensor into a host tensor's buffer (paper Sec. 4.1.2).

    The supported pattern is the paper's example: a rank-(n-1) tensor (e.g. a
    bias vector) appended at the end of one dimension of a rank-n host (e.g.
    one extra row of a weight matrix), so the pair can be streamed through the
    same cache lines.  The actual buffer merge happens in the lowering pass,
    which can see both tensors; this record carries the binding.
    """

    advanced = True

    def __init__(self, host: str, host_dim: int):
        self.host = host
        self.host_dim = int(host_dim)

    def apply_dims(self, dims: List[Dim]) -> List[Dim]:
        return list(dims)  # logical dims unchanged; merge happens at lowering

    def forward_exprs(self, exprs, dims, ctx):
        return list(exprs)

    def inverse_exprs(self, exprs, dims):
        return list(exprs)

    def materialize(self, array: np.ndarray) -> np.ndarray:
        return array

    def unmaterialize(self, array: np.ndarray, dims: List[Dim]) -> np.ndarray:
        return array

    def is_nontrivial(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"store_at(host={self.host!r}, host_dim={self.host_dim})"
