"""Layout propagation (paper Section 4.2, Algorithm 1).

Changing a tensor's layout can incur two kinds of overhead:

- **layout-conversion overhead** -- a runtime conversion operator copying the
  tensor into the new layout (Fig. 5a);
- **fusion-conflict overhead** -- a transformed output layout reconstructs
  the producer's loop nest so elementwise consumers no longer align for
  fusion (Fig. 6).

Propagation eliminates both when legal: the *producer absorbs* a requested
input layout (Fig. 5b -- e.g. the padding operator pads and converts in one
pass), and an output layout is *replicated* onto downstream elementwise
operators so their loop nests reconstruct identically and fusion survives
(Fig. 7).  Algorithm 1's three constraints bound the propagation:

1. non-trivial advanced primitives (overlapped unfold, pad, store_at) are
   never replicated -- they expand data;
2. complex operators tune their own layouts -- propagation never crosses
   them; a conversion operator is inserted between two complex operators;
3. replication requires an elementwise operator with equal shapes, since
   primitive parameters are shape-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..graph.graph import Graph
from ..ir.compute import ComputeDef
from ..ir.tensor import Tensor
from ..obs.trace import NULL_TRACE, Trace
from ..ops.transform import layout_conversion
from .layout import Layout


@dataclass
class PropagationState:
    """Tracks per-tensor layouts and what propagation did to get them."""

    layouts: Dict[str, Layout] = field(default_factory=dict)
    locked: Set[str] = field(default_factory=set)
    conversions: List[str] = field(default_factory=list)  # inserted node names
    replicated: Dict[str, str] = field(default_factory=dict)  # tensor -> source

    def layout_of(self, tensor: Tensor) -> Layout:
        lay = self.layouts.get(tensor.name)
        if lay is None:
            lay = Layout(tensor.shape)
            self.layouts[tensor.name] = lay
        return lay


class PropagationEngine:
    """Applies a complex operator's tuned layouts to the graph.

    ``enable_replication=False`` gives the paper's **ALT-WP** ablation:
    conversions between adjacent operators are still absorbed by producers,
    but layouts are not replicated downstream, so fusion conflicts remain.
    ``enable_absorption=False`` additionally inserts explicit conversion
    operators everywhere (the naive Fig. 5a strategy).
    """

    def __init__(
        self,
        graph: Graph,
        state: Optional[PropagationState] = None,
        enable_replication: bool = True,
        enable_absorption: bool = True,
        trace: Optional[Trace] = None,
    ):
        self.graph = graph
        self.state = state or PropagationState()
        self.enable_replication = enable_replication
        self.enable_absorption = enable_absorption
        self.trace = trace if trace is not None else NULL_TRACE
        self._conversion_count = 0

    # -- public API -------------------------------------------------------------
    def assign_operator_layouts(
        self, op: ComputeDef, chosen: Dict[str, Layout]
    ) -> None:
        """Install tuned layouts for one complex operator's tensors.

        ``chosen`` maps tensor names (inputs and/or output of ``op``) to the
        tuned layouts.  Input layouts are absorbed, converted, or taken
        as-is; the output layout is replicated downstream per Algorithm 1.
        """
        for t in op.inputs:
            lay = chosen.get(t.name)
            if lay is not None:
                self._assign_input(op, t, lay)
        out_lay = chosen.get(op.output.name)
        if out_lay is not None:
            self._assign_output(op, out_lay)

    # -- input side ----------------------------------------------------------------
    def _assign_input(self, op: ComputeDef, tensor: Tensor, layout: Layout) -> None:
        state = self.state
        current = state.layouts.get(tensor.name)
        if current is not None and current.signature() == layout.signature():
            return
        if tensor.role == "const":
            # weights re-laid-out offline at zero runtime cost
            state.layouts[tensor.name] = layout
            state.locked.add(tensor.name)
            return
        producer = self.graph.producer_of(tensor.name)
        absorbable = (
            self.enable_absorption
            and tensor.name not in state.locked
            and producer is not None
            and not producer.is_complex
        )
        if absorbable:
            # Fig. 5b: the simple producer yields the new layout directly.
            state.layouts[tensor.name] = layout
            state.locked.add(tensor.name)
            self.trace.metrics.counter("propagation.absorptions").inc()
            return
        self._insert_conversion(op, tensor, layout)

    def _insert_conversion(
        self, consumer: ComputeDef, tensor: Tensor, layout: Layout
    ) -> None:
        """Fig. 5a: explicit conversion operator before ``consumer``."""
        self._conversion_count += 1
        conv = layout_conversion(
            tensor, name=f"convert{self._conversion_count}.{tensor.name}"
        )
        self.graph.insert_before(conv, consumer, tensor.name)
        self.state.layouts[conv.output.name] = layout
        self.state.locked.add(conv.output.name)
        self.state.conversions.append(conv.name)
        self.trace.metrics.counter("propagation.conversions").inc()
        self.trace.event(
            "conversion_inserted",
            tensor=tensor.name,
            consumer=consumer.name,
            node=conv.name,
        )

    # -- output side -----------------------------------------------------------------
    def _assign_output(self, op: ComputeDef, layout: Layout) -> None:
        state = self.state
        out_name = op.output.name
        if out_name in state.locked:
            existing = state.layouts.get(out_name)
            if existing is not None and existing.signature() != layout.signature():
                raise ValueError(
                    f"output layout of {op.name} already locked to a "
                    "different layout"
                )
        state.layouts[out_name] = layout
        state.locked.add(out_name)
        if self.enable_replication:
            self._replicate_downstream(op.output, layout)

    def _replicate_downstream(self, tensor: Tensor, layout: Layout) -> None:
        """Algorithm 1 main loop: BFS through elementwise consumers."""
        if layout.is_identity:
            return
        if layout.has_nontrivial_advanced():
            return  # constraint 1
        state = self.state
        queue: List[Tensor] = [tensor]
        visited: Set[str] = set()
        while queue:
            src = queue.pop(0)
            if src.name in visited:
                continue
            visited.add(src.name)
            for consumer in self.graph.consumers_of(src.name):
                if consumer.is_complex:
                    continue  # constraint 2: stop silently (line 10)
                out = consumer.output
                if out.shape != src.shape:
                    continue  # constraint 3: shape-dependent parameters
                if not consumer.is_elementwise:
                    continue
                if out.name in state.locked:
                    continue
                state.layouts[out.name] = layout.replay_onto(Layout(out.shape))
                state.locked.add(out.name)
                state.replicated[out.name] = tensor.name
                self.trace.metrics.counter("propagation.replications").inc()
                queue.append(out)
