"""Fixed layout schemes used by baselines and the motivation experiments.

These are the layouts prior systems choose *before* loop tuning (paper
Section 2): ``NOHW`` (framework default on GPU), ``NHWO`` (TensorFlow CPU
default), ``HWON`` (DSP style), NeoCPU's packed ``N O/ot H W ot``
(``NCHWc``), and for GMM the ``KN`` / ``NK`` / ``NKn`` variants of Fig. 1.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.compute import ComputeDef
from .layout import Layout

CONV_SCHEMES = ("NOHW", "NHWO", "HWON", "NCHWc")
GEMM_SCHEMES = ("KN", "NK", "NKn")


def _conv_tensors(comp: ComputeDef):
    inp, ker = comp.inputs[0], comp.inputs[1]
    return comp.output, inp, ker


def conv_scheme_layouts(
    comp: ComputeDef, scheme: str, ot: Optional[int] = None, it: Optional[int] = None
) -> Dict[str, Layout]:
    """Layouts for a convolution under a named fixed scheme.

    Works for C1D/C2D/C3D and variants; "O" in the scheme names generalizes
    to the channel dimension (``NOW``, ``NOHW``, ``NODHW``...).
    """
    if scheme not in CONV_SCHEMES:
        raise ValueError(f"unknown conv scheme {scheme!r}; choose from {CONV_SCHEMES}")
    out, inp, ker = _conv_tensors(comp)
    depthwise = "depthwise" in comp.tags
    n_spatial = out.ndim - 2
    s_names = ["D", "H", "W"][-n_spatial:]
    out_names = ["N", "O"] + s_names
    in_names = ["N", "I"] + s_names
    if depthwise:
        ker_names = ["O"] + ["KD", "KH", "KW"][-len(ker.shape) + 1 :]
    else:
        ker_names = ["O", "I"] + ["KD", "KH", "KW"][-len(ker.shape) + 2 :]

    out_lay = Layout(out.shape, out_names)
    in_lay = Layout(inp.shape, in_names)
    ker_lay = Layout(ker.shape, ker_names)

    if scheme == "NOHW":
        pass  # identity logical layout; kernel stays OIRS
    elif scheme == "NHWO":
        out_lay = out_lay.reorder(["N"] + s_names + ["O"])
        in_lay = in_lay.reorder(["N"] + s_names + ["I"])
        if depthwise:
            ker_lay = ker_lay.reorder(ker_names[1:] + ["O"])
        else:
            ker_lay = ker_lay.reorder(ker_names[2:] + ["I", "O"])
    elif scheme == "HWON":
        out_lay = out_lay.reorder(s_names + ["O", "N"])
        in_lay = in_lay.reorder(s_names + ["I", "N"])
        if not depthwise:
            ker_lay = ker_lay.reorder(ker_names[2:] + ["O", "I"])
    elif scheme == "NCHWc":
        o_size = out.shape[1]
        i_size = inp.shape[1]
        ot = min(ot or 16, o_size)
        while o_size % ot:
            ot -= 1
        it = min(it or ot, i_size)
        while i_size % it:
            it -= 1
        out_lay = out_lay.split("O", [o_size // ot, ot]).reorder(
            ["N", "O.0"] + s_names + ["O.1"]
        )
        in_lay = in_lay.split("I", [i_size // it, it]).reorder(
            ["N", "I.0"] + s_names + ["I.1"]
        )
        if depthwise:
            ker_lay = ker_lay.split("O", [o_size // ot, ot]).reorder(
                ["O.0"] + ker_names[1:] + ["O.1"]
            )
        else:
            ig = ker.shape[1]
            kit = min(it, ig)
            while ig % kit:
                kit -= 1
            ker_lay = (
                ker_lay.split("O", [o_size // ot, ot])
                .split("I", [ig // kit, kit])
                .reorder(["O.0", "I.0"] + ker_names[2:] + ["I.1", "O.1"])
            )
    return {out.name: out_lay, inp.name: in_lay, ker.name: ker_lay}


def gemm_scheme_layouts(
    comp: ComputeDef, scheme: str, mt: int = 16, nt: int = 16, kt: int = 16
) -> Dict[str, Layout]:
    """Layouts for GMM under ``KN`` / ``NK`` / ``NKn`` (paper Fig. 1c/1d)."""
    if scheme not in GEMM_SCHEMES:
        raise ValueError(f"unknown gemm scheme {scheme!r}; choose from {GEMM_SCHEMES}")
    a, b = comp.inputs[0], comp.inputs[1]
    out = comp.output
    batched = "batch_gemm" in comp.tags
    lead = ["B"] if batched else []
    la = Layout(a.shape, lead + ["M", "K"])
    lb = Layout(b.shape, lead + ["K", "N"])
    lc = Layout(out.shape, lead + ["M", "N"])
    if scheme == "KN":
        pass
    elif scheme == "NK":
        lb = lb.reorder(lead + ["N", "K"])
    else:  # NKn: M/m N/n m n ; M/m K m ; N/n K n  (paper's custom tiling)
        m, n, k = comp.attrs["mnk"]
        mt = _snap(m, mt)
        nt = _snap(n, nt)
        lc = lc.split("M", [m // mt, mt]).split("N", [n // nt, nt]).reorder(
            lead + ["M.0", "N.0", "M.1", "N.1"]
        )
        la = la.split("M", [m // mt, mt]).reorder(lead + ["M.0", "K", "M.1"])
        lb = lb.split("N", [n // nt, nt]).reorder(lead + ["N.0", "K", "N.1"])
    return {out.name: lc, a.name: la, b.name: lb}


def _snap(size: int, factor: int) -> int:
    factor = min(factor, size)
    while size % factor:
        factor -= 1
    return factor


def fixed_scheme_layouts(comp: ComputeDef, scheme: str, **kw) -> Dict[str, Layout]:
    """Dispatch on operator family."""
    if "conv" in comp.tags:
        return conv_scheme_layouts(comp, scheme, **kw)
    if "gemm" in comp.tags:
        return gemm_scheme_layouts(comp, scheme, **kw)
    return {}


def default_schemes_for(comp: ComputeDef):
    if "conv" in comp.tags:
        return CONV_SCHEMES
    if "gemm" in comp.tags:
        return GEMM_SCHEMES
    return ()
