"""Layout tuning templates (paper Section 5.1).

Layout spaces are pruned two ways, exactly as in the paper: only *complex*
operators (convolutions, GMM) get layout tuning tasks, and each tensor's
space is a tiling template exposing a handful of split parameters.  Template
structure encodes the two observations of Section 5.1:

1. the tiled channel dimension goes last so an input element is reused
   across many output channels while channels load with SIMD;
2. spatial tiling uses *layout* tiling (contiguous tiles, via ``unfold``
   with overlap for convolution inputs) rather than plain loop tiling, to
   exploit hardware prefetching.

For C2D (one level) the template is the paper's:

- output ``N  H/ht  W/wt  O/ot  ht wt ot``          (tunable ht, wt, ot)
- input  ``N  H/ht  W/wt  I/it  (V(ht-1)+KH') (V(wt-1)+KW')  it``  (tunable it)
- weight ``O/ot'  I/it'  KH KW  it' ot'``           (tunable it', ot')

Two-level templates split each tiled dimension once more (Section 7.3.3).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.compute import ComputeDef
from ..tuning.space import Config, ConfigSpace, ParamSpec, divisors, nearest_choice
from .layout import Layout


class LayoutTemplate:
    """Base class: a pruned, parameterized layout space for one operator."""

    def space(self) -> ConfigSpace:
        raise NotImplementedError

    def instantiate(self, config: Config) -> Dict[str, Layout]:
        """Decode a configuration into per-tensor layouts."""
        raise NotImplementedError


def _tile_chain(lay: Layout, dim_name: str, factors: Sequence[int]) -> Layout:
    """Split ``dim_name`` by the trailing ``factors`` (inner tiles)."""
    size = lay.dims[lay.index_of(dim_name)].size
    inner = math.prod(factors)
    return lay.split(dim_name, [size // inner] + list(factors))


class _TiledDim:
    """Bookkeeping for one optionally-tiled dimension.

    A tile factor of 1 means *no primitive is applied* (the dim stays where
    it is), and a factor equal to the size moves the whole dim into the
    tile block without splitting.  This keeps classic layouts -- NOHW
    (``ot=1``), NHWO (``ot=O``), NeoCPU's NCHWc (``ht=wt=1, ot=16``) -- as
    exact points of the template space.
    """

    def __init__(self, lay: Layout, name: str, size: int, factors: Sequence[int]):
        self.name = name
        self.size = size
        inner = math.prod(factors)
        self.outer_parts: List[str] = []
        self.inner_parts: List[str] = []
        if inner <= 1:
            self.layout = lay
            self.outer_parts = [name]
        elif inner >= size:
            if len(factors) > 1 and factors[0] > 1 and factors[0] < size:
                self.layout = lay.split(name, [size // factors[-1], factors[-1]])
                self.inner_parts = [f"{name}.0", f"{name}.1"]
            else:
                self.layout = lay
                self.inner_parts = [name]
        else:
            live = [f for f in factors if f > 1]
            self.layout = lay.split(name, [size // math.prod(live)] + live)
            self.outer_parts = [f"{name}.0"]
            self.inner_parts = [f"{name}.{j+1}" for j in range(len(live))]


def _level_factors(size: int, config: Config, base: str, levels: int) -> List[int]:
    """Read one or two tile factors for a dimension from the config.

    Two-level factors are snapped so their product divides the size.
    """
    f1 = int(config[f"{base}"])
    if levels == 1:
        return [f1]
    f2 = int(config[f"{base}2"])
    f2 = nearest_choice(divisors(size // f1), f2)
    return [f2, f1]


class ConvLayoutTemplate(LayoutTemplate):
    """Template for C1D/C2D/C3D and the grouped/dilated/depthwise variants."""

    def __init__(self, comp: ComputeDef, levels: int = 1):
        if "conv" not in comp.tags:
            raise ValueError(f"{comp.name} is not a convolution")
        if levels not in (1, 2):
            raise ValueError("levels must be 1 or 2")
        self.comp = comp
        self.levels = levels
        attrs = comp.attrs
        self.stride = attrs["stride"]
        self.dilation = attrs["dilation"]
        self.kernel: Tuple[int, ...] = tuple(attrs["kernel"])
        self.spatial_axes: Tuple[str, ...] = tuple(attrs["spatial_axes"])
        self.depthwise = "depthwise" in comp.tags

        inputs = comp.inputs
        self.inp, self.ker = inputs[0], inputs[1]
        self.out = comp.output
        # logical dim names for building layouts
        self.spatial_names = ["D", "H", "W"][-len(self.spatial_axes):]
        self.out_names = ["N", "O"] + self.spatial_names
        self.in_names = ["N", "I"] + self.spatial_names
        if self.depthwise:
            self.ker_names = ["O"] + ["KD", "KH", "KW"][-len(self.kernel):]
        else:
            self.ker_names = ["O", "I"] + ["KD", "KH", "KW"][-len(self.kernel):]

        axes = {a.name: a.extent for a in comp.axes}
        self.out_channels = self.out.shape[1]
        self.in_channels = self.inp.shape[1]
        self.ker_in_channels = 1 if self.depthwise else self.ker.shape[1]
        self.spatial_sizes = [axes[a] for a in self.spatial_axes]

        params: List[ParamSpec] = []
        prefix = f"{comp.name}."
        for name, size in zip(self.spatial_names, self.spatial_sizes):
            params.append(ParamSpec(prefix + f"{name.lower()}t", divisors(size), default=1))
        params.append(
            ParamSpec(prefix + "ot", divisors(self.out_channels),
                      default=min(self.out_channels, 8))
        )
        params.append(
            ParamSpec(prefix + "it", divisors(self.in_channels),
                      default=min(self.in_channels, 4))
        )
        if not self.depthwise:
            params.append(ParamSpec(prefix + "kot", divisors(self.out_channels),
                                    default=min(self.out_channels, 8)))
            params.append(ParamSpec(prefix + "kit", divisors(self.ker_in_channels),
                                    default=min(self.ker_in_channels, 4)))
        if self.levels == 2:
            extra: List[ParamSpec] = []
            for p in params:
                base_size = max(p.choices)
                extra.append(ParamSpec(p.name + "2", divisors(base_size), default=1))
            params += extra
        # Template extension over the paper: the coarse channel block may be
        # placed before the spatial dims (co=1, NCHWc-style) or after them
        # (co=0, the paper's fixed order).  One bit doubles the space but
        # lets the template subsume NeoCPU's packed layout exactly.
        params.append(ParamSpec(prefix + "co", [0, 1], default=0))
        self._space = ConfigSpace(params, name=f"layout:{comp.name}")
        self.prefix = prefix

    def space(self) -> ConfigSpace:
        return self._space

    # -- decoding ---------------------------------------------------------------
    def instantiate(self, config: Config) -> Dict[str, Layout]:
        p = self.prefix
        cfg = config
        spatial_factors = [
            _level_factors(size, cfg, p + f"{name.lower()}t", self.levels)
            for name, size in zip(self.spatial_names, self.spatial_sizes)
        ]
        ot = _level_factors(self.out_channels, cfg, p + "ot", self.levels)
        it = _level_factors(self.in_channels, cfg, p + "it", self.levels)

        # output: N [coarse spatial][coarse O][fine spatial][fine O]
        lay = Layout(self.out.shape, self.out_names)
        outer: List[str] = ["N"]
        tiles: List[_TiledDim] = []
        for name, factors in zip(self.spatial_names, spatial_factors):
            td = _TiledDim(lay, name, lay.dims[lay.index_of(name)].size, factors)
            lay = td.layout
            tiles.append(td)
        o_td = _TiledDim(lay, "O", self.out_channels, ot)
        lay = o_td.layout
        channel_outer = bool(cfg.get(p + "co", 0))
        order: List[str] = ["N"]
        if not o_td.inner_parts:
            order.append("O")  # untouched channel dim keeps its position
        if channel_outer and o_td.inner_parts:
            order += o_td.outer_parts
            order += [part for td in tiles for part in td.outer_parts]
        else:
            order += [part for td in tiles for part in td.outer_parts]
            order += o_td.outer_parts if o_td.inner_parts else []
        # inner parts interleave level-major with the channel tile last per
        # level (paper's  N H/h'h W/w'w O/o'o  h' w' o'  h w o)
        groups = [td.inner_parts for td in tiles] + [o_td.inner_parts]
        max_levels = max((len(g) for g in groups), default=0)
        for lvl in range(max_levels):
            for g in groups:
                idx = len(g) - max_levels + lvl
                if idx >= 0:
                    order.append(g[idx])
        out_lay = lay.reorder(order)

        in_lay = self._input_layout(spatial_factors, it)
        ker_lay = self._kernel_layout(cfg)
        return {
            self.out.name: out_lay,
            self.inp.name: in_lay,
            self.ker.name: ker_lay,
        }

    def _input_layout(self, spatial_factors, it) -> Layout:
        lay = Layout(self.inp.shape, self.in_names)
        stride, dil = self.stride, self.dilation
        tile_parts: List[str] = []
        plain_parts: List[str] = []
        block_parts: List[str] = []
        for name, k, factors in zip(self.spatial_names, self.kernel, spatial_factors):
            f = math.prod(factors)  # windows per tile
            if f <= 1:
                plain_parts.append(name)
                continue
            window = (k - 1) * dil + 1
            tile = stride * (f - 1) + window
            lay = lay.unfold(name, tile, stride * f)
            tile_parts.append(f"{name}.t")
            block_parts.append(f"{name}.b")
        i_td = _TiledDim(lay, "I", self.in_channels, it)
        lay = i_td.layout
        order = ["N"] + tile_parts
        if not i_td.inner_parts:
            order.append("I")
        order += i_td.outer_parts if i_td.inner_parts else []
        order += plain_parts + block_parts + i_td.inner_parts
        return lay.reorder(order)

    def _kernel_layout(self, cfg: Config) -> Layout:
        lay = Layout(self.ker.shape, self.ker_names)
        knames = [n for n in self.ker_names if n.startswith("K")]
        if self.depthwise:
            ct = _level_factors(self.out_channels, cfg, self.prefix + "ot", self.levels)
            td = _TiledDim(lay, "O", self.out_channels, ct)
            order = (td.outer_parts if td.inner_parts else ["O"]) + knames
            order += td.inner_parts
            return td.layout.reorder(order)
        kot = _level_factors(self.out_channels, cfg, self.prefix + "kot", self.levels)
        kit = _level_factors(self.ker_in_channels, cfg, self.prefix + "kit", self.levels)
        o_td = _TiledDim(lay, "O", self.out_channels, kot)
        lay = o_td.layout
        i_td = _TiledDim(lay, "I", self.ker_in_channels, kit)
        lay = i_td.layout
        order = (o_td.outer_parts if o_td.inner_parts else ["O"]) + (
            i_td.outer_parts if i_td.inner_parts else ["I"]
        )
        order += knames + i_td.inner_parts + o_td.inner_parts
        return lay.reorder(order)


class GemmLayoutTemplate(LayoutTemplate):
    """Template for GMM / batched GMM: tunable ``mt, nt, kt`` (Section 5.1)."""

    def __init__(self, comp: ComputeDef, levels: int = 1):
        if "gemm" not in comp.tags:
            raise ValueError(f"{comp.name} is not a GMM")
        self.comp = comp
        self.levels = 1 if levels == 1 else 2
        self.batched = "batch_gemm" in comp.tags
        self.a, self.b = comp.inputs[0], comp.inputs[1]
        self.out = comp.output
        m, n, k = comp.attrs["mnk"]
        self.m, self.n, self.k = m, n, k
        prefix = f"{comp.name}."
        params = [
            ParamSpec(prefix + "mt", divisors(m), default=min(m, 4)),
            ParamSpec(prefix + "nt", divisors(n), default=min(n, 8)),
            ParamSpec(prefix + "kt", divisors(k), default=min(k, 4)),
        ]
        if self.levels == 2:
            params += [
                ParamSpec(p.name + "2", list(p.choices), default=1) for p in params
            ]
        self._space = ConfigSpace(params, name=f"layout:{comp.name}")
        self.prefix = prefix

    def space(self) -> ConfigSpace:
        return self._space

    def instantiate(self, config: Config) -> Dict[str, Layout]:
        p = self.prefix
        mt = _level_factors(self.m, config, p + "mt", self.levels)
        nt = _level_factors(self.n, config, p + "nt", self.levels)
        kt = _level_factors(self.k, config, p + "kt", self.levels)
        lead = ["B"] if self.batched else []

        def tiled(shape, names, d1, f1, d2, f2):
            lay = Layout(shape, lead + names)
            lay = _tile_chain(lay, d1, f1)
            lay = _tile_chain(lay, d2, f2)
            order = list(lead) + [f"{d1}.0", f"{d2}.0"]
            for part in range(1, self.levels + 1):
                order += [f"{d1}.{part}", f"{d2}.{part}"]
            return lay.reorder(order)

        return {
            self.out.name: tiled(self.out.shape, ["M", "N"], "M", mt, "N", nt),
            self.a.name: tiled(self.a.shape, ["M", "K"], "M", mt, "K", kt),
            self.b.name: tiled(self.b.shape, ["K", "N"], "K", kt, "N", nt),
        }


def template_for(comp: ComputeDef, levels: int = 1) -> Optional[LayoutTemplate]:
    """The layout template for a complex operator, or ``None``."""
    if "conv" in comp.tags:
        return ConvLayoutTemplate(comp, levels)
    if "gemm" in comp.tags:
        return GemmLayoutTemplate(comp, levels)
    return None
