"""Per-tensor layout: an ordered primitive sequence over a logical shape.

A :class:`Layout` is what the paper calls the "cached primitive sequence" of
a tensor (Section 4.1): applying a primitive never touches operator code --
it is recorded here and realized later by the lowering pass (shape rewrite +
access-expression rewrite) and/or by ``materialize`` for constant data.

Layouts are immutable; every builder method returns a new Layout, so tuners
can branch cheaply from a common prefix.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ir.expr import Expr, simplify, to_expr
from .primitives import (
    Dim,
    Fuse,
    LayoutError,
    Pad,
    Primitive,
    Reorder,
    RewriteContext,
    Split,
    StoreAt,
    Unfold,
)

DimRef = Union[int, str]


class Layout:
    """Layout of one tensor: logical dims plus an applied primitive chain."""

    def __init__(
        self,
        shape: Sequence[int],
        names: Optional[Sequence[str]] = None,
        _primitives: Optional[List[Primitive]] = None,
        _history: Optional[List[List[Dim]]] = None,
        _dims: Optional[List[Dim]] = None,
    ):
        shape = tuple(int(s) for s in shape)
        if names is None:
            names = [f"d{i}" for i in range(len(shape))]
        if len(names) != len(shape):
            raise LayoutError("names/shape length mismatch")
        self.logical_shape = shape
        self.logical_names = tuple(names)
        initial = [Dim(n, s) for n, s in zip(names, shape)]
        self.primitives: List[Primitive] = list(_primitives or [])
        # _history[i] = dims *before* primitive i applied.
        self._history: List[List[Dim]] = list(_history or [])
        self._dims: List[Dim] = list(_dims) if _dims is not None else initial

    # -- inspection -----------------------------------------------------------
    @property
    def dims(self) -> List[Dim]:
        return list(self._dims)

    @property
    def ndim(self) -> int:
        return len(self._dims)

    def physical_shape(self) -> Tuple[int, ...]:
        return tuple(d.size for d in self._dims)

    def dim_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self._dims)

    def index_of(self, ref: DimRef) -> int:
        if isinstance(ref, int):
            if not -self.ndim <= ref < self.ndim:
                raise LayoutError(f"dim index {ref} out of range for {self}")
            return ref % self.ndim
        for i, d in enumerate(self._dims):
            if d.name == ref:
                return i
        raise LayoutError(f"no dim named {ref!r} in {self.dim_names()}")

    @property
    def is_identity(self) -> bool:
        return not self.primitives

    def expansion_ratio(self) -> float:
        """Physical size relative to logical size (>1 for unfold/pad)."""
        logical = math.prod(self.logical_shape) or 1
        return math.prod(self.physical_shape()) / logical

    def has_nontrivial_advanced(self) -> bool:
        """Propagation constraint 1 (Algorithm 1 line 3)."""
        return any(p.is_nontrivial() for p in self.primitives)

    def store_at_binding(self) -> Optional[StoreAt]:
        for p in self.primitives:
            if isinstance(p, StoreAt):
                return p
        return None

    def signature(self) -> Tuple[str, ...]:
        return tuple(repr(p) for p in self.primitives)

    # -- builders ---------------------------------------------------------------
    def _extend(self, prim: Primitive) -> "Layout":
        new_dims = prim.apply_dims(self._dims)
        clone = Layout(
            self.logical_shape,
            self.logical_names,
            _primitives=self.primitives + [prim],
            _history=self._history + [list(self._dims)],
            _dims=new_dims,
        )
        return clone

    def split(self, dim: DimRef, factors: Sequence[int]) -> "Layout":
        return self._extend(Split(self.index_of(dim), factors))

    def reorder(self, perm: Sequence[DimRef]) -> "Layout":
        return self._extend(Reorder([self.index_of(p) for p in perm]))

    def fuse(self, dims: Sequence[DimRef]) -> "Layout":
        idx = sorted(self.index_of(d) for d in dims)
        if idx != list(range(idx[0], idx[0] + len(idx))):
            raise LayoutError(f"fuse requires consecutive dims, got {idx}")
        return self._extend(Fuse(idx[0], len(idx)))

    def unfold(self, dim: DimRef, tile_size: int, stride: int) -> "Layout":
        return self._extend(Unfold(self.index_of(dim), tile_size, stride))

    def pad(self, dim: DimRef, before: int = 0, after: int = 0) -> "Layout":
        return self._extend(Pad(self.index_of(dim), before, after))

    def store_at(self, host: str, host_dim: int) -> "Layout":
        return self._extend(StoreAt(host, host_dim))

    # -- inverse primitives (paper Sec. 4.1.2: fold / unpad / decouple_at) -----
    def _undo(self, expected: type, name: str) -> "Layout":
        if not self.primitives:
            raise LayoutError(f"{name}: no primitive to undo")
        last = self.primitives[-1]
        if not isinstance(last, expected):
            raise LayoutError(
                f"{name}: last primitive is {last!r}, not a "
                f"{expected.__name__.lower()}"
            )
        return Layout(
            self.logical_shape,
            self.logical_names,
            _primitives=self.primitives[:-1],
            _history=self._history[:-1],
            _dims=list(self._history[-1]),
        )

    def fold(self) -> "Layout":
        """Undo the most recent :meth:`unfold` (merge the tile dims back)."""
        return self._undo(Unfold, "fold")

    def unpad(self) -> "Layout":
        """Undo the most recent :meth:`pad` (drop the appended zeros)."""
        return self._undo(Pad, "unpad")

    def decouple_at(self) -> "Layout":
        """Undo the most recent :meth:`store_at` (detach from the host)."""
        return self._undo(StoreAt, "decouple_at")

    def replay_onto(self, other: "Layout") -> "Layout":
        """Duplicate this layout's primitive sequence onto another tensor
        (the propagation copy of Algorithm 1 line 11). Shapes must match."""
        if other.logical_shape != self.logical_shape:
            raise LayoutError(
                f"cannot replay layout of shape {self.logical_shape} onto "
                f"{other.logical_shape}"
            )
        out = other
        for prim in self.primitives:
            out = out._extend(prim)
        return out

    # -- access-expression rewriting (the Section 6 compiler pass) -------------
    def rewrite_access(
        self, exprs: Sequence, ctx: Optional[RewriteContext] = None
    ) -> List[Expr]:
        """Map logical accessing expressions to physical ones (Table 1/Eq. 1)."""
        out = [to_expr(e) for e in exprs]
        if len(out) != len(self.logical_shape):
            raise LayoutError(
                f"access has {len(out)} indices for {len(self.logical_shape)}-D tensor"
            )
        for prim, dims_before in zip(self.primitives, self._history):
            out = prim.forward_exprs(out, dims_before, ctx)
        return [simplify(e) for e in out]

    def inverse_access(self, exprs: Sequence) -> List[Expr]:
        """Map physical index expressions back to logical coordinates.

        This is ``S_Y^{-1}`` from Section 6: the lowering pass remaps every
        input access through the inverse of the *output* tensor's layout.
        """
        out = [to_expr(e) for e in exprs]
        if len(out) != self.ndim:
            raise LayoutError(
                f"physical access has {len(out)} indices for {self.ndim}-D layout"
            )
        for prim, dims_before in zip(
            reversed(self.primitives), reversed(self._history)
        ):
            out = prim.inverse_exprs(out, dims_before)
        return [simplify(e) for e in out]

    # -- data movement ------------------------------------------------------------
    def materialize(self, array: np.ndarray) -> np.ndarray:
        """Physically re-lay-out a logical numpy array."""
        if tuple(array.shape) != self.logical_shape:
            raise LayoutError(
                f"array shape {array.shape} != logical shape {self.logical_shape}"
            )
        for prim in self.primitives:
            array = prim.materialize(array)
        return np.ascontiguousarray(array)

    def unmaterialize(self, array: np.ndarray) -> np.ndarray:
        """Recover the logical array from physical data."""
        if tuple(array.shape) != self.physical_shape():
            raise LayoutError(
                f"array shape {array.shape} != physical shape {self.physical_shape()}"
            )
        for prim, dims_before in zip(
            reversed(self.primitives), reversed(self._history)
        ):
            array = prim.unmaterialize(array, dims_before)
        return np.ascontiguousarray(array)

    def __repr__(self) -> str:
        dims = " ".join(f"{d.name}:{d.size}" for d in self._dims)
        return f"Layout[{dims}]"
