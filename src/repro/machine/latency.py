"""Analytical latency model: the stand-in for on-device measurement.

Every auto-tuner in this repo "measures" a candidate program by calling
:func:`estimate_program`.  The model is a deterministic function of the
lowered loop nest and a :class:`MachineSpec`, sensitive to exactly the
mechanisms the paper attributes layout/loop performance to (Section 5.1):

- **SIMD friendliness** -- unit-stride innermost accesses vectorize; strided
  or irregular ones pay a gather penalty;
- **data reuse** -- a loop-footprint walk (inner to outer) finds, per access
  and per cache level, the loop depth at which the working set spills, which
  yields per-level miss counts;
- **hardware prefetching** -- dense streams amortize miss latency over the
  prefetch degree, so *layout-tiled* (contiguous) data beats loop-tiled data
  with identical miss counts (paper Table 2);
- **parallelism** -- outer parallel loops divide time by effective cores;
  GPUs additionally require enough parallelism to saturate SMs;
- **operator fusion** -- stages in one fuse group exchange intermediate
  tensors through cache, not DRAM, and save per-stage launch overhead.

Absolute numbers are synthetic; orderings and ratios are what we reproduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..ir.compute import BinOp, Call, ConstF, Select, Value
from ..ir.expr import Expr, stride_of
from ..ir.nest import PARALLEL, UNROLL, VECTORIZE, BufRead, Loop, Program, Stage

#: fraction of a cache level usable before conflict misses dominate
_CACHE_UTILIZATION = 0.5
#: register-file pseudo-cache: 32 vector registers
_REGISTER_FILE_VECTORS = 32
#: cycles of loop bookkeeping per innermost iteration (serial loops)
_LOOP_OVERHEAD = 0.6
#: per-stage launch overhead, cycles (CPU call / GPU kernel launch)
_LAUNCH_CYCLES_CPU = 600.0
_LAUNCH_CYCLES_GPU = 6000.0


@dataclass
class AccessProfile:
    """Footprint walk result for one buffer access."""

    buffer: str
    nbytes_total: int
    #: per loop depth (innermost-first): (iters, distinct_lines, dense)
    levels: List[Tuple[int, int, bool]] = field(default_factory=list)
    vector_stride: Optional[int] = None  # elements, wrt the vectorized loop


@dataclass
class StageCost:
    name: str
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    overhead_cycles: float = 0.0
    launch_cycles: float = 0.0
    parallelism: float = 1.0
    #: instruction estimate and per-level misses for Table-3 style reporting
    instructions: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    level_misses: Dict[str, float] = field(default_factory=dict)

    @property
    def serial_cycles(self) -> float:
        return self.compute_cycles + self.memory_cycles + self.overhead_cycles

    @property
    def total_cycles(self) -> float:
        return self.serial_cycles / self.parallelism + self.launch_cycles


def _strip_clamps(e: Expr) -> Expr:
    """Drop boundary clamps (``Min``/``Max`` against constants) for stride
    and footprint analysis: a clamp only bends the access at the edges, the
    steady-state stream follows the unclamped expression."""
    from ..ir.expr import Const, Max as MaxE, Min as MinE

    if isinstance(e, (MinE, MaxE)):
        if isinstance(e.a, Const):
            return _strip_clamps(e.b)
        return _strip_clamps(e.a)
    return e


def _count_ops(v: Value) -> float:
    if isinstance(v, BinOp):
        return 1 + _count_ops(v.a) + _count_ops(v.b)
    if isinstance(v, Call):
        return 4 + sum(_count_ops(a) for a in v.args)
    if isinstance(v, Select):
        return 1 + max(_count_ops(v.then_value), _count_ops(v.else_value))
    return 0


def _access_profile(
    read_indices: Sequence[Expr],
    buffer,
    loops: Sequence[Loop],
    line_bytes: int,
    vec_var: Optional[str],
) -> AccessProfile:
    """Walk loops innermost-first accumulating footprint for one access."""
    from ..ir.expr import affine_coefficients

    flat = buffer.flat_index([_strip_clamps(e) for e in read_indices])
    itemsize = buffer.itemsize
    prof = AccessProfile(buffer=buffer.name, nbytes_total=buffer.nbytes)

    coeffs = affine_coefficients(flat)

    def stride_for(var: str) -> Optional[int]:
        if coeffs is not None:
            return coeffs.get(var, 0)
        return stride_of(flat, var)

    span_bytes = float(itemsize)
    lines = 1.0
    iters = 1
    dense = True
    if vec_var is not None:
        prof.vector_stride = stride_for(vec_var)
    for loop in reversed(loops):
        stride = stride_for(loop.var)
        extent = loop.extent
        if stride is None:
            # irregular access: every iteration may land on a new line
            lines *= extent
            span_bytes = lines * line_bytes
            dense = False
        elif stride == 0:
            pass  # pure temporal reuse: footprint unchanged
        else:
            step = abs(stride) * itemsize
            if step <= line_bytes:
                span_bytes += (extent - 1) * step
                lines = max(lines, math.ceil(span_bytes / line_bytes))
            else:
                lines *= extent
                span_bytes += (extent - 1) * step
                dense = False
        iters *= extent
        prof.levels.append((iters, min(lines, span_bytes / line_bytes + 1), dense))
    return prof


def _misses_at_capacity(
    profiles: List[AccessProfile], capacity_bytes: float, line_bytes: int, total_iters: int
) -> Dict[int, float]:
    """Per-access miss count for one cache capacity.

    Finds the deepest loop prefix whose combined footprint fits, then
    charges each access its distinct lines once per execution of that
    subnest.
    """
    n_levels = len(profiles[0].levels) if profiles else 0
    fit_level = -1  # -1 means not even one iteration's lines fit
    for k in range(n_levels):
        footprint = sum(p.levels[k][1] * line_bytes for p in profiles)
        if footprint <= capacity_bytes * _CACHE_UTILIZATION:
            fit_level = k
        else:
            break
    misses: Dict[int, float] = {}
    for idx, p in enumerate(profiles):
        if fit_level < 0:
            misses[idx] = float(p.levels[-1][0]) if p.levels else 0.0
            continue
        iters_k, lines_k, _dense = p.levels[fit_level]
        subnest_execs = total_iters / iters_k if iters_k else 1.0
        per_access = lines_k * subnest_execs
        # Never more misses than total touches, never fewer than cold lines.
        cold = min(p.nbytes_total / line_bytes, lines_k * subnest_execs)
        misses[idx] = min(max(per_access, 0.0), float(total_iters))
        misses[idx] = max(misses[idx], 0.0)
        misses[idx] = min(misses[idx], float(total_iters))
        misses[idx] = max(misses[idx], min(cold, misses[idx]))
    return misses


def estimate_stage(
    stage: Stage,
    machine,
    hot_buffers: Optional[Set[str]] = None,
) -> StageCost:
    """Estimate one stage's cost on a machine.

    ``hot_buffers`` names tensors known to be cache-resident because of
    operator fusion (produced or consumed in the same fuse group): their
    traffic is served from the innermost cache that can hold a tile.
    """
    hot_buffers = hot_buffers or set()
    cost = StageCost(stage.name)
    loops = stage.loops
    total_iters = stage.trip_count()
    if total_iters == 0:
        return cost

    innermost = loops[-1]
    vec_var = innermost.var if innermost.kind == VECTORIZE else None
    line = machine.line_bytes

    # ---- gather access profiles -------------------------------------------------
    reads: List[Tuple[BufRead, AccessProfile]] = []
    for r in stage.reads():
        prof = _access_profile(r.indices, r.buffer, loops, line, vec_var)
        reads.append((r, prof))
    write_prof = _access_profile(stage.out_indices, stage.out, loops, line, vec_var)

    # ---- vectorization quality --------------------------------------------------
    lanes = 1.0
    gather_penalty = 1.0
    if vec_var is not None:
        lanes = float(min(innermost.extent, machine.vector_lanes))
        out_stride = write_prof.vector_stride
        if out_stride not in (0, 1):
            gather_penalty *= 4.0  # scatter on the store stream
        bad_reads = sum(
            1 for _, p in reads if p.vector_stride not in (0, 1)
        )
        if reads and bad_reads:
            gather_penalty *= 1.0 + 3.0 * bad_reads / len(reads)

    # ---- compute cycles -----------------------------------------------------------
    ops_per_iter = _count_ops(stage.update) + (1.0 if stage.reduce_op else 0.0)
    vec_speedup = max(lanes / gather_penalty, 1.0)
    cost.compute_cycles = (
        total_iters * max(ops_per_iter, 1.0) / (machine.flops_per_cycle * vec_speedup)
    )
    cost.instructions = total_iters * (max(ops_per_iter, 1.0) + len(reads) + 1) / max(
        lanes / gather_penalty, 1.0
    )
    cost.loads = total_iters * len(reads) / max(lanes / gather_penalty, 1.0)
    cost.stores = total_iters / max(lanes / gather_penalty, 1.0)

    # ---- loop overhead --------------------------------------------------------------
    inner_kind = innermost.kind
    overhead = _LOOP_OVERHEAD
    if inner_kind in (VECTORIZE, UNROLL):
        overhead *= 0.2
    cost.overhead_cycles = total_iters * overhead / max(lanes, 1.0)

    # ---- memory cycles ---------------------------------------------------------------
    # Capacity ladder: register file, then each cache level.  Accesses that
    # hit in registers or L1 are assumed hidden by the compute pipeline
    # (charged ~0); misses at capacity k are served by level k+1 at that
    # level's latency, discounted by the prefetch degree for dense streams.
    profiles = [p for _, p in reads] + [write_prof]
    register_bytes = _REGISTER_FILE_VECTORS * machine.vector_lanes * 4
    capacities = [register_bytes] + [c.size_bytes for c in machine.caches]
    #: cost of a hit at the level *behind* capacity k (k=0 -> L1 hit cost)
    serve_latency = [0.5] + [c.latency_cycles for c in machine.caches[1:]] + [
        machine.dram_latency_cycles
    ]
    serve_prefetch = [1] + [c.prefetch_lines for c in machine.caches[1:]] + [
        machine.caches[-1].prefetch_lines
    ]

    miss_tables = [
        _misses_at_capacity(profiles, cap, line, total_iters) for cap in capacities
    ]
    mem_cycles = 0.0
    dram_bytes = 0.0
    for idx, prof in enumerate(profiles):
        hot = prof.buffer in hot_buffers
        bundle = lanes if prof.vector_stride in (0, 1) and vec_var else 1.0
        accesses = total_iters / max(bundle, 1.0)
        dense = prof.levels[-1][2] if prof.levels else True
        prev = accesses
        for lvl in range(len(capacities)):
            m = min(float(miss_tables[lvl][idx]), prev)
            if hot and lvl >= 1:
                m = 0.0  # fused intermediate stays within L1/L2
            served = prev - m  # requests absorbed at this capacity
            if lvl > 0:
                lat = serve_latency[lvl - 1]
                mem_cycles += served * (lat / serve_prefetch[lvl - 1] if dense else lat)
            prev = m
        lat = serve_latency[-1]
        mem_cycles += prev * (lat / serve_prefetch[-1] if dense else lat)
        dram_bytes += prev * line
        cost.level_misses["DRAM"] = cost.level_misses.get("DRAM", 0.0) + prev
        if len(miss_tables) > 1:
            l1m = 0.0 if hot else min(float(miss_tables[1][idx]), accesses)
            cost.level_misses["L1"] = cost.level_misses.get("L1", 0.0) + l1m

    bw_cycles = dram_bytes / machine.dram_bw_bytes_per_cycle
    cost.memory_cycles = max(mem_cycles, bw_cycles)

    # ---- parallelism -----------------------------------------------------------------
    par = 1
    for loop in loops:
        if loop.kind == PARALLEL:
            par *= loop.extent
        else:
            break
    eff = min(par, machine.cores)
    if machine.is_gpu:
        thread_par = par * (lanes if vec_var is not None else 1)
        saturation = machine.saturation_parallelism or machine.cores
        occupancy = min(1.0, thread_par / saturation)
        eff = max(machine.cores * occupancy, 1.0)
    else:
        if par > 1:
            eff = min(par, machine.cores) * 0.95
    cost.parallelism = max(eff, 1.0)

    cost.launch_cycles = _LAUNCH_CYCLES_GPU if machine.is_gpu else _LAUNCH_CYCLES_CPU
    return cost


def fuse_groups(program: Program) -> Dict[str, List[Stage]]:
    groups: Dict[str, List[Stage]] = {}
    for s in program.stages:
        g = s.annotations.get("fuse_group")
        if g is not None:
            groups.setdefault(g, []).append(s)
    return groups


def estimate_program(program: Program, machine) -> float:
    """Latency (seconds) of a lowered program on a machine."""
    groups = fuse_groups(program)
    hot: Dict[str, Set[str]] = {}
    for gname, stages in groups.items():
        produced = {s.out.name for s in stages}
        for s in stages:
            touched = {r.buffer.name for r in s.reads()} | {s.out.name}
            hot[s.name] = touched & produced
    total_cycles = 0.0
    seen_groups: Set[str] = set()
    for s in program.stages:
        cost = estimate_stage(s, machine, hot.get(s.name, set()))
        g = s.annotations.get("fuse_group")
        cycles = cost.total_cycles
        if g is not None:
            # one launch per fused group, not per stage
            if g in seen_groups:
                cycles -= cost.launch_cycles
            seen_groups.add(g)
        total_cycles += cycles
    return machine.cycles_to_seconds(total_cycles)


def estimate_stage_seconds(stage: Stage, machine) -> float:
    return machine.cycles_to_seconds(estimate_stage(stage, machine).total_cycles)
