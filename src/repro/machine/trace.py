"""Trace-driven profiling of lowered stages (paper Tables 2 and 3).

Where the paper runs ``perf``/PMU counters, we replay the exact memory
trace of a lowered loop nest through the set-associative cache hierarchy of
``repro.machine.cache``.  This is slow (every access is simulated), so the
profiling benchmarks use scaled-down shapes; the analytical model in
``latency.py`` remains the tuner-facing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.compute import BinOp, Call, ConstF, Select, Value
from ..ir.nest import BufRead, Program, Stage
from .cache import AddressMap, CacheHierarchy, CacheStats
from .latency import _count_ops
from .spec import MachineSpec
from ..exec.interpreter import _Namer, _cond_src, _expr_src


@dataclass
class TraceProfile:
    """PMU-style counters for one stage or program."""

    iterations: int = 0
    instructions: float = 0.0
    loads: int = 0
    stores: int = 0
    level_stats: Dict[str, CacheStats] = field(default_factory=dict)
    dram_accesses: int = 0
    latency_cycles: float = 0.0

    @property
    def l1_misses(self) -> int:
        stats = self.level_stats.get("L1")
        return stats.misses if stats else 0

    @property
    def l1_loads(self) -> int:
        stats = self.level_stats.get("L1")
        return stats.accesses if stats else 0

    def merged_with(self, other: "TraceProfile") -> "TraceProfile":
        out = TraceProfile(
            iterations=self.iterations + other.iterations,
            instructions=self.instructions + other.instructions,
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            dram_accesses=self.dram_accesses + other.dram_accesses,
            latency_cycles=self.latency_cycles + other.latency_cycles,
        )
        out.level_stats = dict(self.level_stats)
        for name, st in other.level_stats.items():
            if name in out.level_stats:
                prev = out.level_stats[name]
                out.level_stats[name] = CacheStats(
                    prev.accesses + st.accesses,
                    prev.hits + st.hits,
                    prev.misses + st.misses,
                    prev.prefetch_hits + st.prefetch_hits,
                    prev.lines_fetched + st.lines_fetched,
                )
            else:
                out.level_stats[name] = st
        return out


def _collect_reads(value: Value, out: List[BufRead]) -> None:
    if isinstance(value, BufRead):
        out.append(value)
    elif isinstance(value, BinOp):
        _collect_reads(value.a, out)
        _collect_reads(value.b, out)
    elif isinstance(value, Call):
        for a in value.args:
            _collect_reads(a, out)
    elif isinstance(value, Select):
        # profile the taken branch only when guards are compile-time simple;
        # otherwise touch the then-branch (the common path)
        _collect_reads(value.then_value, out)


def profile_stage(
    stage: Stage,
    machine: MachineSpec,
    hierarchy: Optional[CacheHierarchy] = None,
    addr_map: Optional[AddressMap] = None,
) -> TraceProfile:
    """Replay one stage's memory trace through the cache hierarchy."""
    hier = hierarchy or CacheHierarchy(machine)
    amap = addr_map or AddressMap(machine.line_bytes)

    vnames = _Namer("v")
    reads: List[BufRead] = []
    _collect_reads(stage.update, reads)

    lines = ["def _trace(access):"]
    indent = "    "
    for loop in stage.loops:
        lines.append(f"{indent}for {vnames[loop.var]} in range({loop.extent}):")
        indent += "    "
    for r in reads:
        base = amap.base(r.buffer.name, r.buffer.nbytes)
        flat = r.buffer.flat_index(r.indices)
        lines.append(
            f"{indent}access({base} + ({_expr_src(flat, vnames)}) * {r.buffer.itemsize})"
        )
    out_base = amap.base(stage.out.name, stage.out.nbytes)
    out_flat = stage.out.flat_index(stage.out_indices)
    lines.append(
        f"{indent}access({out_base} + ({_expr_src(out_flat, vnames)}) * {stage.out.itemsize})"
    )
    namespace: Dict = {}
    exec(compile("\n".join(lines), f"<trace:{stage.name}>", "exec"), namespace)
    namespace["_trace"](hier.access)

    total = stage.trip_count()
    ops = max(_count_ops(stage.update) + (1 if stage.reduce_op else 0), 1)
    prof = TraceProfile(
        iterations=total,
        instructions=total * (ops + len(reads) + 1),
        loads=total * len(reads),
        stores=total,
        level_stats={k: v for k, v in hier.stats().items()},
        dram_accesses=hier.dram_accesses,
        latency_cycles=hier.total_cycles() + total * ops / machine.flops_per_cycle,
    )
    return prof


def profile_program(program: Program, machine: MachineSpec) -> Dict[str, TraceProfile]:
    """Profile every stage, sharing one cache hierarchy and address space
    (so inter-stage reuse through the cache is captured)."""
    hier = CacheHierarchy(machine)
    amap = AddressMap(machine.line_bytes)
    out: Dict[str, TraceProfile] = {}
    for stage in program.stages:
        before = {k: _copy_stats(v) for k, v in hier.stats().items()}
        before_dram = hier.dram_accesses
        profile_stage(stage, machine, hier, amap)
        after = hier.stats()
        delta = TraceProfile(iterations=stage.trip_count())
        reads: List[BufRead] = []
        _collect_reads(stage.update, reads)
        ops = max(_count_ops(stage.update) + (1 if stage.reduce_op else 0), 1)
        delta.instructions = delta.iterations * (ops + len(reads) + 1)
        delta.loads = delta.iterations * len(reads)
        delta.stores = delta.iterations
        delta.dram_accesses = hier.dram_accesses - before_dram
        for name, st in after.items():
            prev = before.get(name, CacheStats())
            delta.level_stats[name] = CacheStats(
                st.accesses - prev.accesses,
                st.hits - prev.hits,
                st.misses - prev.misses,
                st.prefetch_hits - prev.prefetch_hits,
                st.lines_fetched - prev.lines_fetched,
            )
        out[stage.name] = delta
    return out


def _copy_stats(st: CacheStats) -> CacheStats:
    return CacheStats(st.accesses, st.hits, st.misses, st.prefetch_hits, st.lines_fetched)
