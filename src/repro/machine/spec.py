"""Machine descriptions for the simulated hardware targets.

The paper evaluates on an Intel Xeon (AVX-512), an NVIDIA GPU and an ARM
big.LITTLE SoC (NEON).  We cannot run on those, so each platform becomes a
:class:`MachineSpec` consumed by both the analytical latency model
(``repro.machine.latency``) and the trace-driven cache simulator
(``repro.machine.cache``).  What matters for reproducing the paper's
*relative* results is that the three presets differ the way the real parts
do: SIMD width, core count, cache geometry and the hardware prefetcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int
    latency_cycles: float
    #: lines fetched per miss by the hardware prefetcher when the stream is
    #: sequential (the Cortex-A76 experiment in paper Table 2 shows ~4).
    prefetch_lines: int = 4

    @property
    def n_sets(self) -> int:
        return max(1, self.size_bytes // (self.line_bytes * self.assoc))


@dataclass(frozen=True)
class MachineSpec:
    """A simulated inference target."""

    name: str
    cores: int
    vector_lanes: int  # float32 SIMD lanes per core
    freq_ghz: float
    caches: Tuple[CacheLevel, ...]
    dram_latency_cycles: float
    dram_bw_bytes_per_cycle: float
    flops_per_cycle: float = 2.0  # scalar FMA throughput per core
    is_gpu: bool = False
    #: threads needed to saturate the device (GPU occupancy proxy)
    saturation_parallelism: int = 0

    @property
    def line_bytes(self) -> int:
        return self.caches[0].line_bytes

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.freq_ghz * 1e9)


def intel_cpu() -> MachineSpec:
    """Xeon-class server CPU: wide SIMD (AVX-512), many cores, deep caches."""
    return MachineSpec(
        name="intel_cpu",
        cores=40,
        vector_lanes=16,
        freq_ghz=2.5,
        caches=(
            CacheLevel("L1", 32 * 1024, 64, 8, 4, prefetch_lines=4),
            CacheLevel("L2", 1024 * 1024, 64, 16, 14, prefetch_lines=4),
            CacheLevel("L3", 27 * 1024 * 1024, 64, 11, 42, prefetch_lines=2),
        ),
        dram_latency_cycles=220.0,
        dram_bw_bytes_per_cycle=40.0,
        flops_per_cycle=4.0,
        saturation_parallelism=40,
    )


def nvidia_gpu() -> MachineSpec:
    """V100-class GPU: modeled as many small cores with SIMT vector width.

    A streaming multiprocessor is treated as a core whose "SIMD" width is a
    warp; shared memory/L1 per SM and a large L2 stand in for the real
    hierarchy.  Massive parallelism is required to reach peak -- kernels
    that cannot expose it are penalized through ``saturation_parallelism``.
    """
    return MachineSpec(
        name="nvidia_gpu",
        cores=80,
        vector_lanes=32,
        freq_ghz=1.4,
        caches=(
            CacheLevel("L1", 128 * 1024, 128, 8, 8, prefetch_lines=1),
            CacheLevel("L2", 6 * 1024 * 1024, 128, 16, 60, prefetch_lines=1),
        ),
        dram_latency_cycles=400.0,
        dram_bw_bytes_per_cycle=640.0,  # ~900 GB/s HBM2
        flops_per_cycle=8.0,
        is_gpu=True,
        saturation_parallelism=80 * 64,
    )


def arm_cpu() -> MachineSpec:
    """Kirin 990-class mobile SoC: few cores, NEON, small caches."""
    return MachineSpec(
        name="arm_cpu",
        cores=4,
        vector_lanes=4,
        freq_ghz=2.6,
        caches=(
            CacheLevel("L1", 64 * 1024, 64, 4, 4, prefetch_lines=4),
            CacheLevel("L2", 512 * 1024, 64, 8, 13, prefetch_lines=4),
            CacheLevel("L3", 4 * 1024 * 1024, 64, 16, 35, prefetch_lines=2),
        ),
        dram_latency_cycles=180.0,
        dram_bw_bytes_per_cycle=12.0,
        flops_per_cycle=2.0,
        saturation_parallelism=4,
    )


PRESETS = {
    "intel_cpu": intel_cpu,
    "nvidia_gpu": nvidia_gpu,
    "arm_cpu": arm_cpu,
}


def get_machine(name: str) -> MachineSpec:
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; choose from {sorted(PRESETS)}"
        ) from None
