"""Trace-driven set-associative cache simulator with hardware prefetch.

Used for the micro-profiling experiments (paper Table 2 and Table 3): the
analytical model in ``latency.py`` is what tuners call, but when the paper
*counts cache misses*, we count them for real by replaying address traces
through this simulator.

The prefetcher models what the paper measured on a Cortex-A76: a miss on a
sequential stream pulls the missed line plus the next ``prefetch_lines - 1``
lines.  Prefetched lines that are later touched count as hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .spec import CacheLevel, MachineSpec


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0  # hits on lines brought in by the prefetcher
    lines_fetched: int = 0  # includes prefetch traffic

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, level: CacheLevel):
        self.level = level
        self.stats = CacheStats()
        # set index -> OrderedDict[tag -> was_prefetched]
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(level.n_sets)]

    def reset(self) -> None:
        self.stats = CacheStats()
        for s in self._sets:
            s.clear()

    def _lookup(self, line: int) -> Optional[bool]:
        """Return was_prefetched if present (and refresh LRU), else None."""
        s = self._sets[line % self.level.n_sets]
        if line in s:
            was_prefetched = s.pop(line)
            s[line] = False  # touched now; recency refreshed
            return was_prefetched
        return None

    def _install(self, line: int, prefetched: bool) -> None:
        s = self._sets[line % self.level.n_sets]
        if line in s:
            s.pop(line)
        elif len(s) >= self.level.assoc:
            s.popitem(last=False)  # evict LRU
        s[line] = prefetched
        self.stats.lines_fetched += 1

    def access_line(self, line: int) -> bool:
        """Touch a cache line; returns True on hit."""
        self.stats.accesses += 1
        found = self._lookup(line)
        if found is not None:
            self.stats.hits += 1
            if found:
                self.stats.prefetch_hits += 1
            return True
        self.stats.misses += 1
        self._install(line, prefetched=False)
        # Block prefetch: a miss pulls the aligned ``prefetch_lines`` block
        # containing the line (the paper's Cortex-A76 observation: "the CPU
        # is very likely to fetch four contiguous cache lines on a miss").
        n = self.level.prefetch_lines
        if n > 1:
            start = (line // n) * n
            for nxt in range(start, start + n):
                if nxt != line and self._lookup(nxt) is None:
                    self._install(nxt, prefetched=True)
        return False

    def access_addr(self, addr: int) -> bool:
        return self.access_line(addr // self.level.line_bytes)


class CacheHierarchy:
    """L1 -> L2 -> ... -> DRAM; an access cascades on miss.

    Address space convention: every buffer gets a disjoint, line-aligned
    base address (see :class:`AddressMap`).
    """

    def __init__(self, machine: MachineSpec):
        self.machine = machine
        self.levels = [Cache(lvl) for lvl in machine.caches]
        self.dram_accesses = 0

    def reset(self) -> None:
        for c in self.levels:
            c.reset()
        self.dram_accesses = 0

    def access(self, addr: int) -> int:
        """Touch a byte address; returns the level index that served it
        (``len(levels)`` means DRAM)."""
        for i, cache in enumerate(self.levels):
            if cache.access_addr(addr):
                return i
        self.dram_accesses += 1
        return len(self.levels)

    def total_cycles(self) -> float:
        """Aggregate memory cycles implied by the recorded hits/misses."""
        cycles = 0.0
        for i, cache in enumerate(self.levels):
            served_here = cache.stats.hits
            cycles += served_here * cache.level.latency_cycles
        cycles += self.dram_accesses * self.machine.dram_latency_cycles
        return cycles

    def stats(self) -> Dict[str, CacheStats]:
        return {c.level.name: c.stats for c in self.levels}


class AddressMap:
    """Assigns disjoint line-aligned base addresses to named buffers."""

    def __init__(self, line_bytes: int = 64):
        self.line_bytes = line_bytes
        self._bases: Dict[str, int] = {}
        self._next = line_bytes  # avoid address 0 for clarity

    def base(self, name: str, nbytes: int) -> int:
        if name not in self._bases:
            self._bases[name] = self._next
            aligned = (nbytes + self.line_bytes - 1) // self.line_bytes
            # pad one extra line between buffers to avoid false sharing
            self._next += (aligned + 1) * self.line_bytes
        return self._bases[name]
