"""Genetic-algorithm searcher (the paper's Section 5.2 foil for PPO).

The paper argues PPO is preferable to heuristic searchers like genetic
algorithms for the *joint* problem because a GA's accumulated population
knowledge lives inside one search-space structure -- exactly what layout
changes invalidate (Challenge 2).  This module provides a GA over the joint
space so the claim can be tested as an ablation: the GA treats the layout
and loop parameters as one flat genome, re-seeding its loop genes whenever
the layout genes (and hence the loop space) change.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..layout.layout import Layout
from ..layout.primitives import LayoutError
from ..lower.lower import LoweringError
from .explorer import TuneResult
from .space import Config, ConfigSpace
from .task import TuningTask


class GeneticTuner:
    """(mu + lambda) evolutionary search over layout x loop configurations."""

    def __init__(
        self,
        task: TuningTask,
        seed: int = 0,
        population: int = 16,
        elite: int = 4,
        mutation_rate: float = 0.3,
    ):
        self.task = task
        self.rng = random.Random(seed)
        self.population_size = population
        self.elite = elite
        self.mutation_rate = mutation_rate

    # -- genome handling -----------------------------------------------------------
    def _prepare(self, layout_cfg: Optional[Config], loop_cfg: Optional[Config]):
        """Decode a genome into a measurable candidate.

        Returns ``(layout_cfg, loop_cfg, layouts, schedule)``; ``schedule``
        is ``None`` when the genome does not decode.  All rng consumption
        happens here, before measurement, so a generation can be measured
        as one batch without perturbing the random stream.
        """
        task = self.task
        try:
            layouts = task.layouts_from(layout_cfg) if layout_cfg else {}
            loop_space = task.loop_space_for(layouts)
            space = loop_space.space()
            if loop_cfg is None:
                loop_cfg = space.sample(self.rng)
            else:
                # the loop space may have been rebuilt for a new layout:
                # keep genes that still exist, re-seed the rest
                fixed = {}
                for p in space.params:
                    val = loop_cfg.get(p.name)
                    fixed[p.name] = val if val in p.choices else p.sample(self.rng)
                loop_cfg = fixed
            sched = loop_space.schedule(loop_cfg)
            return layout_cfg, loop_cfg, layouts, sched
        except (LayoutError, LoweringError, ValueError):
            return layout_cfg, loop_cfg, None, None

    def _measure_genomes(self, genomes):
        """Batch-measure prepared genomes.

        Returns ``(population entries, exhausted)``; genomes past a budget
        cut are dropped, undecodable genomes score ``inf`` without costing
        a measurement.
        """
        measurable = [(g[2], g[3]) for g in genomes if g[3] is not None]
        result = self.task.measure_batch(measurable)
        entries: List[Tuple[float, Optional[Config], Optional[Config]]] = []
        latencies = iter(result.latencies)
        for layout_cfg, loop_cfg, _layouts, sched in genomes:
            if sched is None:
                entries.append((math.inf, layout_cfg, loop_cfg))
                continue
            try:
                lat = next(latencies)
            except StopIteration:
                break  # budget cut the batch short
            entries.append((lat, layout_cfg, loop_cfg))
        return entries, result.exhausted

    def tune(self, budget: int) -> TuneResult:
        task = self.task
        layout_space = task.layout_space()
        has_layouts = len(layout_space) > 0

        genomes = [
            self._prepare(
                layout_space.sample(self.rng) if has_layouts else None, None
            )
            for _ in range(self.population_size)
        ]
        population, exhausted = self._measure_genomes(genomes)
        stalls = 0
        while not exhausted and task.measurements < budget and stalls < 4:
            before = task.measurements
            population.sort(key=lambda p: p[0])
            parents = population[: self.elite]
            if not parents:
                break
            child_genomes = []
            while len(child_genomes) < self.population_size - self.elite:
                a = self.rng.choice(parents)
                b = self.rng.choice(parents)
                child_layout = None
                if has_layouts:
                    child_layout = layout_space.crossover(
                        a[1] or layout_space.default(),
                        b[1] or layout_space.default(),
                        self.rng,
                    )
                    if self.rng.random() < self.mutation_rate:
                        child_layout = layout_space.mutate(
                            child_layout, self.rng, n=1
                        )
                seed_loop = a[2] if self.rng.random() < 0.5 else b[2]
                child_genomes.append(self._prepare(child_layout, seed_loop))
            children, exhausted = self._measure_genomes(child_genomes)
            population = parents + children
            # converged populations stop consuming budget (everything is a
            # task-cache hit); stop instead of spinning
            stalls = stalls + 1 if task.measurements == before else 0

        return TuneResult(
            task_name=task.comp.name,
            best_latency=task.best_latency,
            best_layouts=task.best_record[0] if task.best_record else {},
            best_schedule=task.best_record[1] if task.best_record else None,
            measurements=task.measurements,
            history=list(task.history),
            telemetry=task.measurer.stats.as_dict(),
        )


def tune_genetic(
    comp, machine, budget: int = 1000, seed: int = 0, measure=None
) -> TuneResult:
    """Joint layout+loop tuning with a genetic algorithm (ablation)."""
    task = TuningTask(comp, machine, budget, measure=measure)
    return GeneticTuner(task, seed=seed).tune(budget)
