"""Genetic-algorithm searcher (the paper's Section 5.2 foil for PPO).

The paper argues PPO is preferable to heuristic searchers like genetic
algorithms for the *joint* problem because a GA's accumulated population
knowledge lives inside one search-space structure -- exactly what layout
changes invalidate (Challenge 2).  This module provides a GA over the joint
space so the claim can be tested as an ablation: the GA treats the layout
and loop parameters as one flat genome, re-seeding its loop genes whenever
the layout genes (and hence the loop space) change.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..layout.layout import Layout
from ..layout.primitives import LayoutError
from ..lower.lower import LoweringError
from .explorer import TOP_K, TuneResult
from .space import Config, ConfigSpace
from .task import BudgetExhausted, TuningTask


class GeneticTuner:
    """(mu + lambda) evolutionary search over layout x loop configurations."""

    def __init__(
        self,
        task: TuningTask,
        seed: int = 0,
        population: int = 16,
        elite: int = 4,
        mutation_rate: float = 0.3,
    ):
        self.task = task
        self.rng = random.Random(seed)
        self.population_size = population
        self.elite = elite
        self.mutation_rate = mutation_rate

    # -- genome handling -----------------------------------------------------------
    def _evaluate(self, layout_cfg: Optional[Config], loop_cfg: Optional[Config]):
        """Returns (latency, layouts, schedule, loop_space)."""
        task = self.task
        try:
            layouts = task.layouts_from(layout_cfg) if layout_cfg else {}
            loop_space = task.loop_space_for(layouts)
            space = loop_space.space()
            if loop_cfg is None:
                loop_cfg = space.sample(self.rng)
            else:
                # the loop space may have been rebuilt for a new layout:
                # keep genes that still exist, re-seed the rest
                fixed = {}
                for p in space.params:
                    val = loop_cfg.get(p.name)
                    fixed[p.name] = val if val in p.choices else p.sample(self.rng)
                loop_cfg = fixed
            sched = loop_space.schedule(loop_cfg)
            lat = task.measure(layouts, sched)
            return lat, layout_cfg, loop_cfg, sched
        except BudgetExhausted:
            raise
        except (LayoutError, LoweringError, ValueError):
            return math.inf, layout_cfg, loop_cfg, None

    def tune(self, budget: int) -> TuneResult:
        task = self.task
        layout_space = task.layout_space()
        has_layouts = len(layout_space) > 0

        population: List[Tuple[float, Optional[Config], Optional[Config]]] = []
        try:
            while len(population) < self.population_size:
                lcfg = layout_space.sample(self.rng) if has_layouts else None
                lat, lcfg, loop_cfg, _ = self._evaluate(lcfg, None)
                population.append((lat, lcfg, loop_cfg))
            while task.measurements < budget:
                population.sort(key=lambda p: p[0])
                parents = population[: self.elite]
                children = []
                while (
                    len(children) < self.population_size - self.elite
                    and task.measurements < budget
                ):
                    a = self.rng.choice(parents)
                    b = self.rng.choice(parents)
                    child_layout = None
                    if has_layouts:
                        child_layout = layout_space.crossover(
                            a[1] or layout_space.default(),
                            b[1] or layout_space.default(),
                            self.rng,
                        )
                        if self.rng.random() < self.mutation_rate:
                            child_layout = layout_space.mutate(
                                child_layout, self.rng, n=1
                            )
                    seed_loop = a[2] if self.rng.random() < 0.5 else b[2]
                    lat, lcfg, loop_cfg, _ = self._evaluate(child_layout, seed_loop)
                    children.append((lat, lcfg, loop_cfg))
                population = parents + children
        except BudgetExhausted:
            pass

        return TuneResult(
            task_name=task.comp.name,
            best_latency=task.best_latency,
            best_layouts=task.best_record[0] if task.best_record else {},
            best_schedule=task.best_record[1] if task.best_record else None,
            measurements=task.measurements,
            history=list(task.history),
        )


def tune_genetic(comp, machine, budget: int = 1000, seed: int = 0) -> TuneResult:
    """Joint layout+loop tuning with a genetic algorithm (ablation)."""
    task = TuningTask(comp, machine, budget)
    return GeneticTuner(task, seed=seed).tune(budget)
