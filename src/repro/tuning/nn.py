"""Minimal numpy neural-network layer for the PPO agents.

A two-hidden-layer tanh MLP with manual backprop and Adam.  Sized for the
tiny state/action vectors of schedule tuning; no external dependency.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class MLP:
    """``in_dim -> hidden -> hidden -> out_dim`` with tanh activations."""

    def __init__(self, in_dim: int, hidden: int, out_dim: int, rng: np.random.Generator):
        def init(fan_in, fan_out):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            return rng.normal(0.0, scale, size=(fan_in, fan_out))

        self.params = [
            init(in_dim, hidden), np.zeros(hidden),
            init(hidden, hidden), np.zeros(hidden),
            init(hidden, out_dim), np.zeros(out_dim),
        ]
        self._adam_m = [np.zeros_like(p) for p in self.params]
        self._adam_v = [np.zeros_like(p) for p in self.params]
        self._adam_t = 0
        self._cache: Optional[Tuple] = None

    def forward(self, X: np.ndarray) -> np.ndarray:
        W1, b1, W2, b2, W3, b3 = self.params
        Z1 = X @ W1 + b1
        A1 = np.tanh(Z1)
        Z2 = A1 @ W2 + b2
        A2 = np.tanh(Z2)
        out = A2 @ W3 + b3
        self._cache = (X, A1, A2)
        return out

    def backward(self, dOut: np.ndarray) -> List[np.ndarray]:
        """Gradients of the last forward pass w.r.t. parameters."""
        if self._cache is None:
            raise RuntimeError("backward before forward")
        X, A1, A2 = self._cache
        W1, b1, W2, b2, W3, b3 = self.params
        dW3 = A2.T @ dOut
        db3 = dOut.sum(axis=0)
        dA2 = dOut @ W3.T
        dZ2 = dA2 * (1 - A2**2)
        dW2 = A1.T @ dZ2
        db2 = dZ2.sum(axis=0)
        dA1 = dZ2 @ W2.T
        dZ1 = dA1 * (1 - A1**2)
        dW1 = X.T @ dZ1
        db1 = dZ1.sum(axis=0)
        return [dW1, db1, dW2, db2, dW3, db3]

    def adam_step(self, grads: List[np.ndarray], lr: float = 3e-3,
                  beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
                  clip: float = 5.0) -> None:
        norm = np.sqrt(sum(float((g**2).sum()) for g in grads))
        if norm > clip:
            grads = [g * (clip / norm) for g in grads]
        self._adam_t += 1
        t = self._adam_t
        for i, g in enumerate(grads):
            self._adam_m[i] = beta1 * self._adam_m[i] + (1 - beta1) * g
            self._adam_v[i] = beta2 * self._adam_v[i] + (1 - beta2) * g**2
            mhat = self._adam_m[i] / (1 - beta1**t)
            vhat = self._adam_v[i] / (1 - beta2**t)
            self.params[i] -= lr * mhat / (np.sqrt(vhat) + eps)

    # -- (de)serialization for pretrained weights --------------------------------
    def state_dict(self) -> List[np.ndarray]:
        return [p.copy() for p in self.params]

    # -- exact checkpoint state ---------------------------------------------------
    def full_state(self) -> dict:
        """Everything needed to continue training bit-identically: the
        parameters *and* the Adam moments/step (``state_dict`` alone would
        silently reset the optimizer on resume)."""
        return {
            "params": [p.copy() for p in self.params],
            "adam_m": [m.copy() for m in self._adam_m],
            "adam_v": [v.copy() for v in self._adam_v],
            "adam_t": self._adam_t,
        }

    def load_full_state(self, state: dict) -> None:
        self.load_state_dict(state["params"])
        self._adam_m = [np.asarray(m, dtype=np.float64).copy() for m in state["adam_m"]]
        self._adam_v = [np.asarray(v, dtype=np.float64).copy() for v in state["adam_v"]]
        self._adam_t = int(state["adam_t"])
        self._cache = None

    def load_state_dict(self, params: List[np.ndarray]) -> None:
        if len(params) != len(self.params):
            raise ValueError("state dict size mismatch")
        for mine, theirs in zip(self.params, params):
            if mine.shape != np.asarray(theirs).shape:
                raise ValueError("state dict shape mismatch")
        self.params = [np.asarray(p, dtype=np.float64).copy() for p in params]
