"""Baseline tuners reproducing the paper's comparison systems.

Each baseline keeps the defining limitation of the system it stands in for
(Section 8's analysis):

- :func:`tune_ansor_like` -- *Ansor*: strong loop tuning with a learned cost
  model, but the layout is **predetermined** (a fixed scheme, optionally
  NeoCPU-style packing with a fixed ``ot``); no joint tuning.
- :func:`tune_autotvm_like` -- *AutoTVM*: template-restricted loop space
  (power-of-two tiles, one order pattern), fixed layout.
- :func:`tune_flextensor_like` -- *FlexTensor*: heuristic/RL exploration but
  **no cost model**, so every candidate costs a real measurement.
- :func:`vendor_library` -- *MKL-DNN / cuDNN / XNNPACK stand-in*: a fixed
  expert schedule in the vendor-preferred layout; no search at all beyond
  picking among a few internal kernel variants.
- :func:`tune_random_layout` -- random layout sampling (Fig. 11's Random).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

import numpy as np

from ..ir.compute import ComputeDef
from ..layout.layout import Layout
from ..layout.presets import default_schemes_for, fixed_scheme_layouts
from ..lower.lower import LoweringError
from ..machine.spec import MachineSpec
from .cost_model import CostModel
from .explorer import TOP_K, JointTuner, LoopTuner, TuneResult
from .loop_space import LoopSpace
from .ppo import PPOActor, SharedCritic
from .measurer import MeasureOptions
from .space import ConfigSpace, ParamSpec
from .task import BudgetExhausted, TuningTask


def _loop_only(
    task: TuningTask,
    layouts: Dict[str, Layout],
    budget: int,
    seed: int,
    use_cost_model: bool,
    use_ppo_walk: bool,
    restrict_pow2: bool = False,
    single_pattern: bool = False,
) -> TuneResult:
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    cost_model = CostModel() if use_cost_model else None
    loop_actor = None
    if use_ppo_walk:
        loop_actor = PPOActor(SharedCritic(nprng), nprng)
    # loss/retrain telemetry goes to the run trace (no-op when disabled)
    if cost_model is not None:
        cost_model.metrics = task.trace.metrics
    if loop_actor is not None:
        loop_actor.metrics = task.trace.metrics
        loop_actor.metrics_prefix = "ppo.loop"
        loop_actor.trace = task.trace
    tuner = LoopTuner(task, rng, nprng, cost_model, loop_actor)
    loop_space = task.loop_space_for(layouts)
    if restrict_pow2 or single_pattern:
        loop_space = _restrict_space(loop_space, restrict_pow2, single_pattern)
    best = (math.inf, None, None)
    with task.trace.span(
        "tune_task", task=task.comp.name, machine=task.machine.name,
        budget=(task.budget or budget),
    ) as sp:
        cur = None
        stalls = 0
        while task.measurements < (task.budget or budget) and stalls < 5:
            remaining = (task.budget or budget) - task.measurements
            before = task.measurements
            try:
                lat, cfg, sched = tuner.run_round(
                    layouts, loop_space, min(TOP_K, remaining), cur
                )
            except BudgetExhausted:
                break
            # Small/restricted spaces saturate the measurement cache; stop
            # once rounds no longer consume budget instead of spinning.
            stalls = stalls + 1 if task.measurements == before else 0
            if cfg is not None:
                cur = cfg
            if lat < best[0]:
                best = (lat, cfg, sched)
        sp.set(best_latency=task.best_latency, measurements=task.measurements)
    task.measurer.publish_metrics()
    return TuneResult(
        task_name=task.comp.name,
        best_latency=task.best_latency,
        best_layouts=task.best_record[0] if task.best_record else dict(layouts),
        best_schedule=task.best_record[1] if task.best_record else best[2],
        measurements=task.measurements,
        history=list(task.history),
        best_loop_config=best[1],
        telemetry=task.measurer.stats.as_dict(),
        timeline=task.timeline.snapshot(),
    )


def _restrict_space(loop_space: LoopSpace, pow2: bool, single_pattern: bool) -> LoopSpace:
    """Shrink a loop space the way a hand-written template does."""
    params = []
    for p in loop_space.space().params:
        choices = p.choices
        if pow2 and p.name.startswith("tile_"):
            choices = [c for c in choices if c & (c - 1) == 0] or [1]
        if single_pattern and p.name == "pattern":
            choices = [0]
        params.append(ParamSpec(p.name, choices, default=choices[0]))
    restricted = ConfigSpace(params, name=loop_space.space().name + ":restricted")
    loop_space._space = restricted
    return loop_space


def _best_fixed_scheme(
    comp: ComputeDef, machine: MachineSpec, scheme: Optional[str]
) -> Dict[str, Layout]:
    """Pick the baseline's predetermined layout.

    ``scheme=None`` mimics the paper's evaluation courtesy of testing a
    couple of predefined layouts and reporting the best: we pick the scheme
    a practitioner would for the platform (packed channels on CPU,
    channel-major on GPU).
    """
    if scheme is not None:
        return fixed_scheme_layouts(comp, scheme)
    if "conv" in comp.tags:
        return fixed_scheme_layouts(comp, "NCHWc" if not machine.is_gpu else "NOHW")
    if "gemm" in comp.tags:
        return fixed_scheme_layouts(comp, "KN")
    return {}


def tune_ansor_like(
    comp: ComputeDef,
    machine: MachineSpec,
    budget: int = 1000,
    seed: int = 0,
    scheme: Optional[str] = None,
    measure: Optional[MeasureOptions] = None,
    trace=None,
) -> TuneResult:
    task = TuningTask(comp, machine, budget, measure=measure, trace=trace)
    layouts = _best_fixed_scheme(comp, machine, scheme)
    return _loop_only(
        task, layouts, budget, seed, use_cost_model=True, use_ppo_walk=False
    )


def tune_autotvm_like(
    comp: ComputeDef,
    machine: MachineSpec,
    budget: int = 1000,
    seed: int = 0,
    scheme: Optional[str] = None,
    measure: Optional[MeasureOptions] = None,
    trace=None,
) -> TuneResult:
    task = TuningTask(comp, machine, budget, measure=measure, trace=trace)
    layouts = _best_fixed_scheme(comp, machine, scheme)
    return _loop_only(
        task,
        layouts,
        budget,
        seed,
        use_cost_model=True,
        use_ppo_walk=False,
        restrict_pow2=True,
        single_pattern=True,
    )


def tune_flextensor_like(
    comp: ComputeDef,
    machine: MachineSpec,
    budget: int = 1000,
    seed: int = 0,
    scheme: Optional[str] = None,
    measure: Optional[MeasureOptions] = None,
    trace=None,
) -> TuneResult:
    task = TuningTask(comp, machine, budget, measure=measure, trace=trace)
    layouts = _best_fixed_scheme(comp, machine, scheme)
    return _loop_only(
        task, layouts, budget, seed, use_cost_model=False, use_ppo_walk=True
    )


def tune_alt(
    comp: ComputeDef,
    machine: MachineSpec,
    budget: int = 1000,
    joint_fraction: float = 0.3,
    seed: int = 0,
    levels: int = 1,
    searcher: str = "ppo",
    use_cost_model: bool = True,
    pretrained: Optional[Dict] = None,
    measure: Optional[MeasureOptions] = None,
    trace=None,
    profiler=None,
    checkpoint=None,
    restore: Optional[Dict] = None,
    cost_model_seed: Optional[Dict] = None,
) -> TuneResult:
    """Full ALT: joint stage (30% of budget by default) + loop-only stage.

    Joint layout exploration needs a minimum number of measurements to
    assess even its anchor layouts; below that the joint stage is pure
    noise, so ALT degenerates gracefully to loop tuning on its packed
    anchor (the same predetermined layout the strongest baselines use).

    ``checkpoint`` (a :class:`~.checkpoint.CheckpointManager`) enables
    periodic state snapshots; ``restore`` resumes from a previously loaded
    snapshot payload -- with the same seed and budget the resumed run
    reproduces the uninterrupted run's result exactly.  ``profiler`` (a
    :class:`repro.obs.Profiler`) attributes the run's wall time across the
    inner-loop phases without changing the search.
    """
    task = TuningTask(
        comp, machine, budget, levels=levels, measure=measure, trace=trace,
        profiler=profiler,
    )
    tuner = JointTuner(
        task,
        seed=seed,
        searcher=searcher,
        use_cost_model=use_cost_model,
        pretrained=pretrained,
        checkpoint=checkpoint,
        cost_model_seed=cost_model_seed,
    )
    if restore is not None:
        tuner.load_full_state(restore)
    joint_budget = int(budget * joint_fraction) if comp.is_complex else 0
    if budget < 48:
        joint_budget = 0
    return tuner.tune(joint_budget, budget - joint_budget)


def tune_alt_ol(
    comp: ComputeDef,
    machine: MachineSpec,
    budget: int = 1000,
    seed: int = 0,
    measure: Optional[MeasureOptions] = None,
    trace=None,
) -> TuneResult:
    """ALT-OL ablation: loop optimization only, channel-last fixed layout."""
    task = TuningTask(comp, machine, budget, measure=measure, trace=trace)
    if "conv" in comp.tags:
        layouts = fixed_scheme_layouts(comp, "NHWO")
    elif "gemm" in comp.tags:
        layouts = fixed_scheme_layouts(comp, "KN")
    else:
        layouts = {}
    return _loop_only(
        task, layouts, budget, seed, use_cost_model=True, use_ppo_walk=True
    )


def tune_random_layout(
    comp: ComputeDef,
    machine: MachineSpec,
    budget: int = 1000,
    joint_fraction: float = 1.0,
    seed: int = 0,
    measure: Optional[MeasureOptions] = None,
    trace=None,
) -> TuneResult:
    """Random layout sampling with loop rounds (Fig. 11 'Random')."""
    task = TuningTask(comp, machine, budget, measure=measure, trace=trace)
    tuner = JointTuner(task, seed=seed, searcher="random", use_cost_model=True)
    joint_budget = int(budget * joint_fraction)
    return tuner.tune(joint_budget, budget - joint_budget)


def vendor_library(
    comp: ComputeDef,
    machine: MachineSpec,
    seed: int = 0,
    measure: Optional[MeasureOptions] = None,
    trace=None,
) -> TuneResult:
    """Expert fixed-layout kernels: try a few hand-style variants, keep best.

    Emulates MKL-DNN/cuDNN/XNNPACK: excellent engineering within one
    predetermined layout family, zero layout search.
    """
    task = TuningTask(comp, machine, budget=64, measure=measure, trace=trace)
    schemes = (
        ["NCHWc", "NHWO"] if not machine.is_gpu else ["NOHW", "NCHWc"]
    )
    if "gemm" in comp.tags:
        schemes = ["NKn", "KN"]
    rng = random.Random(seed)
    for scheme in schemes:
        try:
            layouts = fixed_scheme_layouts(comp, scheme)
            loop_space = task.loop_space_for(layouts)
        except (LoweringError, ValueError):
            continue
        space = loop_space.space()
        # expert kernel-variant selection: the same sketch schedules any
        # hand-written library encodes (parallel outers, vectorized inner,
        # register blocking), plus a few register-tile variants
        candidates = loop_space.heuristic_configs()
        for tile in (8, 32):
            cfg = dict(candidates[0])
            for p in space.params:
                if p.name.startswith("tile_") and not p.name.startswith("tile_r"):
                    cfg[p.name] = min(p.choices, key=lambda c: abs(c - tile))
            candidates.append(cfg)
        batch = []
        for cfg in candidates:
            try:
                batch.append((layouts, loop_space.schedule(cfg)))
            except (LoweringError, ValueError):
                continue
        task.measure_batch(batch)  # kernel variants evaluate concurrently
    task.measurer.publish_metrics()
    return TuneResult(
        task_name=comp.name,
        best_latency=task.best_latency,
        best_layouts=task.best_record[0] if task.best_record else {},
        best_schedule=task.best_record[1] if task.best_record else None,
        measurements=task.measurements,
        history=list(task.history),
        telemetry=task.measurer.stats.as_dict(),
    )


BASELINE_TUNERS = {
    "vendor": vendor_library,
    "autotvm": tune_autotvm_like,
    "flextensor": tune_flextensor_like,
    "ansor": tune_ansor_like,
    "alt": tune_alt,
}
