"""Cross-task scheduler: whole-network tuning (paper Section 6, Fig. 10-12).

ALT's headline numbers are *end-to-end network* speedups, which means the
measurement budget is a resource shared by every operator in the model.
This module supplies the missing outer-outer loop:

1. **Task extraction** -- the graph's complex operators are deduplicated
   into workload classes by :func:`repro.pipeline.task_signature` (op tags,
   shapes, attributes; dtype is uniform in this IR).  Each class carries an
   *occurrence weight*: a ResNet block's repeated 3x3 convolution is one
   task measured once but counted ``w`` times in the network objective.

2. **Gradient-based budget allocation** (the Ansor/TVM task-scheduler
   design, PAPERS.md) -- after a round-robin warmup grant to every task,
   each subsequent grant goes to the task with the largest estimated
   ``d(end-to-end latency)/d(budget)``: the measured improvement rate of
   its last grant, floored by a discounted optimistic rate
   ``w_i * best_i / spent_i`` so heavy, still-slow tasks keep receiving
   budget after a temporary plateau.  Tasks whose search space saturates
   (a grant consumes zero fresh measurements) go dormant.

3. **Assembly** -- per-task best records feed a
   :class:`~repro.tuning.records.RecordStore`; one record-cached
   :func:`~repro.pipeline.compile_graph` pass rebuilds the whole-network
   schedule (layout propagation, conversion insertion, fusion) without
   spending another measurement, and the result is compared against the
   untuned default-layout baseline (:func:`~repro.pipeline.compile_untuned`).
   The reported network schedule is never worse than that baseline -- if
   per-op tuning plus conversion overhead ever loses end-to-end, the
   baseline program is kept instead.

Checkpoint/resume reuses the per-task machinery: the scheduler snapshots
its allocation cursor plus every task's :meth:`JointTuner.full_state` at
*grant boundaries*, so a killed network tune resumes bit-identically (the
partially-executed grant is re-run deterministically from the restored RNG
streams).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..graph.graph import Graph
from ..ir.compute import ComputeDef
from ..machine.spec import MachineSpec
from ..obs.log import log
from ..obs.trace import NULL_TRACE, Trace
from .checkpoint import CheckpointError, CheckpointManager
from .explorer import JointTuner, TuneResult
from .measurer import MeasureOptions
from .records import RecordStore, apply_record, record_from_result
from .task import TuningTask

#: tag on scheduler checkpoints so a single-op resume cannot consume them
NETWORK_CHECKPOINT_KIND = "network"


@dataclass
class SchedulerOptions:
    """Knobs of the cross-task allocator."""

    #: measurements per grant; ``None`` derives one from budget/task count
    round_budget: Optional[int] = None
    #: share of a task's *first* grant spent in the joint stage
    joint_fraction: float = 0.3
    #: discount on the optimistic forward gradient ``w * best / spent``
    #: relative to the measured backward gradient (improvement per unit)
    forward_discount: float = 0.05
    #: derived round budget is clamped to this range
    min_round: int = 16
    max_round: int = 64


@dataclass
class NetworkTask:
    """One deduplicated workload class of a graph."""

    name: str  # representative node's name
    rep: ComputeDef  # representative operator (first occurrence)
    weight: int  # number of graph nodes in this class
    node_names: List[str] = field(default_factory=list)


def extract_tasks(graph: Graph) -> List[NetworkTask]:
    """Deduplicate a graph's complex operators into weighted tuning tasks.

    Deterministic: classes are keyed by
    :func:`~repro.pipeline.task_signature` and ordered by first appearance
    in topological order, so repeated extraction from equal graphs yields
    identical task lists (which checkpoint resume relies on).
    """
    from ..pipeline import task_signature

    classes: Dict[tuple, NetworkTask] = {}
    for node in graph.complex_nodes():
        sig = task_signature(node)
        task = classes.get(sig)
        if task is None:
            classes[sig] = NetworkTask(
                name=node.name, rep=node, weight=1, node_names=[node.name]
            )
        else:
            task.weight += 1
            task.node_names.append(node.name)
    return list(classes.values())


@dataclass
class TaskReport:
    """Per-task summary row of a network tune."""

    name: str
    weight: int
    node_names: List[str]
    granted: int
    measurements: int
    grants: int
    best_latency: float


@dataclass
class NetworkTuneResult:
    """Outcome of :func:`tune_network`."""

    graph_name: str
    machine: str
    budget: int
    seed: int
    #: per-task tuning results keyed by representative node name
    tasks: Dict[str, TuneResult]
    reports: List[TaskReport]
    #: one row per grant: phase/task/granted/consumed/gradient/best
    allocations: List[Dict]
    #: end-to-end latency of the emitted network schedule
    network_latency_s: float
    #: untuned default-layout baseline latency
    baseline_latency_s: float
    #: the emitted compiled model (tuned, or the baseline if it won)
    model: object
    n_nodes: int
    n_complex_nodes: int
    #: True when the tuned assembly beat the baseline (False -> fell back)
    used_tuned: bool = True
    #: numeric check outcome (None when ``verify=False``)
    verified: Optional[bool] = None

    @property
    def speedup(self) -> float:
        if self.network_latency_s <= 0:
            return math.inf
        return self.baseline_latency_s / self.network_latency_s


class _TaskTuner:
    """One network task's tuner plus its allocation bookkeeping."""

    def __init__(
        self,
        net: NetworkTask,
        machine: MachineSpec,
        seed: int,
        measure: Optional[MeasureOptions],
        trace: Optional[Trace],
        joint_fraction: float,
        warm: Optional[Dict] = None,
        profiler=None,
    ):
        self.net = net
        self.task = TuningTask(
            net.rep, machine, budget=0, measure=measure, trace=trace,
            profiler=profiler,
        )
        self.tuner = JointTuner(
            self.task,
            seed=seed,
            pretrained=(warm or {}).get("pretrained"),
            cost_model_seed=(warm or {}).get("cost_model_seed"),
        )
        self.joint_fraction = joint_fraction
        self.granted = 0
        self.grants = 0
        self.started = False
        self.dormant = False
        self.last_consumed = 0
        self.last_improvement = 0.0
        #: exact database record serving this task (set by the owner); a
        #: served task never receives grants -- its result costs zero fresh
        #: measurements
        self.db_record = None

    def grant(self, n: int) -> int:
        """Give the task ``n`` more measurements; returns the consumption."""
        before = self.task.measurements
        best_before = self.task.best_latency
        # exactly n of fresh headroom per grant (unconsumed headroom from a
        # saturated earlier grant does not accumulate)
        self.task.budget = before + n
        self.granted += n
        self.grants += 1
        if not self.started:
            # the first grant runs the full two-stage search; tiny grants
            # skip the joint stage like tune_alt does under budget < 48
            joint = int(n * self.joint_fraction) if n >= 48 else 0
            self.tuner.tune(joint, n - joint, publish=False)
            self.started = True
        else:
            self.tuner.refine_more(n)
        consumed = self.task.measurements - before
        self.last_consumed = consumed
        if consumed and math.isfinite(best_before):
            self.last_improvement = max(best_before - self.task.best_latency, 0.0)
        elif consumed:
            # first finite latency: everything measured so far is improvement
            self.last_improvement = (
                self.task.best_latency if math.isfinite(self.task.best_latency)
                else 0.0
            )
        else:
            self.last_improvement = 0.0
        # zero fresh measurements means the search space is exhausted (the
        # task cache absorbed the whole grant): granting more is pointless
        self.dormant = consumed == 0
        return consumed

    def gradient(self, forward_discount: float) -> float:
        """Estimated d(network latency)/d(budget) of granting this task."""
        if self.dormant:
            return -math.inf
        best = self.task.best_latency
        if not math.isfinite(best):
            # no measurable point yet: highest priority
            return math.inf
        w = self.net.weight
        spent = max(self.task.measurements, 1)
        backward = self.last_improvement / max(self.last_consumed, 1)
        optimistic = best / spent
        return w * max(backward, forward_discount * optimistic)

    # -- checkpoint -------------------------------------------------------------
    def full_state(self) -> Dict:
        return {
            "name": self.net.name,
            "granted": self.granted,
            "grants": self.grants,
            "started": self.started,
            "dormant": self.dormant,
            "last_consumed": self.last_consumed,
            "last_improvement": self.last_improvement,
            "task_budget": self.task.budget,
            "tuner": self.tuner.full_state(),
        }

    def load_full_state(self, state: Dict) -> None:
        if state.get("name") != self.net.name:
            raise CheckpointError(
                f"network checkpoint task mismatch: saved {state.get('name')!r},"
                f" extracted {self.net.name!r}"
            )
        self.granted = int(state["granted"])
        self.grants = int(state["grants"])
        self.started = bool(state["started"])
        self.dormant = bool(state["dormant"])
        self.last_consumed = int(state["last_consumed"])
        self.last_improvement = float(state["last_improvement"])
        # JointTuner.load_full_state validates the saved budget against the
        # task's, so the granted headroom must be restored first
        self.task.budget = state["task_budget"]
        self.tuner.load_full_state(state["tuner"])

    def report(self) -> TaskReport:
        return TaskReport(
            name=self.net.name,
            weight=self.net.weight,
            node_names=list(self.net.node_names),
            granted=self.granted,
            measurements=self.task.measurements,
            grants=self.grants,
            best_latency=self.task.best_latency,
        )


class NetworkTuner:
    """Cross-task budget allocator over one graph's deduplicated tasks."""

    def __init__(
        self,
        graph_factory: Callable[[], Graph],
        machine: MachineSpec,
        budget: int,
        seed: int = 0,
        measure: Optional[MeasureOptions] = None,
        trace: Optional[Trace] = None,
        checkpoint: Optional[CheckpointManager] = None,
        options: Optional[SchedulerOptions] = None,
        database=None,
        profiler=None,
    ):
        self.graph_factory = graph_factory
        self.graph = graph_factory()
        self.machine = machine
        self.budget = int(budget)
        self.seed = seed
        self.measure = measure
        self.trace = trace if trace is not None else NULL_TRACE
        # fleet-wide error aggregation: per-task `measure.*` counters only
        # reach the run registry at publish time (exactly-once, per task),
        # so every task's measurer additionally mirrors its fault-family
        # counters *live* into the run trace's registry under `fleet.*` --
        # one shared namespace across tasks and serve workers instead of
        # process-local tallies that undercount fleet error rates
        if (
            self.measure is not None
            and self.measure.shared_metrics is None
            and trace is not None
        ):
            self.measure.shared_metrics = self.trace.metrics
        #: shared phase profiler: every task's tuner folds into one profile
        self.profiler = profiler
        self.checkpoint = checkpoint
        self.opts = options or SchedulerOptions()
        self.database = database
        net_tasks = extract_tasks(self.graph)
        if not net_tasks:
            raise ValueError(
                f"graph {self.graph.name!r} has no complex operators to tune"
            )
        if self.opts.round_budget is not None:
            self.round_budget = int(self.opts.round_budget)
        else:
            derived = self.budget // max(3 * len(net_tasks), 1)
            self.round_budget = max(
                self.opts.min_round, min(self.opts.max_round, derived)
            )
        # per-task seeds are offset by position so tasks explore
        # independently while the whole run stays a function of one seed;
        # the database (when given) is consulted per task *before* any
        # budget flows: an exact hit parks the task (zero grants, zero fresh
        # measurements), a near miss warm-starts its tuner
        self.tuners = []
        for i, net in enumerate(net_tasks):
            record = warm = None
            if database is not None:
                record = database.lookup(net.rep, machine.name)
                if record is None:
                    warm = database.warm_start(net.rep, machine.name)
            tuner = _TaskTuner(
                net, machine, seed + i, measure, trace,
                self.opts.joint_fraction, warm=warm, profiler=profiler,
            )
            if record is not None:
                tuner.db_record = record
                tuner.dormant = True
                tuner.started = True
                self.trace.event(
                    "record_cache_hit", task=net.name, latency=record.latency_s
                )
                self.trace.metrics.counter("scheduler.db_hits").inc()
            elif warm is not None:
                self.trace.event(
                    "record_warm_start", task=net.name,
                    distance=warm.get("distance"),
                )
                self.trace.metrics.counter("scheduler.db_warm_starts").inc()
            self.tuners.append(tuner)
        self.allocations: List[Dict] = []
        self.warmup_idx = 0

    # -- checkpoint -------------------------------------------------------------
    def full_state(self) -> Dict:
        return {
            "kind": NETWORK_CHECKPOINT_KIND,
            "graph": self.graph.name,
            "machine": self.machine.name,
            "budget": self.budget,
            "seed": self.seed,
            "round_budget": self.round_budget,
            "warmup_idx": self.warmup_idx,
            "allocations": [dict(a) for a in self.allocations],
            "tasks": [t.full_state() for t in self.tuners],
        }

    def load_full_state(self, payload: Dict) -> None:
        for key, mine in (
            ("kind", NETWORK_CHECKPOINT_KIND),
            ("graph", self.graph.name),
            ("machine", self.machine.name),
            ("budget", self.budget),
            ("seed", self.seed),
            ("round_budget", self.round_budget),
        ):
            if payload.get(key) != mine:
                raise CheckpointError(
                    f"network checkpoint {key} mismatch: saved "
                    f"{payload.get(key)!r}, this run has {mine!r}"
                )
        saved_tasks = payload["tasks"]
        if len(saved_tasks) != len(self.tuners):
            raise CheckpointError(
                f"network checkpoint has {len(saved_tasks)} tasks, the graph "
                f"extracts {len(self.tuners)}"
            )
        self.warmup_idx = int(payload["warmup_idx"])
        self.allocations = [dict(a) for a in payload["allocations"]]
        for tuner, state in zip(self.tuners, saved_tasks):
            tuner.load_full_state(state)

    # -- allocation -------------------------------------------------------------
    def spent(self) -> int:
        return sum(t.task.measurements for t in self.tuners)

    def _grant(self, idx: int, phase: str, gradient: Optional[float]) -> int:
        tuner = self.tuners[idx]
        n = min(self.round_budget, self.budget - self.spent())
        consumed = tuner.grant(n)
        row = {
            "round": len(self.allocations),
            "phase": phase,
            "task": tuner.net.name,
            "weight": tuner.net.weight,
            "granted": n,
            "consumed": consumed,
            "gradient": gradient,
            "best_latency": tuner.task.best_latency,
            "spent_total": self.spent(),
        }
        self.allocations.append(row)
        self.trace.event("budget_grant", **row)
        log.debug(
            "grant %d -> %s (%s): consumed %d, best %.3e",
            n, tuner.net.name, phase, consumed, tuner.task.best_latency,
        )
        # grant boundary: every cursor lives on self/_TaskTuner, so this is
        # a consistent snapshot point
        if self.checkpoint is not None:
            self.checkpoint.tick(self.full_state)
        return consumed

    def allocate(self) -> None:
        """Run warmup + gradient rounds until the budget is exhausted."""
        with self.trace.span(
            "network_schedule",
            graph=self.graph.name,
            budget=self.budget,
            tasks=len(self.tuners),
            round_budget=self.round_budget,
        ) as sp:
            # streamed immediately (the span lands at end): a live watcher
            # needs the total budget up front for its burn-rate ETA
            self.trace.event(
                "network_start", graph=self.graph.name, budget=self.budget,
                tasks=len(self.tuners), round_budget=self.round_budget,
                spent=self.spent(),
            )
            # round-robin warmup: every task gets one grant so each has a
            # best latency and an improvement rate for the gradient rounds
            while self.warmup_idx < len(self.tuners) and self.spent() < self.budget:
                idx = self.warmup_idx
                # bump the cursor *before* the grant: the checkpoint tick at
                # the end of _grant must snapshot the post-grant cursor, or
                # a resume would re-grant the same task
                self.warmup_idx += 1
                if self.tuners[idx].db_record is not None:
                    # served from the tuning database: assembly will apply
                    # its record directly, so it never receives budget
                    continue
                self._grant(idx, "warmup", None)
            # gradient rounds: always feed the task with the largest
            # estimated end-to-end gain per measurement
            while self.spent() < self.budget:
                grads = [t.gradient(self.opts.forward_discount) for t in self.tuners]
                best_idx = max(
                    range(len(grads)), key=lambda i: (grads[i], -i)
                )
                if grads[best_idx] == -math.inf:
                    log.info(
                        "all %d tasks dormant after %d/%d measurements; "
                        "stopping early", len(self.tuners), self.spent(),
                        self.budget,
                    )
                    break
                self._grant(best_idx, "gradient", grads[best_idx])
            if self.checkpoint is not None:
                self.checkpoint.save(self.full_state())
            sp.set(spent=self.spent(), rounds=len(self.allocations))
        # exactly-once per task: the registry merge in publish_metrics is
        # additive, so it must not run per grant
        for t in self.tuners:
            t.task.measurer.publish_metrics()

    # -- assembly ---------------------------------------------------------------
    def assemble(self, verify: bool = False) -> NetworkTuneResult:
        """Build the whole-network schedule from the per-task records."""
        from ..pipeline import CompileOptions, compile_graph, compile_untuned

        task_results: Dict[str, TuneResult] = {}
        store = RecordStore()
        for t in self.tuners:
            if t.db_record is not None:
                # database hit: the record IS the result -- apply it without
                # spending a single fresh measurement
                task_results[t.net.name] = self._result_from_record(t)
                store.add(t.db_record)
                continue
            res = t.tuner.result()
            task_results[t.net.name] = res
            if (
                res.best_schedule is not None
                and math.isfinite(res.best_latency)
                and self._beats_default(t.net.rep, res)
            ):
                rec = record_from_result(
                    t.net.rep, self.machine.name, res, warm=True
                )
                store.add(rec)
                if self.database is not None:
                    # deposit the freshly tuned winner so the next run of
                    # this (or a similar) workload starts from it
                    self.database.add(rec)
            else:
                # the search lost to the no-tuning heuristic on this task
                # (possible under tiny grants): record the identity layout
                # with no schedule, which the record-cached compile resolves
                # to default_schedule -- per task, tuning never regresses
                store.add(self._identity_record(t.net.rep))

        with self.trace.span("network_assembly", records=len(store)):
            # record-cached compile: every extracted task hits the store, so
            # assembly spends no measurements (an unrecorded task -- nothing
            # measurable found in its grants -- falls back to a minimal tune)
            tuned = compile_graph(
                self.graph_factory(),
                self.machine,
                CompileOptions(
                    mode="alt",
                    total_budget=0,
                    seed=self.seed,
                    records=store,
                    measure=self.measure,
                    trace=self.trace,
                ),
            )
            baseline = compile_untuned(
                self.graph_factory(), self.machine, trace=self.trace
            )
        used_tuned = tuned.latency_s <= baseline.latency_s
        if not used_tuned:
            # never emit a schedule that loses to not tuning at all: layout
            # conversion overhead can in principle eat the per-op wins
            log.warning(
                "tuned network (%.3e s) lost to the untuned baseline "
                "(%.3e s); keeping the baseline program",
                tuned.latency_s, baseline.latency_s,
            )
        model = tuned if used_tuned else baseline
        verified: Optional[bool] = None
        if verify:
            verified = self._verify(model)
        result = NetworkTuneResult(
            graph_name=self.graph.name,
            machine=self.machine.name,
            budget=self.budget,
            seed=self.seed,
            tasks=task_results,
            reports=[t.report() for t in self.tuners],
            allocations=list(self.allocations),
            network_latency_s=model.latency_s,
            baseline_latency_s=baseline.latency_s,
            model=model,
            n_nodes=len(self.graph.nodes),
            n_complex_nodes=len(self.graph.complex_nodes()),
            used_tuned=used_tuned,
            verified=verified,
        )
        self.trace.event(
            "network_result",
            graph=result.graph_name,
            latency_s=result.network_latency_s,
            baseline_latency_s=result.baseline_latency_s,
            speedup=result.speedup,
            tasks=len(result.tasks),
            used_tuned=used_tuned,
        )
        self.trace.metrics.gauge("scheduler.network_latency_s").set(
            result.network_latency_s
        )
        return result

    def _beats_default(self, rep: ComputeDef, res: TuneResult) -> bool:
        """Machine-model comparison of a tuned record vs. the untuned op."""
        from ..lower.lower import LoweringError, lower_compute
        from ..machine.latency import estimate_stage_seconds
        from ..pipeline import default_schedule

        try:
            tuned = estimate_stage_seconds(
                lower_compute(rep, res.best_layouts, res.best_schedule),
                self.machine,
            )
            bare = lower_compute(rep, {})
            default = estimate_stage_seconds(
                lower_compute(rep, {}, default_schedule(bare, self.machine)),
                self.machine,
            )
        except (LoweringError, ValueError):
            return False
        return tuned <= default

    def _result_from_record(self, t: _TaskTuner) -> TuneResult:
        """A zero-measurement :class:`TuneResult` serving a database hit."""
        layouts, schedule = apply_record(t.db_record, t.net.rep)
        return TuneResult(
            task_name=t.net.name,
            best_latency=t.db_record.latency_s,
            best_layouts=layouts,
            best_schedule=schedule,
            measurements=0,
        )

    def _identity_record(self, rep: ComputeDef):
        from ..pipeline import task_signature
        from .records import TuneRecord

        return TuneRecord(
            task=task_signature(rep),
            machine=self.machine.name,
            latency_s=math.inf,
            layouts={},
            schedule=None,
            measurements=0,
        )

    def _verify(self, model) -> bool:
        """Numerically check the emitted model against the graph reference."""
        from ..exec.graph_runner import (
            random_inputs,
            run_compiled,
            run_graph_reference,
        )

        inputs = random_inputs(model.graph, seed=self.seed)
        got = run_compiled(model, inputs)  # logical graph outputs only
        want = run_graph_reference(model.graph, inputs)
        ok = all(
            np.allclose(arr, want[name], rtol=1e-5, atol=1e-7)
            for name, arr in got.items()
        )
        if not ok:
            log.error("network verification FAILED for %s", model.graph.name)
        return ok


def tune_network(
    graph_factory: Callable[[], Graph],
    machine: MachineSpec,
    budget: int,
    seed: int = 0,
    measure: Optional[MeasureOptions] = None,
    trace: Optional[Trace] = None,
    checkpoint: Optional[CheckpointManager] = None,
    restore: Optional[Dict] = None,
    options: Optional[SchedulerOptions] = None,
    verify: bool = False,
    database=None,
    profiler=None,
) -> NetworkTuneResult:
    """Tune a whole network under one shared measurement budget.

    ``graph_factory`` must build a fresh, deterministic :class:`Graph` per
    call (:func:`~repro.pipeline.compile_graph` mutates graphs during
    assembly).  ``checkpoint``/``restore`` mirror
    :func:`~repro.tuning.baselines.tune_alt`: pass a
    :class:`CheckpointManager` to snapshot at grant boundaries, and a
    loaded payload to resume -- a killed-and-resumed network tune is
    bit-identical to the uninterrupted run.  ``database`` (a
    :class:`~repro.tuning.database.TuningDatabase`) is consulted first per
    task: exact hits compile straight from their records with zero fresh
    measurements, near misses warm-start, and fresh winners are deposited
    back for the next run.
    """
    tuner = NetworkTuner(
        graph_factory,
        machine,
        budget,
        seed=seed,
        measure=measure,
        trace=trace,
        checkpoint=checkpoint,
        options=options,
        database=database,
        profiler=profiler,
    )
    if restore is not None:
        tuner.load_full_state(restore)
        log.info(
            "resuming network tune of %s at %d/%d measurements",
            tuner.graph.name, tuner.spent(), budget,
        )
    tuner.allocate()
    return tuner.assemble(verify=verify)
