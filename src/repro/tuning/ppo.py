"""PPO agents for schedule-space exploration (paper Section 5.2).

The paper drives both layout and loop exploration with proximal policy
optimization: a *generic split actor* emits a continuous action per tunable
parameter which Eq. 2 maps to a concrete split factor (``F = R(D * a)``),
and a *global shared critic* models interference between the subspaces.

This module implements:

- :class:`SharedCritic` -- one value network shared by every actor;
- :class:`PPOActor` -- Gaussian policy over ``[0, 1]^k`` actions (squashed
  through a sigmoid), updated with the clipped PPO objective;
- :class:`encode_space_state` -- the state encoding: the "concatenation of
  the current states of all primitives" (current factor vs. dimension size
  per tunable parameter), padded to a fixed slot count so one pretrained
  agent generalizes across operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs.profiler import NULL_PROFILER
from .nn import MLP
from .space import Config, ConfigSpace

#: fixed number of parameter slots in states/actions
MAX_SLOTS = 24
#: per-slot state features
_SLOT_FEATS = 3
STATE_DIM = MAX_SLOTS * _SLOT_FEATS + 2


def encode_space_state(space: ConfigSpace, config: Optional[Config]) -> np.ndarray:
    """Encode the current primitive states for a config space.

    Per slot: log2(current choice) / log2(max choice), log2(max choice),
    and the number of choices (log-scaled).  Two globals: parameter count
    and total log-space-size.
    """
    state = np.zeros(STATE_DIM)
    for i, p in enumerate(space.params[:MAX_SLOTS]):
        numeric = [c for c in p.choices if isinstance(c, (int, float))]
        hi = max(numeric) if numeric else len(p.choices)
        cur = (config or {}).get(p.name, p.default)
        cur_val = cur if isinstance(cur, (int, float)) else p.choices.index(cur)
        base = i * _SLOT_FEATS
        state[base] = math.log2(max(cur_val, 1)) / max(math.log2(max(hi, 2)), 1.0)
        state[base + 1] = math.log2(max(hi, 1))
        state[base + 2] = math.log2(len(p.choices))
    state[-2] = len(space.params)
    state[-1] = math.log2(max(space.size(), 1))
    return state


def decode_actions(space: ConfigSpace, actions: np.ndarray) -> Config:
    """Map actions in (0, 1) onto the space via Eq. 2's rounding."""
    cfg: Config = {}
    for i, p in enumerate(space.params):
        a = float(actions[i]) if i < len(actions) else 0.5
        cfg[p.name] = p.from_unit(a)
    return cfg


@dataclass
class Transition:
    state: np.ndarray
    raw_action: np.ndarray  # pre-squash Gaussian sample
    logp: float
    reward: float


class SharedCritic:
    """Global value network shared by all actors (paper Section 5.2.2)."""

    def __init__(self, rng: np.random.Generator, hidden: int = 64):
        self.net = MLP(STATE_DIM, hidden, 1, rng)

    def value(self, state: np.ndarray) -> float:
        return float(self.net.forward(state[None, :])[0, 0])

    def full_state(self) -> Dict:
        return {"net": self.net.full_state()}

    def load_full_state(self, state: Dict) -> None:
        self.net.load_full_state(state["net"])

    def update(self, states: np.ndarray, targets: np.ndarray, lr: float = 3e-3) -> float:
        pred = self.net.forward(states)[:, 0]
        err = pred - targets
        loss = float((err**2).mean())
        dOut = (2 * err / len(err))[:, None]
        self.net.adam_step(self.net.backward(dOut), lr=lr)
        return loss


class PPOActor:
    """Gaussian policy over ``MAX_SLOTS`` continuous actions in (0, 1)."""

    def __init__(
        self,
        critic: SharedCritic,
        rng: np.random.Generator,
        hidden: int = 64,
        clip_eps: float = 0.2,
        init_std: float = 0.6,
    ):
        self.net = MLP(STATE_DIM, hidden, MAX_SLOTS, rng)
        self.critic = critic
        self.rng = rng
        self.clip_eps = clip_eps
        self.log_std = math.log(init_std)
        self.buffer: List[Transition] = []
        #: optional ``repro.obs`` metrics registry; when set, every update
        #: records the clipped-surrogate policy loss and the critic's value
        #: loss (``<prefix>.policy_loss`` / ``<prefix>.value_loss``)
        self.metrics = None
        self.metrics_prefix = "ppo"
        #: optional ``repro.obs.Trace``: each update additionally emits a
        #: ``ppo_update`` event so learning *curves* (not just aggregate
        #: histograms) can be reconstructed from a saved trace
        self.trace = None
        #: phase profiler (injected by the tuner, like :attr:`metrics`)
        self.profiler = NULL_PROFILER

    # -- acting -----------------------------------------------------------------
    def act(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        """Sample raw Gaussian actions; squash with sigmoid for the caller."""
        mean = self.net.forward(state[None, :])[0]
        std = math.exp(self.log_std)
        raw = mean + (self.rng.standard_normal(MAX_SLOTS) * std if explore else 0.0)
        logp = float(
            -0.5 * (((raw - mean) / std) ** 2).sum()
            - MAX_SLOTS * (self.log_std + 0.5 * math.log(2 * math.pi))
        )
        self._last = (state, raw, logp)
        return 1.0 / (1.0 + np.exp(-raw))

    def record(self, reward: float) -> None:
        state, raw, logp = self._last
        self.buffer.append(Transition(state, raw, logp, reward))

    # -- learning -------------------------------------------------------------------
    def update(self, epochs: int = 4, lr: float = 3e-3) -> None:
        """Clipped PPO update over the buffered transitions."""
        if len(self.buffer) < 4:
            return
        with self.profiler.phase("ppo.update", items=len(self.buffer)):
            self._update(epochs, lr)

    def _update(self, epochs: int, lr: float) -> None:
        states = np.vstack([t.state for t in self.buffer])
        raws = np.vstack([t.raw_action for t in self.buffer])
        logp_old = np.array([t.logp for t in self.buffer])
        rewards = np.array([t.reward for t in self.buffer])

        values = self.critic.net.forward(states)[:, 0]
        adv = rewards - values
        if adv.std() > 1e-8:
            adv = (adv - adv.mean()) / (adv.std() + 1e-8)

        std = math.exp(self.log_std)
        policy_loss = 0.0
        for _ in range(epochs):
            mean = self.net.forward(states)
            diff = (raws - mean) / std
            logp = (
                -0.5 * (diff**2).sum(axis=1)
                - MAX_SLOTS * (self.log_std + 0.5 * math.log(2 * math.pi))
            )
            ratio = np.exp(np.clip(logp - logp_old, -20, 20))
            clipped = np.clip(ratio, 1 - self.clip_eps, 1 + self.clip_eps)
            use_raw = (ratio * adv) <= (clipped * adv)
            policy_loss = float(-np.minimum(ratio * adv, clipped * adv).mean())
            # d surrogate / d mean: only unclipped samples contribute
            dlogp_dmean = diff / std  # (N, MAX_SLOTS)
            grad_coeff = np.where(use_raw, ratio * adv, 0.0)[:, None]
            dOut = -(grad_coeff * dlogp_dmean) / len(self.buffer)
            self.net.adam_step(self.net.backward(dOut), lr=lr)
        value_loss = self.critic.update(states, rewards)
        if self.metrics is not None:
            p = self.metrics_prefix
            self.metrics.counter(f"{p}.updates").inc()
            self.metrics.counter(f"{p}.transitions").inc(len(self.buffer))
            self.metrics.histogram(f"{p}.policy_loss").observe(abs(policy_loss))
            self.metrics.histogram(f"{p}.value_loss").observe(value_loss)
            self.metrics.gauge(f"{p}.last_policy_loss").set(policy_loss)
            self.metrics.gauge(f"{p}.last_value_loss").set(value_loss)
        if self.trace is not None:
            self.trace.event(
                "ppo_update",
                actor=self.metrics_prefix,
                transitions=len(self.buffer),
                mean_reward=float(rewards.mean()),
                policy_loss=policy_loss,
                value_loss=value_loss,
            )
        self.buffer.clear()

    # -- pretrained weights -----------------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "actor": self.net.state_dict(),
            "critic": self.critic.net.state_dict(),
            "log_std": self.log_std,
        }

    def load_state_dict(self, state: Dict) -> None:
        self.net.load_state_dict(state["actor"])
        self.critic.net.load_state_dict(state["critic"])
        self.log_std = float(state["log_std"])

    # -- exact checkpoint state ----------------------------------------------------
    def full_state(self) -> Dict:
        """Exact mid-run snapshot: network + Adam moments + the unflushed
        transition buffer.  The shared critic is *not* included -- the
        owner serializes it once so actors keep sharing it on restore."""
        return {
            "net": self.net.full_state(),
            "log_std": self.log_std,
            "buffer": [
                (t.state.copy(), t.raw_action.copy(), t.logp, t.reward)
                for t in self.buffer
            ],
        }

    def load_full_state(self, state: Dict) -> None:
        self.net.load_full_state(state["net"])
        self.log_std = float(state["log_std"])
        self.buffer = [
            Transition(np.asarray(s), np.asarray(a), float(lp), float(r))
            for s, a, lp, r in state["buffer"]
        ]
