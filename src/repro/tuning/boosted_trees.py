"""Gradient-boosted regression trees (the paper's XGBoost stand-in).

A compact, dependency-free GBRT: squared-error boosting over exact-split
regression trees.  Feature matrices in this repo are tiny (hundreds of rows,
~30 columns), so exact split search is fast enough and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """Exact greedy CART regression tree."""

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 3):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.root: Optional[_Node] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        self.root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        best_gain, best = 0.0, None
        total_sum, total_sq, n = y.sum(), (y**2).sum(), len(y)
        parent_err = total_sq - total_sum**2 / n
        lo, hi = self.min_samples_leaf, n - self.min_samples_leaf
        if lo >= hi:
            return node
        for f in range(X.shape[1]):
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            idx = np.arange(lo, hi)
            valid = xs[idx] != xs[idx - 1]
            if not valid.any():
                continue
            nl = idx.astype(np.float64)
            left_err = csq[idx - 1] - csum[idx - 1] ** 2 / nl
            right_sum = total_sum - csum[idx - 1]
            right_err = (total_sq - csq[idx - 1]) - right_sum**2 / (n - nl)
            gain = np.where(valid, parent_err - left_err - right_err, -np.inf)
            j = int(np.argmax(gain))
            if gain[j] > best_gain + 1e-12:
                best_gain = float(gain[j])
                i = idx[j]
                best = (f, (xs[i] + xs[i - 1]) / 2.0)
        if best is None:
            return node
        f, thr = best
        mask = X[:, f] <= thr
        node.feature, node.threshold = f, thr
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self.root
            while node is not None and not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value if node is not None else 0.0
        return out


class GradientBoostedTrees:
    """Squared-error gradient boosting, XGBoost-style shrinkage."""

    def __init__(
        self,
        n_trees: int = 50,
        learning_rate: float = 0.15,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
    ):
        self.n_trees = n_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.base: float = 0.0
        self.trees: List[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.base = float(y.mean())
        self.trees = []
        pred = np.full(len(y), self.base)
        for _ in range(self.n_trees):
            residual = y - pred
            if np.allclose(residual, 0.0):
                break
            tree = RegressionTree(self.max_depth, self.min_samples_leaf).fit(
                X, residual
            )
            step = tree.predict(X)
            pred += self.learning_rate * step
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        out = np.full(len(X), self.base)
        for tree in self.trees:
            out += self.learning_rate * tree.predict(X)
        return out
