"""Persistent cross-run tuning database with warm-start transfer.

This is the layer that amortizes search to near-zero for repeat traffic
(ROADMAP item 2, the Ansor/TVM tuning-log design): a durable, shareable
store of :class:`~repro.tuning.records.TuneRecord` entries keyed by
``(task_signature, machine)``.  A workload any prior run has tuned compiles
from its record in milliseconds with **zero** fresh measurements; a
*similar* workload warm-starts -- the nearest recorded neighbor seeds the
PPO actors (through the existing ``pretrained=`` path) and the cost model's
training set, so the search starts from transferred knowledge instead of
from scratch.

Durability model
----------------

The database is one JSONL file (``db.jsonl`` inside a directory path, or a
file path used directly):

- **appends** are a single buffered write of one complete line in
  ``O_APPEND`` mode, flushed per record -- concurrent writers interleave
  whole lines, and a crash can tear at most the final line;
- **loads** skip torn/corrupt lines with one summary warning
  (:meth:`RecordStore.load`), so a torn tail never poisons the store;
- **compaction** (:meth:`TuningDatabase.compact`) rewrites the keep-best
  view of the append log through the atomic tmp + ``os.replace`` dump, and
  merges with any lines other writers appended meanwhile.

The in-memory view is always keep-best deduplicated; the on-disk log only
grows until compacted, which keeps the hot path append-only.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.compute import ComputeDef
from ..obs.log import log
from .records import RecordStore, TuneRecord

#: default file name when the database path is a directory
DB_FILE = "db.jsonl"

#: neighbors farther than this (see :func:`signature_distance`) are not
#: similar enough to transfer from -- an empirically safe default: ~3 powers
#: of two of aggregate shape drift, or a couple of differing attributes
DEFAULT_MAX_DISTANCE = 8.0


# ---------------------------------------------------------------------------
# task-signature similarity
# ---------------------------------------------------------------------------

def _shape_distance(a, b) -> float:
    """Aggregate log2 drift between two shape tuples (inf when unalignable)."""
    if not isinstance(a, (tuple, list)) or not isinstance(b, (tuple, list)):
        return 0.0 if a == b else math.inf
    if len(a) != len(b):
        return math.inf
    d = 0.0
    for x, y in zip(a, b):
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            if x != y:
                return math.inf
            continue
        d += abs(math.log2(max(float(x), 1.0)) - math.log2(max(float(y), 1.0)))
    return d


def signature_distance(sig_a: Tuple, sig_b: Tuple) -> float:
    """Similarity metric between two ``task_signature`` tuples.

    ``0`` means identical; ``inf`` means structurally incompatible (distinct
    op families, different tensor counts/ranks).  Finite values sum the
    per-dimension log2 shape drift of output + inputs plus a unit penalty
    per differing attribute -- so a conv with twice the channels is distance
    ~2-3 while a stride change costs an extra 1.
    """
    try:
        tags_a, out_a, ins_a, attrs_a = sig_a
        tags_b, out_b, ins_b, attrs_b = sig_b
    except (TypeError, ValueError):
        return math.inf
    if tuple(tags_a) != tuple(tags_b):
        return math.inf
    if len(ins_a) != len(ins_b):
        return math.inf
    dist = _shape_distance(out_a, out_b)
    for sa, sb in zip(ins_a, ins_b):
        dist += _shape_distance(sa, sb)
    if not math.isfinite(dist):
        return math.inf
    diff_attrs = set(attrs_a).symmetric_difference(set(attrs_b))
    return dist + len(diff_attrs) / 2.0


# ---------------------------------------------------------------------------
# warm-start payload (de)serialization
# ---------------------------------------------------------------------------

def _round_nested(x):
    if isinstance(x, (list, tuple)):
        return [_round_nested(v) for v in x]
    if isinstance(x, np.ndarray):
        return _round_nested(x.tolist())
    if isinstance(x, float):
        return round(x, 6)
    return x


def encode_warm(warm: Optional[Dict]) -> Optional[Dict]:
    """JSON-ready form of :attr:`TuneResult.warm` (numpy -> rounded lists).

    Weights are rounded to 6 decimals: warm-starting is a prior, not an
    exact resume, and rounding keeps record lines an order of magnitude
    smaller.
    """
    if not warm:
        return None
    out: Dict = {}
    ppo = warm.get("ppo")
    if ppo:
        out["ppo"] = {
            which: {
                "actor": _round_nested(state["actor"]),
                "critic": _round_nested(state["critic"]),
                "log_std": round(float(state["log_std"]), 6),
            }
            for which, state in ppo.items()
        }
    cm = warm.get("cost_model")
    if cm:
        out["cost_model"] = {"X": _round_nested(cm["X"]), "y": _round_nested(cm["y"])}
    return out or None


def warm_start_payload(record: TuneRecord) -> Optional[Dict]:
    """Extract ``(pretrained, cost_model_seed)`` kwargs from a record.

    Returns ``{"pretrained":..., "cost_model_seed":..., "source": task}`` or
    ``None`` when the record carries nothing transferable.  The nested-list
    weights feed :meth:`MLP.load_state_dict`/:meth:`CostModel.seed`
    directly (both coerce through ``np.asarray``).
    """
    warm = record.warm or {}
    pretrained = warm.get("ppo")
    seed = warm.get("cost_model")
    if not pretrained and not seed:
        return None
    return {
        "pretrained": pretrained,
        "cost_model_seed": seed,
        "source": record.task,
    }


# ---------------------------------------------------------------------------
# the database
# ---------------------------------------------------------------------------

class TuningDatabase(RecordStore):
    """Durable keep-best record store + nearest-neighbor warm starts.

    Drop-in for the ``records=`` slot of
    :class:`~repro.pipeline.CompileOptions`: :meth:`lookup` serves exact
    hits (and counts hits/misses), :meth:`add` deposits results back and
    appends them to disk, and :meth:`warm_start` finds the most similar
    recorded task for transfer when the exact lookup misses.
    """

    def __init__(self, path: str, autosync: bool = True):
        super().__init__()
        if os.path.isdir(path) or path.endswith(os.sep):
            path = os.path.join(path, DB_FILE)
        self.path = os.path.abspath(path)
        self.autosync = autosync
        #: exact-lookup counters (provenance for run manifests/reports)
        self.hits = 0
        self.misses = 0
        self.warm_starts = 0
        self.puts = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.path.exists(self.path):
            self.merge(RecordStore.load(self.path))

    # -- write path -------------------------------------------------------------
    def add(self, record: TuneRecord) -> bool:
        """Keep-best insert; new bests are appended to the on-disk log."""
        kept = super().add(record)
        if kept:
            self.puts += 1
            if self.autosync:
                self._append(record)
        return kept

    def _append(self, record: TuneRecord) -> None:
        # one whole line per write in append mode: concurrent appenders
        # interleave complete records, and a crash tears at most the tail
        # line, which the tolerant loader drops
        with open(self.path, "a") as f:
            f.write(record.to_json() + "\n")
            f.flush()

    def compact(self) -> Dict:
        """Rewrite the append log as its keep-best view (atomic).

        Lines other processes appended since our load are merged in first,
        so compaction never discards a concurrent writer's better record.
        Returns ``{"before": lines_on_disk, "after": records_kept}``.
        """
        before = 0
        if os.path.exists(self.path):
            with open(self.path) as f:
                before = sum(1 for line in f if line.strip())
        self.dump(self.path, mode="merge")
        self.merge(RecordStore.load(self.path))
        return {"before": before, "after": len(self)}

    def export(self, path: str) -> int:
        """Atomically write the keep-best view to another JSONL file."""
        self.dump(path, mode="replace")
        return len(self)

    def import_file(self, path: str) -> int:
        """Keep-best merge of another JSONL store; appends what it absorbs."""
        return sum(1 for rec in RecordStore.load(path).records() if self.add(rec))

    def merge(self, other: RecordStore) -> int:
        # in-memory only (used by the initial self-load): records already on
        # disk must not be re-appended or counted as fresh puts
        absorbed = 0
        for rec in other.records():
            if RecordStore.add(self, rec):
                absorbed += 1
        return absorbed

    # -- read path --------------------------------------------------------------
    def lookup(self, comp: ComputeDef, machine_name: str) -> Optional[TuneRecord]:
        rec = super().lookup(comp, machine_name)
        if rec is not None:
            self.hits += 1
        else:
            self.misses += 1
        return rec

    def nearest(
        self,
        comp: ComputeDef,
        machine_name: str,
        k: int = 1,
        max_distance: float = DEFAULT_MAX_DISTANCE,
    ) -> List[Tuple[float, TuneRecord]]:
        """The ``k`` most similar recorded tasks on this machine.

        Exact matches are excluded (those are :meth:`lookup`'s job); ties
        break on better recorded latency so transfer favors the strongest
        neighbor.
        """
        from ..pipeline import task_signature

        sig = task_signature(comp)
        scored = []
        for rec in self.records():
            if rec.machine != machine_name or rec.task == sig:
                continue
            dist = signature_distance(sig, rec.task)
            if dist <= max_distance:
                scored.append((dist, rec))
        scored.sort(key=lambda s: (s[0], s[1].latency_s))
        return scored[:k]

    def warm_start(
        self,
        comp: ComputeDef,
        machine_name: str,
        max_distance: float = DEFAULT_MAX_DISTANCE,
    ) -> Optional[Dict]:
        """Transfer kwargs from the nearest similar record, or ``None``.

        Walks outward through the neighbors until one actually carries a
        warm payload (older records may predate warm capture).
        """
        for dist, rec in self.nearest(
            comp, machine_name, k=8, max_distance=max_distance
        ):
            payload = warm_start_payload(rec)
            if payload is not None:
                payload["distance"] = dist
                self.warm_starts += 1
                log.debug(
                    "warm-starting %s from neighbor at distance %.2f",
                    comp.name, dist,
                )
                return payload
        return None

    # -- provenance -------------------------------------------------------------
    def stats(self) -> Dict:
        """Counters + on-disk footprint (``repro db stats`` / manifests)."""
        disk_lines = 0
        disk_bytes = 0
        if os.path.exists(self.path):
            disk_bytes = os.path.getsize(self.path)
            with open(self.path) as f:
                disk_lines = sum(1 for line in f if line.strip())
        per_machine: Dict[str, int] = {}
        warm_capable = 0
        for rec in self.records():
            per_machine[rec.machine] = per_machine.get(rec.machine, 0) + 1
            if rec.warm:
                warm_capable += 1
        return {
            "path": self.path,
            "records": len(self),
            "machines": per_machine,
            "warm_capable": warm_capable,
            "disk_lines": disk_lines,
            "disk_bytes": disk_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "warm_starts": self.warm_starts,
            "puts": self.puts,
        }

    def provenance(self) -> Dict:
        """The manifest-sized view: where records came from and how the run
        used them (run-registry ``database`` block)."""
        return {
            "path": self.path,
            "records": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "warm_starts": self.warm_starts,
            "puts": self.puts,
        }

    def __repr__(self) -> str:
        return (
            f"TuningDatabase({self.path!r}, records={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
