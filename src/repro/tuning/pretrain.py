"""PPO pretraining (paper Section 6, Fig. 11's PPO-Pret).

The paper pretrains its PPO agent on several C2D/GMM workloads for half a
day on a V100; we pretrain on small workloads for seconds.  The returned
state dict plugs into :class:`~repro.tuning.explorer.JointTuner` through the
``pretrained`` argument and transfers search knowledge to new operators.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from ..ir.compute import ComputeDef
from ..ir.tensor import Tensor
from ..machine.spec import MachineSpec
from ..ops.conv import conv2d
from ..ops.gemm import gemm
from .explorer import JointTuner
from .task import TuningTask


def default_pretrain_workloads() -> List[ComputeDef]:
    """Small C2D and GMM workloads (the paper pretrains on these classes)."""
    comps: List[ComputeDef] = []
    for i, (ch_in, ch_out, hw, k, stride) in enumerate(
        [(16, 32, 18, 3, 1), (32, 32, 16, 3, 2), (8, 64, 20, 5, 1)]
    ):
        inp = Tensor(f"pi{i}", (1, ch_in, hw, hw))
        ker = Tensor(f"pk{i}", (ch_out, ch_in, k, k))
        comps.append(conv2d(inp, ker, stride=stride, name=f"pre_c2d{i}"))
    for i, (m, k, n) in enumerate([(64, 64, 64), (32, 128, 96)]):
        a = Tensor(f"pa{i}", (m, k))
        b = Tensor(f"pb{i}", (k, n))
        comps.append(gemm(a, b, name=f"pre_gmm{i}"))
    return comps


def pretrain(
    machine: MachineSpec,
    workloads: Optional[Sequence[ComputeDef]] = None,
    budget_per_workload: int = 64,
    seed: int = 0,
) -> Dict:
    """Train the layout/loop PPO agents across workloads; returns the state
    dict to pass as ``pretrained=`` to later tuners."""
    workloads = list(workloads or default_pretrain_workloads())
    state: Optional[Dict] = None
    for comp in workloads:
        task = TuningTask(comp, machine, budget=budget_per_workload)
        tuner = JointTuner(task, seed=seed, searcher="ppo", use_cost_model=True,
                           pretrained=state)
        joint = int(budget_per_workload * 0.5)
        tuner.tune(joint, budget_per_workload - joint)
        state = {
            "layout": tuner.layout_actor.state_dict(),
            "loop": tuner.loop_actor.state_dict(),
        }
    if state is None:
        raise ValueError("no pretraining workloads given")
    return state


# ---------------------------------------------------------------------------
# Generated-corpus loaders (``repro fuzz corpus --out``)
# ---------------------------------------------------------------------------

def _corpus_rows(path: str) -> List[Dict]:
    rows: List[Dict] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if row.get("kind") == "fuzz_corpus_task":
                rows.append(row)
    return rows


def corpus_workloads(path: str, limit: Optional[int] = None) -> List[ComputeDef]:
    """Rebuild the complex operators of an exported fuzz corpus.

    Every corpus row records the generator seed and the node name, so the
    exact :class:`ComputeDef` is reconstructed by replaying the seed --
    the corpus file itself never has to serialize tensor expressions.
    Rows whose spec no longer rebuilds (generator drift) are skipped.
    """
    from ..testing.generator import SpecError, generate_spec

    comps: List[ComputeDef] = []
    for row in _corpus_rows(path):
        if limit is not None and len(comps) >= limit:
            break
        try:
            graph = generate_spec(int(row["seed"])).build()
        except (SpecError, KeyError, ValueError):
            continue
        node = next(
            (n for n in graph.complex_nodes() if n.name == row.get("node")),
            None,
        )
        if node is not None:
            comps.append(node)
    return comps


def corpus_cost_model_seed(path: str, max_n: int = 256) -> Optional[Dict]:
    """Merge a corpus file's measured pairs into one ``CostModel.seed``
    payload (newest ``max_n`` pairs win, matching ``export_seed``)."""
    xs: List[List[float]] = []
    ys: List[float] = []
    for row in _corpus_rows(path):
        data = row.get("cost_model_seed") or {}
        if data.get("X") and data.get("y"):
            xs.extend(data["X"])
            ys.extend(data["y"])
    if not ys:
        return None
    return {"X": xs[-max_n:], "y": ys[-max_n:]}
