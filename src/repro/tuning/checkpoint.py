"""Checkpoint/resume for tuning runs.

A multi-hour tuning run must survive SIGKILL: the tuner periodically
serializes its *complete* search state -- PPO actor/critic weights with
their Adam moments and transition buffers, the cost model's training set
and fitted forest, both RNG states, the task's budget/cache/best-record
bookkeeping, the measurer telemetry and the joint/loop stage cursors --
into the run-store directory, and ``repro tune --resume <run-dir>`` picks
the search back up from the last snapshot.

The invariant (enforced by tests) is that **recovery never changes
results**: a checkpoint is only taken at an episode/refine boundary where
the snapshot is consistent, and resuming discards whatever ran after it
and re-executes deterministically from the restored RNG and task state --
so a killed-and-resumed run produces a ``TuneResult`` bit-identical to the
uninterrupted run, and checkpointing on vs. off changes nothing at all.

Snapshots are pickles (exact float/tuple/object round-trip, unlike JSON)
written atomically: serialize to ``<name>.tmp`` in the same directory,
fsync, then ``os.replace`` -- a crash mid-write leaves the previous
checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, Dict, Optional

from ..obs.log import log

#: bump when the snapshot layout changes incompatibly
CHECKPOINT_VERSION = 1

#: file name inside a run directory
CHECKPOINT_NAME = "checkpoint.pkl"


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded (missing, corrupt, wrong version)."""


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write-then-rename so readers never observe a torn file."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def save_checkpoint(path: str, payload: Dict) -> None:
    """Atomically persist one snapshot (stamped with the schema version)."""
    body = dict(payload)
    body["version"] = CHECKPOINT_VERSION
    atomic_write_bytes(path, pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL))


def load_checkpoint(path: str) -> Dict:
    """Load and validate a snapshot; raises :class:`CheckpointError`."""
    try:
        with open(path, "rb") as f:
            payload = pickle.load(f)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    version = payload.get("version") if isinstance(payload, dict) else None
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    return payload


class CheckpointManager:
    """Periodic checkpoint writer bound to one file.

    ``every`` counts *checkpoint units* -- the tuner ticks once per joint
    episode or loop refine slice, and every ``every``-th tick persists a
    snapshot.  Units (not wall time) keep the write points deterministic,
    which the resume tests rely on.  A final explicit :meth:`save` runs at
    stage boundaries regardless of the cadence.
    """

    def __init__(self, path: str, every: int = 1):
        if every < 1:
            raise ValueError("checkpoint cadence must be >= 1")
        self.path = path
        self.every = every
        self.saves = 0
        self._ticks = 0

    def tick(self, payload_fn: Callable[[], Dict]) -> bool:
        """One unit of work finished; snapshot if the cadence says so."""
        self._ticks += 1
        if self._ticks % self.every:
            return False
        self.save(payload_fn())
        return True

    def save(self, payload: Dict) -> None:
        try:
            save_checkpoint(self.path, payload)
            self.saves += 1
        except (OSError, pickle.PickleError, AttributeError, TypeError) as exc:
            # checkpointing accelerates recovery; it must never kill the
            # run it is protecting
            log.warning("checkpoint save to %s failed: %s", self.path, exc)

    def load(self) -> Optional[Dict]:
        try:
            return load_checkpoint(self.path)
        except CheckpointError:
            return None
