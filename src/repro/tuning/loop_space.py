"""Generic loop-tuning space for one lowered stage.

Built in the spirit of FlexTensor/Ansor spaces (the paper reuses their loop
spaces): per-loop tiling factors restricted to divisors, a small set of
order patterns, a parallelization degree, vectorization and unrolling flags.

The space is a function of the *loop structure*, which is itself a function
of the output layout -- this is exactly the space-reconstruction problem of
paper Challenge 2: every new layout yields a new :class:`LoopSpace`.  The
cross-exploration architecture in ``repro.tuning.explorer`` rebuilds it per
candidate layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.nest import Stage
from ..loops.schedule import LoopSchedule
from .space import Config, ConfigSpace, ParamSpec, divisors

#: loop-order patterns (see :meth:`LoopSpace.schedule`)
N_PATTERNS = 3


class LoopSpace:
    """Tuning space over the loop nest of one (unscheduled) stage."""

    def __init__(self, stage: Stage, max_parallel_loops: int = 3):
        self.stage = stage
        self.spatial = [l for l in stage.loops if l.var not in stage.reduce_vars]
        self.reduction = [l for l in stage.loops if l.var in stage.reduce_vars]
        params: List[ParamSpec] = []
        self._tiled_spatial: List[str] = []
        self._tiled_reduce: List[str] = []
        for l in self.spatial:
            if l.extent > 1:
                params.append(ParamSpec(f"tile_{l.var}", divisors(l.extent), default=1))
                self._tiled_spatial.append(l.var)
        for l in self.reduction:
            if l.extent > 1:
                params.append(ParamSpec(f"tile_{l.var}", divisors(l.extent), default=1))
                self._tiled_reduce.append(l.var)
        params.append(ParamSpec("pattern", list(range(N_PATTERNS)), default=0))
        max_par = min(max_parallel_loops, len(self.spatial))
        params.append(ParamSpec("parallel", list(range(max_par + 1)), default=min(1, max_par)))
        params.append(ParamSpec("vectorize", [0, 1], default=1))
        params.append(ParamSpec("unroll", [0, 1], default=0))
        self._space = ConfigSpace(params, name=f"loops:{stage.name}")

    def space(self) -> ConfigSpace:
        return self._space

    # -- decoding ------------------------------------------------------------------
    def schedule(self, config: Config) -> LoopSchedule:
        """Decode a configuration into a :class:`LoopSchedule`.

        Patterns (S = spatial, R = reduction, o/i = split outer/inner):

        - 0: ``So  Ro  Si[:-1]  Ri  Si[-1]``  -- reduction strip-mined around
          the innermost spatial (vectorizable) loop;
        - 1: ``So  Ro  Ri  Si``               -- whole spatial tile innermost;
        - 2: ``So  Si[:-1]  Ro  Ri  Si[-1]``  -- reduction innermost around
          the vector loop (maximum accumulator reuse).
        """
        sched = LoopSchedule()
        s_outer: List[str] = []
        s_inner: List[str] = []
        for l in self.spatial:
            f = int(config.get(f"tile_{l.var}", 1))
            if l.var in self._tiled_spatial and 1 < f < l.extent:
                sched.split(l.var, [l.extent // f, f])
                s_outer.append(f"{l.var}.0")
                s_inner.append(f"{l.var}.1")
            elif l.var in self._tiled_spatial and f == l.extent:
                s_inner.append(l.var)  # whole loop inside the tile
            else:
                s_outer.append(l.var)
        r_outer: List[str] = []
        r_inner: List[str] = []
        for l in self.reduction:
            f = int(config.get(f"tile_{l.var}", 1))
            if l.var in self._tiled_reduce and 1 < f < l.extent:
                sched.split(l.var, [l.extent // f, f])
                r_outer.append(f"{l.var}.0")
                r_inner.append(f"{l.var}.1")
            elif l.var in self._tiled_reduce and f == l.extent:
                r_inner.append(l.var)
            else:
                r_outer.append(l.var)

        if not s_inner:
            # ensure the innermost physical dim is available for vectorization
            s_inner = [s_outer.pop()] if s_outer else []

        pattern = int(config.get("pattern", 0))
        vec = bool(config.get("vectorize", 0)) and bool(s_inner)
        if pattern == 0:
            order = s_outer + r_outer + s_inner[:-1] + r_inner + s_inner[-1:]
        elif pattern == 1:
            order = s_outer + r_outer + r_inner + s_inner
        else:
            order = s_outer + s_inner[:-1] + r_outer + r_inner + s_inner[-1:]
        sched.reorder(order)

        if vec and order and order[-1] in s_inner:
            sched.vectorize(order[-1])
        n_par = int(config.get("parallel", 0))
        for v in order[:n_par]:
            if v in s_outer:
                sched.parallel(v)
            else:
                break
        if config.get("unroll") and len(order) >= 2:
            sched.unroll(order[-2])
        return sched

    # -- heuristic sketches -----------------------------------------------------
    def heuristic_configs(self) -> List[Config]:
        """Expert starting points (Ansor-sketch-like priors).

        The recipe that works on every platform model: fully move the
        innermost (usually channel-tile) spatial loop inside and vectorize
        it, modestly tile the other spatial loops so their outer parts
        parallelize, and strip-mine the leading reduction loop.
        """
        spatial_tiled = self._tiled_spatial
        reduce_tiled = self._tiled_reduce
        configs: List[Config] = []
        for pattern, mid_tile, red_tile, unroll in (
            (0, 4, 16, 0), (1, 4, 16, 1), (0, 1, 4, 0), (2, 8, 16, 0),
        ):
            cfg: Config = {}
            for p in self._space.params:
                cfg[p.name] = p.default
            for i, var in enumerate(spatial_tiled):
                extent = next(l.extent for l in self.spatial if l.var == var)
                p = self._space.param(f"tile_{var}")
                if var == spatial_tiled[-1]:
                    target = min(extent, 16)  # vector loop: whole tile inner
                else:
                    target = mid_tile
                cfg[p.name] = min(p.choices, key=lambda c: abs(c - target))
            for i, var in enumerate(reduce_tiled):
                p = self._space.param(f"tile_{var}")
                target = red_tile if i == 0 else 1
                cfg[p.name] = min(p.choices, key=lambda c: abs(c - target))
            cfg["pattern"] = pattern if pattern in self._space.param("pattern").choices else 0
            cfg["parallel"] = max(self._space.param("parallel").choices)
            cfg["vectorize"] = 1 if 1 in self._space.param("vectorize").choices else 0
            cfg["unroll"] = unroll if unroll in self._space.param("unroll").choices else 0
            configs.append(cfg)
        return configs
