"""Batched parallel measurement engine (the builder/runner layer).

Real auto-tuners (TVM/Ansor's ``LocalBuilder``/``LocalRunner``) evaluate
candidate programs in batches: the searcher proposes a batch, a pool of
workers builds and measures every candidate concurrently, and the results
merge back into the search state.  The simulated measurement chain here
(``lower_compute`` -> ``estimate_stage``) is a pure function of
``(machine, layouts, schedule)``, so it parallelizes the same way.

The :class:`Measurer` sits between the tuners and :class:`TuningTask`:

- ``measure_batch`` accepts a list of ``(layouts, schedule)`` candidates and
  evaluates the ones that need fresh work concurrently via a
  ``concurrent.futures`` process pool, then merges results back into the
  task's budget / cache / history / best-record bookkeeping **in submission
  order** -- tuned results are bit-identical to serial mode because the
  evaluation is pure and the bookkeeping replay is order-preserving.
- A persistent on-disk cache under ``~/.cache/repro`` (override with
  ``REPRO_CACHE_DIR`` / ``MeasureOptions.cache_dir``, disable with
  ``REPRO_NO_DISK_CACHE``) is keyed by the machine description, the
  operator fingerprint, the layout/schedule signatures and a hash of the
  latency-model sources, so repeated bench runs skip recomputation and
  model changes invalidate stale entries automatically.
- Degradation is graceful: ``jobs <= 1`` or an unavailable pool falls back
  to in-process serial execution, a worker crash yields an ``inf`` latency
  for the affected candidates instead of aborting the run, and every pooled
  candidate has a timeout.
- Telemetry lives in a per-task :class:`~repro.obs.metrics.MetricsRegistry`
  (``measure.*`` counters, latency histogram, wall time from the tracer's
  ``measure_batch`` spans); :class:`MeasureStats` is a thin backward-compat
  view over it that still threads through ``TuneResult``, ``report.py`` and
  the CLI.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from concurrent.futures import TimeoutError as PoolTimeout
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.compute import ComputeDef
from ..layout.layout import Layout
from ..loops.schedule import LoopSchedule
from ..lower.lower import LoweringError, lower_compute
from ..machine.latency import estimate_stage
from ..machine.spec import MachineSpec
from ..obs.metrics import MetricsRegistry


class BudgetExhausted(RuntimeError):
    """Raised when a fresh measurement is requested past the task budget."""


#: bump when the meaning of a cached latency changes in a way the source
#: hash of the latency model does not capture (e.g. key-scheme changes)
CACHE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Options / telemetry
# ---------------------------------------------------------------------------

def _default_jobs() -> int:
    try:
        return max(int(os.environ.get("REPRO_MEASURE_JOBS", "1")), 1)
    except ValueError:
        return 1


def _default_cache_dir() -> Optional[str]:
    if os.environ.get("REPRO_NO_DISK_CACHE"):
        return None
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro"
    )


@dataclass
class MeasureOptions:
    """Knobs for the measurement engine.

    ``jobs``      worker processes (1 = in-process serial; env default
                  ``REPRO_MEASURE_JOBS``)
    ``cache_dir`` root of the persistent evaluation cache; ``None`` disables
    ``timeout_s`` per-candidate timeout for pooled evaluations
    """

    jobs: int = field(default_factory=_default_jobs)
    cache_dir: Optional[str] = field(default_factory=_default_cache_dir)
    timeout_s: Optional[float] = 60.0


#: registry counter names behind each ``MeasureStats`` field
_STAT_COUNTERS = (
    "batches",
    "requests",  # candidates submitted (incl. cache hits)
    "fresh_evaluations",  # estimate_stage actually executed
    "task_cache_hits",
    "disk_cache_hits",
    "pool_evaluations",
    "serial_evaluations",
    "timeouts",
    "pool_failures",
    "budget_consumed",
)


class MeasureStats:
    """Measurement telemetry for one task (surfaces in ``TuneResult``).

    A thin read-only view over the measurer's :class:`MetricsRegistry` --
    the registry is the source of truth (the tracer's ``measure_batch``
    spans feed ``measure.wall_time_s``); this class keeps the historical
    attribute API stable for records, reports and tests.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def __getattr__(self, name: str) -> float:
        if name in _STAT_COUNTERS:
            return self.registry.value(f"measure.{name}", 0)
        raise AttributeError(name)

    @property
    def wall_time_s(self) -> float:
        return self.registry.value("measure.wall_time_s", 0.0)

    @property
    def cache_hit_rate(self) -> float:
        hits = self.task_cache_hits + self.disk_cache_hits
        requests = self.requests
        return hits / requests if requests else 0.0

    def as_dict(self) -> Dict[str, float]:
        d = {name: getattr(self, name) for name in _STAT_COUNTERS}
        d["wall_time_s"] = self.wall_time_s
        d["cache_hit_rate"] = self.cache_hit_rate
        return d

    def __repr__(self) -> str:
        return f"MeasureStats({self.as_dict()!r})"


@dataclass
class BatchResult:
    """Latencies for the submission-order prefix that fit in the budget."""

    latencies: List[float]
    exhausted: bool = False  # True if the budget cut the batch short


# ---------------------------------------------------------------------------
# Pure evaluation (runs in-process or inside pool workers)
# ---------------------------------------------------------------------------

def expansion_penalty(
    comp: ComputeDef, machine: MachineSpec, layouts: Mapping[str, Layout]
) -> float:
    """Producer-side cost of data-expanding input layouts.

    Overlapped ``unfold`` and ``pad`` duplicate data; the upstream operator
    that absorbs the layout (paper Fig. 5b) must write the extra bytes.
    Charging that write traffic here keeps the per-op greedy joint tuning
    honest about whole-graph cost -- without it the tuner happily
    im2row-expands every input.  Constant tensors are exempt (re-laid-out
    offline).
    """
    by_name = {t.name: t for t in comp.inputs}
    extra_bytes = 0.0
    for name, lay in layouts.items():
        t = by_name.get(name)
        if t is None or t.role == "const":
            continue
        ratio = lay.expansion_ratio()
        if ratio > 1.0:
            extra_bytes += (ratio - 1.0) * t.nbytes
    if not extra_bytes:
        return 0.0
    cycles = extra_bytes / machine.dram_bw_bytes_per_cycle
    return machine.cycles_to_seconds(cycles)


def evaluate_candidate(
    comp: ComputeDef,
    machine: MachineSpec,
    layouts: Mapping[str, Layout],
    schedule: Optional[LoopSchedule],
) -> float:
    """Simulated on-device measurement of one candidate.

    Pure function of its arguments; lowering failures become ``inf`` the way
    a real harness turns compile errors into failed measurements.
    """
    try:
        stage = lower_compute(comp, layouts, schedule)
        cost = estimate_stage(stage, machine)
        latency = machine.cycles_to_seconds(cost.total_cycles)
        latency += expansion_penalty(comp, machine, layouts)
    except (LoweringError, ValueError):
        latency = math.inf
    return latency


# ---------------------------------------------------------------------------
# Shared process pools
# ---------------------------------------------------------------------------

_POOLS: Dict[int, object] = {}


def _shared_pool(jobs: int):
    """One process pool per worker count, shared across tasks in a run."""
    pool = _POOLS.get(jobs)
    if pool is None:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=jobs)
        _POOLS[jobs] = pool
    return pool


def _discard_pool(jobs: int) -> None:
    pool = _POOLS.pop(jobs, None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def shutdown_pools() -> None:
    """Shut down the shared measurement pools (tests / embedding hosts)."""
    for jobs in list(_POOLS):
        _discard_pool(jobs)


# ---------------------------------------------------------------------------
# Persistent on-disk evaluation cache
# ---------------------------------------------------------------------------

_CODE_FINGERPRINT: Optional[str] = None


def _code_fingerprint() -> str:
    """Hash of the measurement-chain sources: editing the latency model or
    the lowering pass invalidates every previously cached latency."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        from ..lower import lower as lower_mod
        from ..machine import latency as latency_mod

        h = hashlib.sha256()
        for mod in (lower_mod, latency_mod):
            try:
                with open(mod.__file__, "rb") as f:
                    h.update(f.read())
            except OSError:
                h.update(b"unknown")
        _CODE_FINGERPRINT = h.hexdigest()[:16]
    return _CODE_FINGERPRINT


def machine_fingerprint(machine: MachineSpec) -> str:
    # frozen dataclass repr covers every field incl. the cache hierarchy
    return repr(machine)


def comp_fingerprint(comp: ComputeDef) -> str:
    """Workload-class fingerprint: independent of node/tensor names so that
    identical operators across models share cache entries (the same keying
    idea as ``pipeline.task_signature``, plus dtypes and roles because the
    expansion penalty depends on them)."""
    return repr(
        (
            comp.tags,
            (comp.output.shape, comp.output.dtype),
            tuple((t.shape, t.dtype, t.role) for t in comp.inputs),
            tuple(sorted((k, str(v)) for k, v in comp.attrs.items())),
        )
    )


class DiskCache:
    """Append-only JSONL shard of ``key -> latency`` for one (machine, op).

    Best-effort by design: unreadable files or lines are skipped, write
    failures are swallowed -- the cache accelerates, never gates, a run.
    """

    def __init__(self, root: str, machine: MachineSpec, comp: ComputeDef):
        shard = hashlib.sha256(
            "|".join(
                (
                    str(CACHE_SCHEMA_VERSION),
                    _code_fingerprint(),
                    machine_fingerprint(machine),
                    comp_fingerprint(comp),
                )
            ).encode("utf-8")
        ).hexdigest()[:24]
        self.path = os.path.join(root, "measure", f"{shard}.jsonl")
        self._entries: Optional[Dict[str, float]] = None

    def _load(self) -> Dict[str, float]:
        if self._entries is None:
            self._entries = {}
            try:
                with open(self.path) as f:
                    for line in f:
                        try:
                            d = json.loads(line)
                            self._entries[d["k"]] = float(d["v"])
                        except (ValueError, KeyError, TypeError):
                            continue
            except OSError:
                pass
        return self._entries

    def __len__(self) -> int:
        return len(self._load())

    def get(self, key: str) -> Optional[float]:
        return self._load().get(key)

    def put(self, key: str, value: float) -> None:
        entries = self._load()
        if key in entries:
            return
        entries[key] = value
        try:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            with open(self.path, "a") as f:
                f.write(json.dumps({"k": key, "v": value}) + "\n")
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The measurer
# ---------------------------------------------------------------------------

Candidate = Tuple[Mapping[str, Layout], LoopSchedule]


class Measurer:
    """Batched measurement layer bound to one :class:`TuningTask`."""

    def __init__(self, task, options: Optional[MeasureOptions] = None):
        self.task = task
        self.options = options or MeasureOptions()
        #: per-task telemetry registry (``measure.*``); the run-level trace
        #: only carries spans/events so tasks never mix their counters
        self.metrics = MetricsRegistry()
        self.stats = MeasureStats(self.metrics)
        self._pool_broken = False
        self._disk: Optional[DiskCache] = (
            DiskCache(self.options.cache_dir, task.machine, task.comp)
            if self.options.cache_dir
            else None
        )

    # -- public API ---------------------------------------------------------
    def measure(self, layouts: Mapping[str, Layout], schedule: LoopSchedule) -> float:
        """Single-candidate measurement with the serial contract: raises
        :class:`BudgetExhausted` when a fresh measurement no longer fits."""
        result = self.measure_batch([(layouts, schedule)])
        if not result.latencies:
            raise BudgetExhausted(
                f"task {self.task.comp.name}: budget {self.task.budget} exhausted"
            )
        return result.latencies[0]

    def measure_batch(self, candidates: Sequence[Candidate]) -> BatchResult:
        """Measure a batch; merge results in submission order.

        Returns latencies for the longest submission-order prefix the budget
        allows (``exhausted`` flags a cut).  The merge replays exactly what
        serial measurement would have done -- cache hits are free and leave
        no history entry, each novel signature consumes one budget unit,
        appends to ``history`` and may advance ``best_record`` -- so a batch
        is bit-identical to measuring its candidates one by one.
        """
        task = self.task
        if not candidates:
            return BatchResult([])
        counter = self.metrics.counter
        counter("measure.batches").inc()
        counter("measure.requests").inc(len(candidates))
        with task.trace.span(
            "measure_batch", task=task.comp.name, submitted=len(candidates)
        ) as sp:
            sigs = [task._signature(lay, sched) for lay, sched in candidates]
            # plan in submission order, replaying the serial budget accounting
            budget_left = (
                math.inf if task.budget is None else task.budget - task.measurements
            )
            fresh: List[int] = []
            fresh_sigs = set()
            n = len(candidates)
            exhausted = False
            for i, sig in enumerate(sigs):
                if sig in task._cache or sig in fresh_sigs:
                    continue
                if budget_left <= 0:
                    n = i
                    exhausted = True
                    break
                budget_left -= 1
                fresh_sigs.add(sig)
                fresh.append(i)

            values = self._resolve(candidates, fresh)

            latencies: List[float] = []
            hist = self.metrics.histogram("measure.latency_s")
            for i in range(n):
                layouts, schedule = candidates[i]
                sig = sigs[i]
                if sig in task._cache:
                    counter("measure.task_cache_hits").inc()
                    latencies.append(task._cache[sig])
                    continue
                lat = values[i]
                task.measurements += 1
                counter("measure.budget_consumed").inc()
                hist.observe(lat)
                task._cache[sig] = lat
                if lat < task.best_latency:
                    task.best_latency = lat
                    task.best_record = (dict(layouts), schedule.copy())
                task.history.append((task.measurements, task.best_latency))
                latencies.append(lat)
            sp.set(fresh=len(fresh), exhausted=exhausted)
        # measurer wall time is defined by the span, whether or not the
        # trace records it (disabled spans still time themselves)
        self.metrics.gauge("measure.wall_time_s").add(sp.duration_s)
        return BatchResult(latencies, exhausted)

    # -- evaluation ---------------------------------------------------------
    def _resolve(
        self, candidates: Sequence[Candidate], fresh: List[int]
    ) -> Dict[int, float]:
        """Latency per fresh index: disk cache first, then evaluation."""
        if not fresh:
            return {}
        out: Dict[int, float] = {}
        keys: Dict[int, str] = {}
        to_eval: List[int] = []
        for i in fresh:
            if self._disk is not None:
                keys[i] = self._candidate_key(*candidates[i])
                hit = self._disk.get(keys[i])
                if hit is not None:
                    self.metrics.counter("measure.disk_cache_hits").inc()
                    out[i] = hit
                    continue
            to_eval.append(i)
        self.metrics.counter("measure.fresh_evaluations").inc(len(to_eval))
        for i, lat in self._evaluate(candidates, to_eval).items():
            out[i] = lat
            if self._disk is not None:
                self._disk.put(keys.get(i) or self._candidate_key(*candidates[i]), lat)
        return out

    def _evaluate(
        self, candidates: Sequence[Candidate], idxs: List[int]
    ) -> Dict[int, float]:
        comp, machine = self.task.comp, self.task.machine
        out: Dict[int, float] = {}
        # a single candidate never amortizes pool round-trips
        pool = self._pool() if len(idxs) > 1 else None
        if pool is not None:
            futures = []
            try:
                for i in idxs:
                    lay, sched = candidates[i]
                    futures.append(
                        (i, pool.submit(evaluate_candidate, comp, machine, lay, sched))
                    )
            except Exception:
                # pool unavailable at submit time: serial fallback below
                self._mark_pool_broken()
                futures = []
            for i, fut in futures:
                if self._pool_broken:
                    # an earlier crash poisoned the pool; this candidate's
                    # result is an inf latency, not a lost run
                    out[i] = math.inf
                    continue
                try:
                    out[i] = fut.result(timeout=self.options.timeout_s)
                    self.metrics.counter("measure.pool_evaluations").inc()
                except PoolTimeout:
                    self.metrics.counter("measure.timeouts").inc()
                    out[i] = math.inf
                except Exception:
                    self._mark_pool_broken()
                    out[i] = math.inf
        for i in idxs:
            if i not in out:
                lay, sched = candidates[i]
                out[i] = evaluate_candidate(comp, machine, lay, sched)
                self.metrics.counter("measure.serial_evaluations").inc()
        return out

    def _pool(self):
        if self._pool_broken or self.options.jobs <= 1:
            return None
        try:
            return _shared_pool(self.options.jobs)
        except Exception:
            self._mark_pool_broken()
            return None

    def _mark_pool_broken(self) -> None:
        if not self._pool_broken:
            self._pool_broken = True
            self.metrics.counter("measure.pool_failures").inc()
        _discard_pool(self.options.jobs)

    # -- disk-cache keys ----------------------------------------------------
    def _candidate_key(
        self, layouts: Mapping[str, Layout], schedule: Optional[LoopSchedule]
    ) -> str:
        """Positional layout signatures + schedule signature: tensor-name
        independent, so identical ops across graphs share entries."""
        comp = self.task.comp
        tensors = [comp.output] + comp.inputs
        names = {t.name for t in tensors}
        lay_sigs = tuple(
            layouts[t.name].signature() if t.name in layouts else None
            for t in tensors
        )
        extra = tuple(
            sorted((k, layouts[k].signature()) for k in layouts if k not in names)
        )
        sched_sig = schedule.signature() if schedule is not None else None
        blob = repr((lay_sigs, extra, sched_sig))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
