"""Batched parallel measurement engine (the builder/runner layer).

Real auto-tuners (TVM/Ansor's ``LocalBuilder``/``LocalRunner``) evaluate
candidate programs in batches: the searcher proposes a batch, a pool of
workers builds and measures every candidate concurrently, and the results
merge back into the search state.  The simulated measurement chain here
(``lower_compute`` -> ``estimate_stage``) is a pure function of
``(machine, layouts, schedule)``, so it parallelizes the same way.

The :class:`Measurer` sits between the tuners and :class:`TuningTask`:

- ``measure_batch`` accepts a list of ``(layouts, schedule)`` candidates and
  evaluates the ones that need fresh work concurrently via a
  ``concurrent.futures`` process pool, then merges results back into the
  task's budget / cache / history / best-record bookkeeping **in submission
  order** -- tuned results are bit-identical to serial mode because the
  evaluation is pure and the bookkeeping replay is order-preserving.
- A persistent on-disk cache under ``~/.cache/repro`` (override with
  ``REPRO_CACHE_DIR`` / ``MeasureOptions.cache_dir``, disable with
  ``REPRO_NO_DISK_CACHE``) is keyed by the machine description, the
  operator fingerprint, the layout/schedule signatures and a hash of the
  latency-model sources, so repeated bench runs skip recomputation and
  model changes invalidate stale entries automatically.
- Failure is routine, not fatal (the Ansor stance): a dead worker or a
  ``BrokenProcessPool`` rebuilds the pool with bounded exponential backoff
  and re-submits only the unfinished candidates; a candidate that keeps
  failing is *quarantined* as a failed measurement (``inf`` latency) instead
  of aborting the run; a per-candidate timeout kills-and-rebuilds the pool
  so a hung straggler cannot occupy a worker slot; and when the pool keeps
  dying the engine degrades to in-process serial execution for the rest of
  the task.  Every recovery action is counted (``measure.retries``,
  ``measure.quarantined``, ``measure.pool_rebuilds``, ``measure.degraded``,
  ``measure.errors.<kind>``) and emitted as trace events.
- Faults are injectable: a :class:`~repro.tuning.faults.FaultPlan` on
  :class:`MeasureOptions` deterministically crashes/hangs/errors chosen
  evaluations (in workers and/or in-process), which is how the tests and
  the CI chaos job exercise every recovery path above.
- Telemetry lives in a per-task :class:`~repro.obs.metrics.MetricsRegistry`
  (``measure.*`` counters, latency histogram, wall time from the tracer's
  ``measure_batch`` spans); :class:`MeasureStats` is a thin backward-compat
  view over it that still threads through ``TuneResult``, ``report.py`` and
  the CLI.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pickle
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as PoolTimeout
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.compute import ComputeDef
from ..layout.layout import Layout
from ..loops.schedule import LoopSchedule
from ..lower.lower import LoweringError, lower_compute
from ..machine.latency import estimate_stage
from ..machine.spec import MachineSpec
from ..obs.log import log
from ..obs.metrics import MetricsRegistry
from .faults import FaultPlan, SimulatedCrash, SimulatedTimeout


class BudgetExhausted(RuntimeError):
    """Raised when a fresh measurement is requested past the task budget."""


#: bump when the meaning of a cached latency changes in a way the source
#: hash of the latency model does not capture (e.g. key-scheme changes)
CACHE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Options / telemetry
# ---------------------------------------------------------------------------

def _default_jobs() -> int:
    try:
        return max(int(os.environ.get("REPRO_MEASURE_JOBS", "1")), 1)
    except ValueError:
        return 1


def _default_cache_dir() -> Optional[str]:
    if os.environ.get("REPRO_NO_DISK_CACHE"):
        return None
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro"
    )


@dataclass
class MeasureOptions:
    """Knobs for the measurement engine.

    ``jobs``        worker processes (1 = in-process serial; env default
                    ``REPRO_MEASURE_JOBS``)
    ``cache_dir``   root of the persistent evaluation cache; ``None``
                    disables
    ``timeout_s``   per-candidate timeout for pooled evaluations

    Fault-tolerance knobs:

    ``max_candidate_retries``  failed attempts a candidate gets beyond the
                               first before it is quarantined with ``inf``
    ``max_pool_rebuilds``      pool rebuilds per batch before the engine
                               degrades to serial execution for the task
    ``backoff_s``              base of the bounded exponential backoff
                               slept before each pool rebuild
    ``fault_plan``             optional deterministic fault injection (the
                               disk cache is disabled under a plan so
                               injected values never poison real runs)

    Fleet knobs (``repro serve``):

    ``dispatcher``       a :class:`~repro.serve.coordinator.FleetDispatcher`
                         to lease fresh evaluations to; indices the fleet
                         could not finish fall through to the local serial
                         path (the degradation ladder's last rung)
    ``shared_metrics``   a run-level :class:`MetricsRegistry` the measurer
                         mirrors its fault-family counters into *live*
                         under the ``fleet.*`` namespace -- per-task
                         ``measure.*`` counters are process/task-local, so
                         without this, fleet-wide error rates undercount
                         in metrics and the dashboard
    """

    jobs: int = field(default_factory=_default_jobs)
    cache_dir: Optional[str] = field(default_factory=_default_cache_dir)
    timeout_s: Optional[float] = 60.0
    max_candidate_retries: int = 2
    max_pool_rebuilds: int = 3
    backoff_s: float = 0.05
    fault_plan: Optional[FaultPlan] = None
    dispatcher: Optional[object] = field(default=None, repr=False)
    shared_metrics: Optional[MetricsRegistry] = field(
        default=None, repr=False
    )


#: cap on a single rebuild backoff sleep, seconds
_BACKOFF_CAP_S = 2.0


#: registry counter names behind each ``MeasureStats`` field
_STAT_COUNTERS = (
    "batches",
    "requests",  # candidates submitted (incl. cache hits)
    "fresh_evaluations",  # estimate_stage actually executed
    "task_cache_hits",
    "disk_cache_hits",
    "pool_evaluations",
    "serial_evaluations",
    "fleet_evaluations",  # candidates measured by serve workers
    "timeouts",
    "pool_failures",
    "budget_consumed",
    # fault-tolerance telemetry
    "errors",  # all narrowed-exception events (per-kind: measure.errors.*)
    "retries",  # candidate re-submissions after a failed attempt
    "quarantined",  # candidates written off as failed (inf) after retries
    "pool_rebuilds",  # pool kill + rebuild cycles
    "degraded",  # 1 once the task fell back to serial for good
)


class MeasureStats:
    """Measurement telemetry for one task (surfaces in ``TuneResult``).

    A thin read-only view over the measurer's :class:`MetricsRegistry` --
    the registry is the source of truth (the tracer's ``measure_batch``
    spans feed ``measure.wall_time_s``); this class keeps the historical
    attribute API stable for records, reports and tests.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def __getattr__(self, name: str) -> float:
        if name in _STAT_COUNTERS:
            return self.registry.value(f"measure.{name}", 0)
        raise AttributeError(name)

    @property
    def wall_time_s(self) -> float:
        return self.registry.value("measure.wall_time_s", 0.0)

    @property
    def cache_hit_rate(self) -> float:
        hits = self.task_cache_hits + self.disk_cache_hits
        requests = self.requests
        return hits / requests if requests else 0.0

    def as_dict(self) -> Dict[str, float]:
        d = {name: getattr(self, name) for name in _STAT_COUNTERS}
        d["wall_time_s"] = self.wall_time_s
        d["cache_hit_rate"] = self.cache_hit_rate
        return d

    def __repr__(self) -> str:
        return f"MeasureStats({self.as_dict()!r})"


@dataclass
class BatchResult:
    """Latencies for the submission-order prefix that fit in the budget."""

    latencies: List[float]
    exhausted: bool = False  # True if the budget cut the batch short


# ---------------------------------------------------------------------------
# Pure evaluation (runs in-process or inside pool workers)
# ---------------------------------------------------------------------------

def expansion_penalty(
    comp: ComputeDef, machine: MachineSpec, layouts: Mapping[str, Layout]
) -> float:
    """Producer-side cost of data-expanding input layouts.

    Overlapped ``unfold`` and ``pad`` duplicate data; the upstream operator
    that absorbs the layout (paper Fig. 5b) must write the extra bytes.
    Charging that write traffic here keeps the per-op greedy joint tuning
    honest about whole-graph cost -- without it the tuner happily
    im2row-expands every input.  Constant tensors are exempt (re-laid-out
    offline).
    """
    by_name = {t.name: t for t in comp.inputs}
    extra_bytes = 0.0
    for name, lay in layouts.items():
        t = by_name.get(name)
        if t is None or t.role == "const":
            continue
        ratio = lay.expansion_ratio()
        if ratio > 1.0:
            extra_bytes += (ratio - 1.0) * t.nbytes
    if not extra_bytes:
        return 0.0
    cycles = extra_bytes / machine.dram_bw_bytes_per_cycle
    return machine.cycles_to_seconds(cycles)


def evaluate_candidate(
    comp: ComputeDef,
    machine: MachineSpec,
    layouts: Mapping[str, Layout],
    schedule: Optional[LoopSchedule],
) -> float:
    """Simulated on-device measurement of one candidate.

    Pure function of its arguments; lowering failures become ``inf`` the way
    a real harness turns compile errors into failed measurements.
    """
    try:
        stage = lower_compute(comp, layouts, schedule)
        cost = estimate_stage(stage, machine)
        latency = machine.cycles_to_seconds(cost.total_cycles)
        latency += expansion_penalty(comp, machine, layouts)
    except (LoweringError, ValueError):
        latency = math.inf
    return latency


def evaluate_with_faults(
    plan: FaultPlan,
    index: int,
    comp: ComputeDef,
    machine: MachineSpec,
    layouts: Mapping[str, Layout],
    schedule: Optional[LoopSchedule],
    in_worker: bool = True,
) -> float:
    """:func:`evaluate_candidate` behind the fault-injection harness.

    Runs inside pool workers (``in_worker=True``, where a ``crash`` fault
    really kills the process) or in the serial path (``in_worker=False``,
    where crash/timeout become raisable stand-ins).  A retried evaluation
    arrives with a fresh ``index``, so injected faults are transient unless
    the plan pins them to explicit indices.
    """
    fault = plan.fault_at(index)
    if fault is not None and (in_worker or plan.applies_in_process()):
        if fault == "crash":
            if in_worker:
                os._exit(17)  # abrupt worker death -> BrokenProcessPool
            raise SimulatedCrash(f"injected worker crash (evaluation {index})")
        if fault == "timeout":
            if in_worker:
                time.sleep(plan.hang_s)  # hang; the parent times out first
            else:
                raise SimulatedTimeout(f"injected hang (evaluation {index})")
        if fault == "os_error":
            raise OSError(f"injected transient I/O error (evaluation {index})")
    latency = evaluate_candidate(comp, machine, layouts, schedule)
    if fault == "flaky" and math.isfinite(latency):
        latency *= plan.flaky_factor(index)
    return latency


# ---------------------------------------------------------------------------
# Shared process pools
# ---------------------------------------------------------------------------

_POOLS: Dict[int, object] = {}


def _shared_pool(jobs: int):
    """One process pool per worker count, shared across tasks in a run."""
    pool = _POOLS.get(jobs)
    if pool is None:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=jobs)
        _POOLS[jobs] = pool
    return pool


def _discard_pool(jobs: int) -> None:
    """Drop a pool from the shared registry and kill its workers.

    ``shutdown(wait=False)`` alone leaves a *hung* worker process running
    forever (and a crashed pool's manager thread wedged), so stragglers are
    terminated explicitly -- this is what frees the slot a timed-out
    candidate would otherwise occupy for the rest of the run.
    """
    pool = _POOLS.pop(jobs, None)
    if pool is None:
        return
    procs = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except (OSError, RuntimeError):
        pass
    for p in procs:
        try:
            if p.is_alive():
                p.terminate()
        except (OSError, ValueError, AttributeError):
            continue


def shutdown_pools() -> None:
    """Shut down the shared measurement pools (tests / embedding hosts)."""
    for jobs in list(_POOLS):
        _discard_pool(jobs)


# ---------------------------------------------------------------------------
# Persistent on-disk evaluation cache
# ---------------------------------------------------------------------------

_CODE_FINGERPRINT: Optional[str] = None


def _code_fingerprint() -> str:
    """Hash of the measurement-chain sources: editing the latency model or
    the lowering pass invalidates every previously cached latency."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        from ..lower import lower as lower_mod
        from ..machine import latency as latency_mod

        h = hashlib.sha256()
        for mod in (lower_mod, latency_mod):
            try:
                with open(mod.__file__, "rb") as f:
                    h.update(f.read())
            except OSError:
                h.update(b"unknown")
        _CODE_FINGERPRINT = h.hexdigest()[:16]
    return _CODE_FINGERPRINT


def machine_fingerprint(machine: MachineSpec) -> str:
    # frozen dataclass repr covers every field incl. the cache hierarchy
    return repr(machine)


def comp_fingerprint(comp: ComputeDef) -> str:
    """Workload-class fingerprint: independent of node/tensor names so that
    identical operators across models share cache entries (the same keying
    idea as ``pipeline.task_signature``, plus dtypes and roles because the
    expansion penalty depends on them)."""
    return repr(
        (
            comp.tags,
            (comp.output.shape, comp.output.dtype),
            tuple((t.shape, t.dtype, t.role) for t in comp.inputs),
            tuple(sorted((k, str(v)) for k, v in comp.attrs.items())),
        )
    )


class DiskCache:
    """Append-only JSONL shard of ``key -> latency`` for one (machine, op).

    Best-effort by design: unreadable files or lines are skipped, write
    failures are swallowed -- the cache accelerates, never gates, a run.
    """

    def __init__(self, root: str, machine: MachineSpec, comp: ComputeDef):
        shard = hashlib.sha256(
            "|".join(
                (
                    str(CACHE_SCHEMA_VERSION),
                    _code_fingerprint(),
                    machine_fingerprint(machine),
                    comp_fingerprint(comp),
                )
            ).encode("utf-8")
        ).hexdigest()[:24]
        self.path = os.path.join(root, "measure", f"{shard}.jsonl")
        self._entries: Optional[Dict[str, float]] = None

    def _load(self) -> Dict[str, float]:
        if self._entries is None:
            self._entries = {}
            try:
                with open(self.path) as f:
                    for line in f:
                        try:
                            d = json.loads(line)
                            self._entries[d["k"]] = float(d["v"])
                        except (ValueError, KeyError, TypeError):
                            continue
            except OSError:
                pass
        return self._entries

    def __len__(self) -> int:
        return len(self._load())

    def get(self, key: str) -> Optional[float]:
        return self._load().get(key)

    def put(self, key: str, value: float) -> None:
        entries = self._load()
        if key in entries:
            return
        entries[key] = value
        try:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            with open(self.path, "a") as f:
                f.write(json.dumps({"k": key, "v": value}) + "\n")
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The measurer
# ---------------------------------------------------------------------------

Candidate = Tuple[Mapping[str, Layout], LoopSchedule]


class Measurer:
    """Batched measurement layer bound to one :class:`TuningTask`."""

    def __init__(self, task, options: Optional[MeasureOptions] = None):
        self.task = task
        self.options = options or MeasureOptions()
        #: per-task telemetry registry (``measure.*``); the run-level trace
        #: only carries spans/events so tasks never mix their counters
        self.metrics = MetricsRegistry()
        self.stats = MeasureStats(self.metrics)
        #: sticky: the pool kept dying (or never came up) and this task now
        #: runs serial for good
        self._pool_degraded = False
        #: evaluation counter feeding the fault plan (fresh index per
        #: attempt is what makes injected faults transient)
        self._eval_index = 0
        # under fault injection the disk cache is disabled outright: a
        # quarantined inf or a flaky latency must never be persisted where
        # a later clean run would trust it
        self._disk: Optional[DiskCache] = (
            DiskCache(self.options.cache_dir, task.machine, task.comp)
            if self.options.cache_dir and self.options.fault_plan is None
            else None
        )

    def restore_telemetry(self, registry: MetricsRegistry) -> None:
        """Adopt a checkpointed metrics registry (resume path)."""
        self.metrics = registry
        self.stats = MeasureStats(registry)

    # -- checkpoint state ---------------------------------------------------
    def full_state(self) -> Dict:
        """Telemetry registry plus the fault-plan evaluation cursor and the
        sticky degradation flag (the payload is pickled immediately by the
        checkpoint writer, so live references are safe)."""
        return {
            "metrics": self.metrics,
            "eval_index": self._eval_index,
            "degraded": self._pool_degraded,
        }

    def load_full_state(self, state: Dict) -> None:
        self.restore_telemetry(state["metrics"])
        self._eval_index = int(state["eval_index"])
        self._pool_degraded = bool(state["degraded"])

    def publish_metrics(self) -> None:
        """Fold this task's ``measure.*`` counters into the run trace's
        registry so run-level snapshots (``metrics.json``, the trace's
        final record) carry the fault/recovery counts."""
        self.task.trace.metrics.merge(self.metrics)

    # -- public API ---------------------------------------------------------
    def measure(self, layouts: Mapping[str, Layout], schedule: LoopSchedule) -> float:
        """Single-candidate measurement with the serial contract: raises
        :class:`BudgetExhausted` when a fresh measurement no longer fits."""
        result = self.measure_batch([(layouts, schedule)])
        if not result.latencies:
            raise BudgetExhausted(
                f"task {self.task.comp.name}: budget {self.task.budget} exhausted"
            )
        return result.latencies[0]

    def measure_batch(self, candidates: Sequence[Candidate]) -> BatchResult:
        """Measure a batch; merge results in submission order.

        Returns latencies for the longest submission-order prefix the budget
        allows (``exhausted`` flags a cut).  The merge replays exactly what
        serial measurement would have done -- cache hits are free and leave
        no history entry, each novel signature consumes one budget unit,
        appends to ``history`` and may advance ``best_record`` -- so a batch
        is bit-identical to measuring its candidates one by one.
        """
        task = self.task
        if not candidates:
            return BatchResult([])
        counter = self.metrics.counter
        counter("measure.batches").inc()
        counter("measure.requests").inc(len(candidates))
        with task.profiler.phase(
            "measure", items=len(candidates)
        ), task.trace.span(
            "measure_batch", task=task.comp.name, submitted=len(candidates)
        ) as sp:
            sigs = [task._signature(lay, sched) for lay, sched in candidates]
            # plan in submission order, replaying the serial budget accounting
            budget_left = (
                math.inf if task.budget is None else task.budget - task.measurements
            )
            fresh: List[int] = []
            fresh_sigs = set()
            n = len(candidates)
            exhausted = False
            for i, sig in enumerate(sigs):
                if sig in task._cache or sig in fresh_sigs:
                    continue
                if budget_left <= 0:
                    n = i
                    exhausted = True
                    break
                budget_left -= 1
                fresh_sigs.add(sig)
                fresh.append(i)

            if fresh:
                # the measure_batch *span* only reaches a live stream when
                # the batch finishes; this event tells a tailing consumer
                # how much fresh work just went in flight
                task.trace.event(
                    "measure_batch_start", task=task.comp.name,
                    submitted=len(candidates), fresh=len(fresh),
                )
            with task.profiler.phase("measure.eval", items=len(fresh)):
                values = self._resolve(candidates, fresh)

            latencies: List[float] = []
            hist = self.metrics.histogram("measure.latency_s")
            for i in range(n):
                layouts, schedule = candidates[i]
                sig = sigs[i]
                if sig in task._cache:
                    counter("measure.task_cache_hits").inc()
                    latencies.append(task._cache[sig])
                    continue
                lat = values[i]
                task.measurements += 1
                counter("measure.budget_consumed").inc()
                hist.observe(lat)
                task._cache[sig] = lat
                if lat < task.best_latency:
                    task.best_latency = lat
                    task.best_record = (dict(layouts), schedule.copy())
                task.history.append((task.measurements, task.best_latency))
                latencies.append(lat)
            sp.set(fresh=len(fresh), exhausted=exhausted)
        # measurer wall time is defined by the span, whether or not the
        # trace records it (disabled spans still time themselves)
        self.metrics.gauge("measure.wall_time_s").add(sp.duration_s)
        return BatchResult(latencies, exhausted)

    # -- evaluation ---------------------------------------------------------
    def _resolve(
        self, candidates: Sequence[Candidate], fresh: List[int]
    ) -> Dict[int, float]:
        """Latency per fresh index: disk cache first, then evaluation."""
        if not fresh:
            return {}
        out: Dict[int, float] = {}
        keys: Dict[int, str] = {}
        to_eval: List[int] = []
        for i in fresh:
            if self._disk is not None:
                keys[i] = self._candidate_key(*candidates[i])
                hit = self._disk.get(keys[i])
                if hit is not None:
                    self.metrics.counter("measure.disk_cache_hits").inc()
                    out[i] = hit
                    continue
            to_eval.append(i)
        self.metrics.counter("measure.fresh_evaluations").inc(len(to_eval))
        for i, lat in self._evaluate(candidates, to_eval).items():
            out[i] = lat
            if self._disk is not None:
                self._disk.put(keys.get(i) or self._candidate_key(*candidates[i]), lat)
        return out

    def _evaluate(
        self, candidates: Sequence[Candidate], idxs: List[int]
    ) -> Dict[int, float]:
        out: Dict[int, float] = {}
        pending = list(idxs)
        if self.options.dispatcher is not None and pending:
            # the serve fleet is the preferred backend; whatever it could
            # not finish (empty/collapsed fleet) falls through to the
            # serial path below so a request never fails outright
            done, pending = self.options.dispatcher.evaluate(
                self, candidates, pending
            )
            out.update(done)
        # a single candidate never amortizes pool round-trips
        elif len(pending) > 1 and self.options.jobs > 1 and not self._pool_degraded:
            pending = self._pool_evaluate(candidates, pending, out)
        if pending:
            self._serial_evaluate(candidates, pending, out)
        return out

    def _pool_evaluate(
        self, candidates: Sequence[Candidate], pending: List[int],
        out: Dict[int, float],
    ) -> List[int]:
        """Evaluate ``pending`` on the shared pool, healing as it goes.

        Pool-level failures (``BrokenExecutor``, a timed-out straggler, a
        submit that blows up) kill and rebuild the pool with bounded
        exponential backoff and re-submit only the unfinished candidates;
        in-worker failures on a healthy pool retry just that candidate.  A
        candidate whose own attempts exceed ``max_candidate_retries`` is
        quarantined with ``inf``; candidates merely caught behind a broken
        pool re-pend without an attempt charged.  Returns whatever is left
        for the serial path (non-empty only after the engine degraded).
        """
        comp, machine = self.task.comp, self.task.machine
        attempts: Dict[int, int] = {}
        rebuilds = 0
        while pending:
            pool = self._pool()
            if pool is None:
                return pending
            submitted: List[Tuple[int, object]] = []
            repend: List[int] = []
            broken = False
            for pos, i in enumerate(pending):
                lay, sched = candidates[i]
                try:
                    submitted.append(
                        (i, self._submit(pool, comp, machine, lay, sched))
                    )
                except (OSError, RuntimeError, pickle.PicklingError) as exc:
                    # the pool died at submit time; nothing from here on was
                    # accepted, so it all re-pends unpenalized
                    self._note_error(exc, candidate=i, where="submit")
                    repend = pending[pos:]
                    broken = True
                    break
            next_pending: List[int] = []
            for i, fut in submitted:
                if broken:
                    # an earlier failure poisoned the pool; don't block on
                    # doomed futures -- re-pend without an attempt charged
                    next_pending.append(i)
                    continue
                try:
                    out[i] = fut.result(timeout=self.options.timeout_s)
                    self.metrics.counter("measure.pool_evaluations").inc()
                    continue
                except PoolTimeout as exc:
                    # hung straggler: only killing the pool frees its slot
                    self.metrics.counter("measure.timeouts").inc()
                    self._note_error(exc, candidate=i, where="timeout")
                    broken = True
                except BrokenExecutor as exc:
                    # worker death; the first future to observe it is the
                    # likeliest culprit and carries the attempt
                    self._note_error(exc, candidate=i, where="pool")
                    broken = True
                except (OSError, RuntimeError, pickle.PicklingError) as exc:
                    # raised *inside* the worker: pool is healthy, the
                    # candidate alone retries
                    self._note_error(exc, candidate=i, where="worker")
                attempts[i] = attempts.get(i, 0) + 1
                if attempts[i] > self.options.max_candidate_retries:
                    self._quarantine(i, out)
                else:
                    self.metrics.counter("measure.retries").inc()
                    self._shared_inc("fleet.retries")
                    next_pending.append(i)
            next_pending.extend(repend)
            pending = next_pending
            if broken:
                self._mark_pool_broken()
                rebuilds += 1
                if rebuilds > self.options.max_pool_rebuilds:
                    self._degrade()
                    return pending
                if pending:
                    self.metrics.counter("measure.pool_rebuilds").inc()
                    self._backoff(rebuilds)
        return []

    def _serial_evaluate(
        self, candidates: Sequence[Candidate], idxs: List[int],
        out: Dict[int, float],
    ) -> None:
        comp, machine = self.task.comp, self.task.machine
        plan = self.options.fault_plan
        profiled = plan is None and self.task.profiler.enabled
        for i in idxs:
            lay, sched = candidates[i]
            if plan is None:
                # the in-process path can split lowering from the cache
                # simulation per candidate; pool workers can't share the
                # profiler, so their time lands in ``measure.eval`` only
                if profiled:
                    out[i] = self._profiled_evaluate(comp, machine, lay, sched)
                else:
                    out[i] = evaluate_candidate(comp, machine, lay, sched)
                self.metrics.counter("measure.serial_evaluations").inc()
                continue
            for attempt in range(self.options.max_candidate_retries + 1):
                try:
                    out[i] = evaluate_with_faults(
                        plan, self._next_eval_index(), comp, machine, lay,
                        sched, in_worker=False,
                    )
                    self.metrics.counter("measure.serial_evaluations").inc()
                    break
                except (OSError, RuntimeError, TimeoutError) as exc:
                    self._note_error(exc, candidate=i, where="serial")
                    if attempt < self.options.max_candidate_retries:
                        self.metrics.counter("measure.retries").inc()
                        self._shared_inc("fleet.retries")
            else:
                self._quarantine(i, out)

    def _profiled_evaluate(self, comp, machine, lay, sched) -> float:
        """:func:`evaluate_candidate` with lowering and the cache simulation
        timed as separate phases.  Identical arithmetic and error handling
        (the evaluation is a pure function either way)."""
        prof = self.task.profiler
        try:
            with prof.phase("measure.lower", items=1):
                stage = lower_compute(comp, lay, sched)
            with prof.phase("measure.cache_sim", items=1):
                cost = estimate_stage(stage, machine)
            latency = machine.cycles_to_seconds(cost.total_cycles)
            latency += expansion_penalty(comp, machine, lay)
        except (LoweringError, ValueError):
            latency = math.inf
        return latency

    def _submit(self, pool, comp, machine, lay, sched):
        plan = self.options.fault_plan
        if plan is None:
            return pool.submit(evaluate_candidate, comp, machine, lay, sched)
        return pool.submit(
            evaluate_with_faults, plan, self._next_eval_index(),
            comp, machine, lay, sched, True,
        )

    def _pool(self):
        if self._pool_degraded or self.options.jobs <= 1:
            return None
        try:
            return _shared_pool(self.options.jobs)
        except (OSError, RuntimeError) as exc:
            # the pool never came up at all (fork failure, resource limits):
            # nothing to rebuild, go serial for the rest of the task
            self._note_error(exc, where="pool_create")
            self.metrics.counter("measure.pool_failures").inc()
            self._degrade()
            return None

    def _mark_pool_broken(self) -> None:
        """Kill the (possibly wedged) shared pool; a fresh one is built on
        the next :meth:`_pool` call.  Not sticky -- transient breakage heals."""
        self.metrics.counter("measure.pool_failures").inc()
        _discard_pool(self.options.jobs)

    def _degrade(self) -> None:
        if self._pool_degraded:
            return
        self._pool_degraded = True
        self.metrics.counter("measure.degraded").inc()
        self.task.trace.event("measure_degraded", task=self.task.comp.name)
        log.warning(
            "measure: pool for task %s kept failing; degrading to serial "
            "execution",
            self.task.comp.name,
        )

    def _backoff(self, rebuilds: int) -> None:
        time.sleep(
            min(self.options.backoff_s * 2 ** (rebuilds - 1), _BACKOFF_CAP_S)
        )

    def _next_eval_index(self) -> int:
        i = self._eval_index
        self._eval_index += 1
        return i

    def _quarantine(self, i: int, out: Dict[int, float]) -> None:
        """Write a repeatedly-failing candidate off as a failed measurement
        (``inf`` latency, the Ansor convention) instead of aborting."""
        out[i] = math.inf
        self.metrics.counter("measure.quarantined").inc()
        self._shared_inc("fleet.quarantined")
        self.task.trace.event(
            "measure_quarantined", task=self.task.comp.name, candidate=i
        )

    def _note_error(
        self, exc: BaseException, candidate: Optional[int] = None,
        where: str = "",
    ) -> None:
        kind = type(exc).__name__
        self.metrics.counter("measure.errors").inc()
        self.metrics.counter(f"measure.errors.{kind}").inc()
        self._shared_inc("fleet.errors")
        self._shared_inc(f"fleet.errors.{kind}")
        self.task.trace.event(
            "measure_error", task=self.task.comp.name, kind=kind, where=where,
            candidate=candidate, message=str(exc)[:200],
        )

    # -- fleet-wide aggregation (repro serve) -------------------------------
    def _shared_inc(self, name: str, n: int = 1) -> None:
        """Mirror a fault-family count into the run-level shared registry.

        Per-task ``measure.*`` counters only reach the run registry at
        ``publish_metrics`` time and never leave their process at all on a
        fleet worker; the ``fleet.*`` namespace on ``shared_metrics``
        accumulates *live* and across sources, so health/watch/dashboard
        see fleet-wide error rates.  A distinct namespace keeps the
        exactly-once ``publish_metrics`` merge of ``measure.*`` from
        double-counting.
        """
        registry = self.options.shared_metrics
        if registry is not None:
            registry.counter(name).inc(n)

    def note_remote_error(
        self, kind: str, message: str, worker: Optional[str] = None,
    ) -> None:
        """Record an error that happened on (or to) a fleet worker with the
        same counters/events an in-process failure gets."""
        self.metrics.counter("measure.errors").inc()
        self.metrics.counter(f"measure.errors.{kind}").inc()
        self._shared_inc("fleet.errors")
        self._shared_inc(f"fleet.errors.{kind}")
        self.task.trace.event(
            "measure_error", task=self.task.comp.name, kind=kind,
            where="fleet", worker=worker, message=str(message)[:200],
        )

    def absorb_remote_counters(
        self, counts: Mapping[str, int], worker: Optional[str] = None,
    ) -> None:
        """Fold a worker's fault tallies (shipped inside ``lease_result``
        frames) into this task's metrics and the shared registry -- the
        counters would otherwise die with the worker process."""
        for key, value in counts.items():
            try:
                n = int(value)
            except (TypeError, ValueError):
                continue
            if n <= 0:
                continue
            self.metrics.counter(f"measure.worker_faults.{key}").inc(n)
            self._shared_inc("fleet.worker_faults", n)
            self._shared_inc(f"fleet.worker_faults.{key}", n)

    # -- disk-cache keys ----------------------------------------------------
    def _candidate_key(
        self, layouts: Mapping[str, Layout], schedule: Optional[LoopSchedule]
    ) -> str:
        """Positional layout signatures + schedule signature: tensor-name
        independent, so identical ops across graphs share entries."""
        comp = self.task.comp
        tensors = [comp.output] + comp.inputs
        names = {t.name for t in tensors}
        lay_sigs = tuple(
            layouts[t.name].signature() if t.name in layouts else None
            for t in tensors
        )
        extra = tuple(
            sorted((k, layouts[k].signature()) for k in layouts if k not in names)
        )
        sched_sig = schedule.signature() if schedule is not None else None
        blob = repr((lay_sigs, extra, sched_sig))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
