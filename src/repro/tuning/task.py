"""Tuning tasks: the measurement interface between tuners and the machine.

A :class:`TuningTask` binds one operator to one machine and offers
``measure(layouts, schedule)``, the stand-in for the paper's on-device
measurement.  It counts invocations (the *search budget* -- the paper caps
all tuners by the number of on-device measurements), caches repeated
configurations, and turns lowering failures into ``inf`` latencies the way
a real harness turns compile errors into failed measurements.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Tuple

from ..ir.compute import ComputeDef
from ..ir.nest import Stage
from ..layout.layout import Layout
from ..layout.templates import LayoutTemplate, template_for
from ..loops.schedule import LoopSchedule
from ..lower.lower import LoweringError, lower_compute
from ..machine.latency import estimate_stage
from ..machine.spec import MachineSpec
from .loop_space import LoopSpace
from .space import Config, ConfigSpace


class BudgetExhausted(RuntimeError):
    pass


class TuningTask:
    """One operator on one machine."""

    def __init__(
        self,
        comp: ComputeDef,
        machine: MachineSpec,
        budget: Optional[int] = None,
        levels: int = 1,
    ):
        self.comp = comp
        self.machine = machine
        self.budget = budget
        self.levels = levels
        self.template: Optional[LayoutTemplate] = (
            template_for(comp, levels) if comp.is_complex else None
        )
        self.measurements = 0
        self.best_latency = math.inf
        self.best_record: Optional[Tuple[Dict[str, Layout], LoopSchedule]] = None
        self._cache: Dict[Tuple, float] = {}
        self.history: list = []  # (measurement index, best-so-far latency)

    # -- spaces -----------------------------------------------------------------
    def layout_space(self) -> ConfigSpace:
        if self.template is None:
            return ConfigSpace([], name=f"layout:{self.comp.name}")
        return self.template.space()

    def layouts_from(self, layout_cfg: Config) -> Dict[str, Layout]:
        if self.template is None:
            return {}
        return self.template.instantiate(layout_cfg)

    def loop_space_for(self, layouts: Mapping[str, Layout]) -> LoopSpace:
        """Reconstruct the loop space for a candidate layout (Challenge 2)."""
        stage = lower_compute(self.comp, layouts)
        return LoopSpace(stage)

    # -- measurement -----------------------------------------------------------------
    def _signature(self, layouts: Mapping[str, Layout], schedule: LoopSchedule) -> Tuple:
        lay_sig = tuple(sorted((k, v.signature()) for k, v in layouts.items()))
        return (lay_sig, schedule.signature())

    def lower(
        self, layouts: Mapping[str, Layout], schedule: Optional[LoopSchedule]
    ) -> Stage:
        return lower_compute(self.comp, layouts, schedule)

    def measure(
        self, layouts: Mapping[str, Layout], schedule: LoopSchedule
    ) -> float:
        """Simulated on-device measurement; returns latency in seconds."""
        sig = self._signature(layouts, schedule)
        if sig in self._cache:
            return self._cache[sig]
        if self.budget is not None and self.measurements >= self.budget:
            raise BudgetExhausted(
                f"task {self.comp.name}: budget {self.budget} exhausted"
            )
        self.measurements += 1
        try:
            stage = lower_compute(self.comp, layouts, schedule)
            cost = estimate_stage(stage, self.machine)
            latency = self.machine.cycles_to_seconds(cost.total_cycles)
            latency += self._expansion_penalty(layouts)
        except (LoweringError, ValueError):
            latency = math.inf
        self._cache[sig] = latency
        if latency < self.best_latency:
            self.best_latency = latency
            self.best_record = (dict(layouts), schedule.copy())
        self.history.append((self.measurements, self.best_latency))
        return latency

    def _expansion_penalty(self, layouts: Mapping[str, Layout]) -> float:
        """Producer-side cost of data-expanding input layouts.

        Overlapped ``unfold`` and ``pad`` duplicate data; the upstream
        operator that absorbs the layout (paper Fig. 5b) must write the
        extra bytes.  Charging that write traffic here keeps the per-op
        greedy joint tuning honest about whole-graph cost -- without it the
        tuner happily im2row-expands every input.  Constant tensors are
        exempt (re-laid-out offline).
        """
        by_name = {t.name: t for t in self.comp.inputs}
        extra_bytes = 0.0
        for name, lay in layouts.items():
            t = by_name.get(name)
            if t is None or t.role == "const":
                continue
            ratio = lay.expansion_ratio()
            if ratio > 1.0:
                extra_bytes += (ratio - 1.0) * t.nbytes
        if not extra_bytes:
            return 0.0
        cycles = extra_bytes / self.machine.dram_bw_bytes_per_cycle
        return self.machine.cycles_to_seconds(cycles)

    def remaining_budget(self) -> Optional[int]:
        if self.budget is None:
            return None
        return max(self.budget - self.measurements, 0)

    def __repr__(self) -> str:
        return (
            f"TuningTask({self.comp.name!r}, {self.machine.name}, "
            f"measured={self.measurements}, best={self.best_latency:.3e}s)"
        )
