"""Tuning tasks: the measurement interface between tuners and the machine.

A :class:`TuningTask` binds one operator to one machine and offers
``measure(layouts, schedule)``, the stand-in for the paper's on-device
measurement.  It counts invocations (the *search budget* -- the paper caps
all tuners by the number of on-device measurements), caches repeated
configurations, and turns lowering failures into ``inf`` latencies the way
a real harness turns compile errors into failed measurements.

The measurement itself is delegated to a :class:`~.measurer.Measurer`,
which adds batching, a process pool, a persistent on-disk evaluation cache
and telemetry; ``measure_batch`` exposes the batched path to tuners.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..ir.compute import ComputeDef
from ..ir.nest import Stage
from ..layout.layout import Layout
from ..layout.templates import LayoutTemplate, template_for
from ..loops.schedule import LoopSchedule
from ..lower.lower import lower_compute
from ..machine.spec import MachineSpec
from ..obs.profiler import NULL_PROFILER, Profiler
from ..obs.timeline import TimelineRecorder
from ..obs.trace import Trace
from .loop_space import LoopSpace
from .measurer import (  # noqa: F401  (BudgetExhausted re-exported)
    BatchResult,
    BudgetExhausted,
    Measurer,
    MeasureOptions,
    expansion_penalty,
)
from .space import Config, ConfigSpace


class TuningTask:
    """One operator on one machine."""

    def __init__(
        self,
        comp: ComputeDef,
        machine: MachineSpec,
        budget: Optional[int] = None,
        levels: int = 1,
        measure: Optional[MeasureOptions] = None,
        trace: Optional[Trace] = None,
        profiler: Optional[Profiler] = None,
    ):
        self.comp = comp
        self.machine = machine
        self.budget = budget
        self.levels = levels
        self.template: Optional[LayoutTemplate] = (
            template_for(comp, levels) if comp.is_complex else None
        )
        self.measurements = 0
        self.best_latency = math.inf
        self.best_record: Optional[Tuple[Dict[str, Layout], LoopSchedule]] = None
        self._cache: Dict[Tuple, float] = {}
        self.history: list = []  # (measurement index, best-so-far latency)
        #: observability context: a caller-provided run trace, or a fresh
        #: disabled one (spans still time, nothing is recorded)
        self.trace = trace if trace is not None else Trace(enabled=False)
        #: phase profiler: a caller-provided aggregating profiler, or the
        #: shared null one (``with profiler.phase(...)`` costs one lookup)
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        #: per-round tuning timeline (surfaces on ``TuneResult.timeline``)
        self.timeline = TimelineRecorder(self)
        self.measurer = Measurer(self, measure)

    # -- spaces -----------------------------------------------------------------
    def layout_space(self) -> ConfigSpace:
        if self.template is None:
            return ConfigSpace([], name=f"layout:{self.comp.name}")
        return self.template.space()

    def layouts_from(self, layout_cfg: Config) -> Dict[str, Layout]:
        if self.template is None:
            return {}
        return self.template.instantiate(layout_cfg)

    def loop_space_for(self, layouts: Mapping[str, Layout]) -> LoopSpace:
        """Reconstruct the loop space for a candidate layout (Challenge 2)."""
        stage = lower_compute(self.comp, layouts)
        return LoopSpace(stage)

    # -- measurement -----------------------------------------------------------------
    def _signature(self, layouts: Mapping[str, Layout], schedule: LoopSchedule) -> Tuple:
        lay_sig = tuple(sorted((k, v.signature()) for k, v in layouts.items()))
        return (lay_sig, schedule.signature())

    def lower(
        self, layouts: Mapping[str, Layout], schedule: Optional[LoopSchedule]
    ) -> Stage:
        return lower_compute(self.comp, layouts, schedule)

    def measure(
        self, layouts: Mapping[str, Layout], schedule: LoopSchedule
    ) -> float:
        """Simulated on-device measurement; returns latency in seconds."""
        return self.measurer.measure(layouts, schedule)

    def measure_batch(
        self, candidates: Sequence[Tuple[Mapping[str, Layout], LoopSchedule]]
    ) -> BatchResult:
        """Batched measurement; see :meth:`Measurer.measure_batch`."""
        return self.measurer.measure_batch(candidates)

    def _expansion_penalty(self, layouts: Mapping[str, Layout]) -> float:
        return expansion_penalty(self.comp, self.machine, layouts)

    # -- checkpoint state -------------------------------------------------------------
    def full_state(self) -> Dict:
        """Budget/cache/best-record bookkeeping plus the per-round timeline
        and the measurer's telemetry -- restoring it makes re-measured
        signatures free again, which is what keeps a resumed run's budget
        accounting identical to the uninterrupted run's."""
        return {
            "measurements": self.measurements,
            "best_latency": self.best_latency,
            "best_record": (
                (dict(self.best_record[0]), self.best_record[1].copy())
                if self.best_record is not None
                else None
            ),
            "cache": dict(self._cache),
            "history": list(self.history),
            "timeline": [dict(r) for r in self.timeline.rounds],
            "measurer": self.measurer.full_state(),
        }

    def load_full_state(self, state: Dict) -> None:
        self.measurements = int(state["measurements"])
        self.best_latency = state["best_latency"]
        self.best_record = state["best_record"]
        self._cache = dict(state["cache"])
        self.history = list(state["history"])
        self.timeline.rounds = [dict(r) for r in state["timeline"]]
        self.measurer.load_full_state(state["measurer"])

    def remaining_budget(self) -> Optional[int]:
        if self.budget is None:
            return None
        return max(self.budget - self.measurements, 0)

    def __repr__(self) -> str:
        return (
            f"TuningTask({self.comp.name!r}, {self.machine.name}, "
            f"measured={self.measurements}, best={self.best_latency:.3e}s)"
        )
