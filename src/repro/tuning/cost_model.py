"""Learned cost model (paper Section 5.2.3).

Wraps the GBRT over program features: tuners ask it to *rank* a batch of
candidate programs, then spend real measurements only on the predicted
top-k, exactly the paper's measurement-saving loop.  The model retrains
incrementally as measurements accumulate.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Sequence

import numpy as np

from ..ir.nest import Stage
from ..obs.profiler import NULL_PROFILER
from .boosted_trees import GradientBoostedTrees
from .features import stage_features


class CostModel:
    """Predicts a throughput score (higher is better) for lowered stages."""

    def __init__(self, retrain_every: int = 32, min_samples: int = 16):
        self.retrain_every = retrain_every
        self.min_samples = min_samples
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._model: Optional[GradientBoostedTrees] = None
        self._since_retrain = 0
        self._generation = 0
        #: optional ``repro.obs`` metrics registry: retrain count/timing and
        #: the training-set size are recorded under ``cost_model.*``
        self.metrics = None
        #: phase profiler (injected by the tuner, like :attr:`metrics`);
        #: attributes feature extraction, inference and retrains
        self.profiler = NULL_PROFILER

    # -- training data ------------------------------------------------------------
    def update(self, stage: Stage, latency_s: float) -> None:
        if not math.isfinite(latency_s) or latency_s <= 0:
            return
        self._X.append(stage_features(stage))
        self._y.append(-math.log2(latency_s))  # throughput-like score
        self._since_retrain += 1
        if (
            len(self._y) >= self.min_samples
            and self._since_retrain >= self.retrain_every
        ):
            self._fit()

    #: most-recent window used for training (keeps refits O(1) over a run)
    MAX_TRAIN = 1024

    def _fit(self) -> None:
        t0 = time.perf_counter()
        with self.profiler.phase("cost_model.train"):
            X = np.vstack(self._X[-self.MAX_TRAIN:])
            y = np.asarray(self._y[-self.MAX_TRAIN:])
            self._model = GradientBoostedTrees().fit(X, y)
        self._since_retrain = 0
        self._generation += 1
        if self.metrics is not None:
            self.metrics.counter("cost_model.retrains").inc()
            self.metrics.gauge("cost_model.train_samples").set(len(y))
            self.metrics.gauge("cost_model.retrain_time_s").add(
                time.perf_counter() - t0
            )

    # -- warm-start transfer ---------------------------------------------------------
    def export_seed(self, max_n: int = 256) -> Optional[dict]:
        """A JSON-ready sample of the training set (newest ``max_n`` pairs).

        Feature vectors are fixed-length across operators, so a similar
        task's model can :meth:`seed` from them instead of ranking blind
        until its own first retrain.
        """
        if not self._y:
            return None
        return {
            "X": [[round(float(v), 6) for v in x] for x in self._X[-max_n:]],
            "y": [round(float(v), 6) for v in self._y[-max_n:]],
        }

    def seed(self, data: Optional[dict]) -> int:
        """Preload exported training pairs and fit immediately.

        Returns the number of points absorbed.  Seeding happens before the
        task's own measurements, so transferred points age out of the
        :attr:`MAX_TRAIN` window as fresh local data accumulates.
        """
        if not data or not data.get("y"):
            return 0
        xs = [np.asarray(x, dtype=np.float64) for x in data["X"]]
        ys = [float(v) for v in data["y"]]
        if len(xs) != len(ys):
            raise ValueError("cost-model seed X/y length mismatch")
        self._X.extend(xs)
        self._y.extend(ys)
        if len(self._y) >= self.min_samples:
            self._fit()
        if self.metrics is not None:
            self.metrics.counter("cost_model.seeded_points").inc(len(ys))
        return len(ys)

    @property
    def trained(self) -> bool:
        return self._model is not None

    @property
    def generation(self) -> int:
        """Retrain count: diagnostics bucket rank-accuracy per generation."""
        return self._generation

    @property
    def n_samples(self) -> int:
        return len(self._y)

    # -- exact checkpoint state ------------------------------------------------------
    def full_state(self) -> dict:
        """Training set, fitted forest and retrain cursors -- enough to
        resume with bit-identical rankings and retrain timing."""
        return {
            "X": [x.copy() for x in self._X],
            "y": list(self._y),
            "model": self._model,
            "since_retrain": self._since_retrain,
            "generation": self._generation,
        }

    def load_full_state(self, state: dict) -> None:
        self._X = [np.asarray(x) for x in state["X"]]
        self._y = [float(v) for v in state["y"]]
        self._model = state["model"]
        self._since_retrain = int(state["since_retrain"])
        self._generation = int(state["generation"])

    # -- inference ------------------------------------------------------------------
    def predict(self, stages: Sequence[Stage]) -> np.ndarray:
        """Throughput scores (higher = predicted faster)."""
        if not stages:
            return np.empty(0)
        if self._model is None:
            return np.zeros(len(stages))
        t0 = time.perf_counter()
        with self.profiler.phase("cost_model.predict", items=len(stages)):
            with self.profiler.phase(
                "cost_model.features", items=len(stages)
            ):
                X = np.vstack([stage_features(s) for s in stages])
            scores = self._model.predict(X)
        # per-retrain-generation inference cost: rides in the aux table so
        # the phase pie is not double-counted
        self.profiler.tally(
            f"cost_model.predict.gen{self._generation}",
            time.perf_counter() - t0,
            items=len(stages),
        )
        return scores

    def top_k(self, stages: Sequence[Stage], k: int) -> List[int]:
        """Indices of the predicted-best ``k`` stages."""
        scores = self.predict(stages)
        order = np.argsort(-scores, kind="stable")
        return [int(i) for i in order[:k]]
