"""Deterministic fault-injection harness for the measurement engine.

Real tuning runs die in mundane ways: a candidate program segfaults the
worker, a kernel hangs past its timeout, the filesystem hiccups with a
transient ``OSError``, a noisy machine returns a flaky latency.  The
measurement engine is supposed to *survive* all of these (TVM/Ansor treat
measurement failure as routine), so this module gives tests and the CI
chaos job a way to inject exactly those failures, reproducibly.

A :class:`FaultPlan` is a small frozen (picklable) value that travels into
pool workers next to the candidate.  Every evaluation gets a monotonically
increasing *evaluation index* from the measurer; the plan decides the fault
for an index with a seeded hash, so

- the decision is independent of evaluation order and worker identity,
- the same ``(seed, index)`` always yields the same fault, and
- a *retried* evaluation gets a fresh index, which is what makes injected
  crashes transient: the retry usually heals, and a healed run is
  bit-identical to a fault-free run (the evaluation itself is pure).

Fault kinds
-----------

``crash``     the worker process dies abruptly (``os._exit``) -- the pool
              surfaces ``BrokenProcessPool``; in-process (serial) execution
              raises :class:`SimulatedCrash` instead.
``timeout``   the evaluation hangs for ``hang_s`` -- the parent times out
              and must kill the straggler; serially it raises
              :class:`SimulatedTimeout`.
``os_error``  a transient ``OSError`` (I/O hiccup), retryable.
``flaky``     the latency is perturbed by up to ``flaky_rel`` -- the one
              fault that *changes* values, so keep it out of determinism
              gates.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field, fields, replace
from typing import Optional, Tuple

CRASH = "crash"
TIMEOUT = "timeout"
OS_ERROR = "os_error"
FLAKY = "flaky"

FAULT_KINDS = (CRASH, TIMEOUT, OS_ERROR, FLAKY)


class SimulatedCrash(RuntimeError):
    """In-process stand-in for a worker dying mid-evaluation."""


class SimulatedTimeout(TimeoutError):
    """In-process stand-in for an evaluation hanging past its timeout."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, order-independent fault assignment per evaluation index.

    Rate fields are probabilities in ``[0, 1]`` drawn once per index (the
    kinds are mutually exclusive; their sum should stay <= 1).  The
    ``*_at`` tuples pin faults to explicit indices for targeted tests and
    win over the random draw.  ``scope`` limits where faults fire:
    ``"all"`` (default) injects into pool workers *and* the in-process
    serial path; ``"workers"`` leaves serial execution clean, which is how
    tests prove graceful degradation recovers real values.
    """

    seed: int = 0
    crash: float = 0.0
    timeout: float = 0.0
    os_error: float = 0.0
    flaky: float = 0.0
    flaky_rel: float = 0.05
    hang_s: float = 3600.0
    scope: str = "all"  # "all" | "workers"
    crash_at: Tuple[int, ...] = field(default=())
    timeout_at: Tuple[int, ...] = field(default=())
    os_error_at: Tuple[int, ...] = field(default=())

    def __post_init__(self):
        if self.scope not in ("all", "workers"):
            raise ValueError(f"unknown fault scope {self.scope!r}")
        for kind in (self.crash, self.timeout, self.os_error, self.flaky):
            if not 0.0 <= kind <= 1.0:
                raise ValueError("fault rates must be in [0, 1]")

    # -- per-index decisions -------------------------------------------------
    def _draw(self, index: int) -> float:
        # explicit integer mixing (not hash()) so the draw is stable across
        # processes and interpreter runs
        return random.Random(self.seed * 1_000_003 + index).random()

    def fault_at(self, index: int) -> Optional[str]:
        """The fault (or ``None``) for evaluation ``index``; pure."""
        if index in self.crash_at:
            return CRASH
        if index in self.timeout_at:
            return TIMEOUT
        if index in self.os_error_at:
            return OS_ERROR
        r = self._draw(index)
        for kind, rate in (
            (CRASH, self.crash),
            (TIMEOUT, self.timeout),
            (OS_ERROR, self.os_error),
            (FLAKY, self.flaky),
        ):
            if r < rate:
                return kind
            r -= rate
        return None

    def flaky_factor(self, index: int) -> float:
        """Multiplicative latency perturbation in ``1 +/- flaky_rel``."""
        u = random.Random(self.seed * 1_000_003 + index + 1).random()
        return 1.0 + self.flaky_rel * (2.0 * u - 1.0)

    def applies_in_process(self) -> bool:
        return self.scope == "all"

    def for_worker(self, worker_id: str, generation: int = 0) -> "FaultPlan":
        """Derive a decorrelated plan for one fleet worker.

        Every worker of a ``repro serve`` fleet shares one operator-level
        plan spec, but a shared *seed* would make all workers draw the same
        fault at the same local lease index -- a permanent synchronized
        outage.  Mixing a stable hash of the worker id (crc32, not
        ``hash()``, so the derivation survives process boundaries) and the
        respawn ``generation`` into the seed decorrelates the draws while
        keeping them reproducible.  Pinned ``*_at`` indices are *not*
        remapped: they address per-worker-local lease indices, which is
        precisely how a test pins a simultaneous full-fleet outage.
        """
        mixed = (
            self.seed * 1_000_003
            + zlib.crc32(worker_id.encode("utf-8"))
            + generation * 7_919
        )
        return replace(self, seed=mixed)

    # -- CLI spec ------------------------------------------------------------
    _ALIASES = {"oserror": "os_error", "hang": "hang_s"}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from ``key=value`` pairs, e.g.
        ``"crash=0.02,timeout=0.01,os_error=0.05,seed=7,hang_s=30"``."""
        kwargs = {}
        valid = {f.name: f.type for f in fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec item {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = cls._ALIASES.get(key.strip(), key.strip())
            if key not in valid:
                raise ValueError(
                    f"unknown fault spec key {key!r} (valid: {sorted(valid)})"
                )
            if key == "scope":
                kwargs[key] = value.strip()
            elif key.endswith("_at"):
                kwargs[key] = tuple(
                    int(v) for v in value.split("+") if v.strip()
                )
            elif key == "seed":
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    def describe(self) -> str:
        active = [
            f"{k}={getattr(self, k)}"
            for k in ("crash", "timeout", "os_error", "flaky")
            if getattr(self, k) > 0
        ]
        active += [
            f"{k}={v}" for k in ("crash_at", "timeout_at", "os_error_at")
            if (v := getattr(self, k))
        ]
        body = ",".join(active) if active else "no-op"
        return f"FaultPlan(seed={self.seed},{body},scope={self.scope})"
