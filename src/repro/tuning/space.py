"""Search-space abstractions shared by all tuners.

A :class:`ConfigSpace` is an ordered list of named discrete parameters
(split factors restricted to exact divisors, order-pattern indices, on/off
flags).  Layout templates and the generic loop space both produce
ConfigSpaces; the joint space of a workload is their concatenation, which is
what the paper's joint stage explores.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n``, ascending."""
    if n <= 0:
        raise ValueError(f"divisors of non-positive {n}")
    small, large = [], []
    i = 1
    while i * i <= n:
        if n % i == 0:
            small.append(i)
            if i != n // i:
                large.append(n // i)
        i += 1
    return small + large[::-1]


def nearest_choice(choices: Sequence[int], target: float) -> int:
    """Choice closest to ``target`` -- realizes the paper's Eq. 2 rounding
    ``F = R(D * a)`` onto the divisor set."""
    return min(choices, key=lambda c: (abs(c - target), c))


class ParamSpec:
    """One tunable parameter with a finite choice list."""

    __slots__ = ("name", "choices", "default")

    def __init__(self, name: str, choices: Sequence, default=None):
        choices = list(choices)
        if not choices:
            raise ValueError(f"parameter {name} has no choices")
        self.name = name
        self.choices = choices
        self.default = default if default is not None else choices[0]

    def sample(self, rng: random.Random):
        return rng.choice(self.choices)

    def from_unit(self, a: float):
        """Map a continuous action in [0, 1] onto the choice list.

        For integer choices the action scales the largest choice (Eq. 2);
        otherwise it indexes the list.
        """
        if all(isinstance(c, int) for c in self.choices):
            hi = max(self.choices)
            return nearest_choice(self.choices, a * hi)
        idx = min(int(a * len(self.choices)), len(self.choices) - 1)
        return self.choices[idx]

    def neighbors(self, value) -> List:
        """Adjacent choices (for random-walk exploration)."""
        try:
            i = self.choices.index(value)
        except ValueError:
            return list(self.choices)
        out = []
        if i > 0:
            out.append(self.choices[i - 1])
        if i + 1 < len(self.choices):
            out.append(self.choices[i + 1])
        return out

    def __repr__(self) -> str:
        return f"ParamSpec({self.name!r}, {self.choices})"


Config = Dict[str, object]


class ConfigSpace:
    """Ordered collection of :class:`ParamSpec`."""

    def __init__(self, params: Sequence[ParamSpec] = (), name: str = "space"):
        self.name = name
        self.params: List[ParamSpec] = list(params)
        self._by_name = {p.name: p for p in self.params}
        if len(self._by_name) != len(self.params):
            raise ValueError("duplicate parameter names")

    def __len__(self) -> int:
        return len(self.params)

    def __iter__(self):
        return iter(self.params)

    def param(self, name: str) -> ParamSpec:
        return self._by_name[name]

    def size(self) -> int:
        n = 1
        for p in self.params:
            n *= len(p.choices)
        return n

    def default(self) -> Config:
        return {p.name: p.default for p in self.params}

    def sample(self, rng: random.Random) -> Config:
        return {p.name: p.sample(rng) for p in self.params}

    def validate(self, config: Config) -> None:
        for p in self.params:
            if p.name not in config:
                raise KeyError(f"missing parameter {p.name}")
            if config[p.name] not in p.choices:
                raise ValueError(
                    f"{p.name}={config[p.name]!r} not in {p.choices}"
                )

    def mutate(self, config: Config, rng: random.Random, n: int = 1) -> Config:
        """Random-walk step: move ``n`` parameters to a neighboring choice."""
        out = dict(config)
        if not self.params:
            return out
        for p in rng.sample(self.params, min(n, len(self.params))):
            options = p.neighbors(out[p.name]) or p.choices
            out[p.name] = rng.choice(options)
        return out

    def crossover(self, a: Config, b: Config, rng: random.Random) -> Config:
        return {p.name: (a if rng.random() < 0.5 else b)[p.name] for p in self.params}

    def concat(self, other: "ConfigSpace", name: Optional[str] = None) -> "ConfigSpace":
        return ConfigSpace(self.params + other.params, name or f"{self.name}+{other.name}")

    def signature(self, config: Config) -> Tuple:
        return tuple(config[p.name] for p in self.params)

    def __repr__(self) -> str:
        return f"ConfigSpace({self.name!r}, {len(self.params)} params, size~{self.size():.3g})"
