"""Joint layout + loop exploration (paper Section 5.2, Fig. 8).

The tuning run is split into two stages (the answer to Challenge 2):

- **joint stage** -- the layout PPO actor proposes a layout; the loop space
  is *reconstructed* for that layout and several rounds of loop tuning are
  run inside it; the best latency found is fed back as the layout's reward.
  This makes the optimization flow bidirectional: layouts are chosen with
  feedback from loop optimization.
- **loop-only stage** -- the best layout is frozen and the remaining budget
  goes to loop tuning in a now-stable space.

Loop-space exploration follows FlexTensor's random-walk design: sample a
batch, start from the best (by cost model), and let the loop actor pick a
step direction per parameter.  A batch or an episode costs the budget only
for the points actually measured (top-k by the cost model), matching the
paper's accounting where a 128-point batch costs a budget of 8.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..layout.layout import Layout
from ..layout.primitives import LayoutError
from ..loops.schedule import LoopSchedule
from ..lower.lower import LoweringError
from .checkpoint import CheckpointError, CheckpointManager
from .cost_model import CostModel
from .loop_space import LoopSpace
from .ppo import PPOActor, SharedCritic, decode_actions, encode_space_state
from .space import Config, ConfigSpace
from .task import BudgetExhausted, TuningTask

#: candidates per sampled batch (paper uses 128)
BATCH_SIZE = 64
#: measured points per batch/episode (paper uses top-8)
TOP_K = 8


def layout_label(layouts: Mapping[str, Layout]) -> str:
    """Short stable identifier for a layout assignment (timeline records)."""
    if not layouts:
        return "identity"
    sig = repr(tuple(sorted((k, v.signature()) for k, v in layouts.items())))
    return hashlib.sha256(sig.encode("utf-8")).hexdigest()[:10]


@dataclass
class _SearchState:
    """Complete cursor state of the two-stage search.

    Everything the control flow of :class:`JointTuner` keeps between
    episodes lives here (instead of in loop locals) so a checkpoint taken
    at an episode or refine boundary is a *consistent* snapshot: restoring
    it plus the RNG/task/model states re-enters the loops exactly where
    they stopped.  ``anchor_queue`` is ``None`` before the joint stage
    primed it (distinct from ``[]`` -- primed and fully consumed).
    """

    phase: str = "joint"  # "joint" | "loop"
    #: (latency, layout_cfg, loop_cfg, layouts, schedule)
    best: Tuple = (math.inf, None, None, None, None)
    #: layout signature -> (latency, layout_cfg, seed_cfg, layouts)
    candidates: Dict[Tuple, Tuple] = field(default_factory=dict)
    anchor_queue: Optional[List[Config]] = None
    anchor_sigs: set = field(default_factory=set)
    episode: int = 0
    proposals: int = 0
    stalls: int = 0
    joint_spent: int = 0
    # loop-only stage cursors
    loop_idx: int = 0
    loop_refined: List[Tuple] = field(default_factory=list)
    loop_spent: int = 0
    winner_done: bool = False


@dataclass
class TuneResult:
    task_name: str
    best_latency: float
    best_layouts: Dict[str, Layout]
    best_schedule: Optional[LoopSchedule]
    measurements: int
    history: List[Tuple[int, float]] = field(default_factory=list)
    best_layout_config: Optional[Config] = None
    best_loop_config: Optional[Config] = None
    #: measurement-engine telemetry (``MeasureStats.as_dict``)
    telemetry: Optional[Dict] = None
    #: per-round tuning timeline (``repro.obs.timeline`` records)
    timeline: List[Dict] = field(default_factory=list)
    #: transferable search state for warm-starting similar tasks:
    #: ``{"ppo": {"layout":..., "loop":...}, "cost_model": {"X":..., "y":...}}``
    #: (numpy-backed; see :func:`repro.tuning.database.encode_warm`)
    warm: Optional[Dict] = None


class LoopTuner:
    """Loop-space tuning with cost-model-guided batches and a PPO walker."""

    def __init__(
        self,
        task: TuningTask,
        rng: random.Random,
        nprng: np.random.Generator,
        cost_model: Optional[CostModel],
        loop_actor: Optional[PPOActor],
    ):
        self.task = task
        self.rng = rng
        self.nprng = nprng
        self.cost_model = cost_model
        self.loop_actor = loop_actor
        #: timeline label for rounds run through this tuner ("joint"/"loop")
        self.stage = "loop"

    def run_round(
        self,
        layouts: Dict[str, Layout],
        loop_space: LoopSpace,
        n_measure: int,
        seed_cfg: Optional[Config] = None,
        layout_tag: Optional[str] = None,
    ) -> Tuple[float, Optional[Config], Optional[LoopSchedule]]:
        """One batch + walk round; returns (best latency, cfg, schedule)."""
        with self.task.profiler.phase("space.sample") as ph:
            space = loop_space.space()
            candidates: List[Config] = list(loop_space.heuristic_configs())
            if seed_cfg is not None:
                try:
                    space.validate(seed_cfg)
                    candidates.insert(0, seed_cfg)
                    for _ in range(BATCH_SIZE // 4):
                        candidates.append(space.mutate(seed_cfg, self.rng, n=2))
                except (KeyError, ValueError):
                    seed_cfg = None
            while len(candidates) < BATCH_SIZE:
                candidates.append(space.sample(self.rng))
            ph.add_items(len(candidates))

        best_lat, best_cfg, best_sched = math.inf, None, None
        top_lats: List[float] = []
        try:
            ranked = self._rank(layouts, loop_space, candidates, n_measure)
            top_lats = [lat for lat, _, _ in ranked]
            for lat, cfg, sched in ranked:
                if lat < best_lat:
                    best_lat, best_cfg, best_sched = lat, cfg, sched

            # PPO random walk from the best point of the batch
            if self.loop_actor is not None and best_cfg is not None:
                walk_budget = max(n_measure // 2, 2)
                cur = best_cfg
                try:
                    # nested measure/ppo.update phases charge themselves, so
                    # this phase's *self* time is the walk's own overhead
                    with self.task.profiler.phase(
                        "ppo.walk", items=walk_budget
                    ):
                        for _ in range(walk_budget):
                            state = encode_space_state(space, cur)
                            actions = self.loop_actor.act(state)
                            stepped = self._step(space, cur, actions)
                            lat = self._measure(layouts, loop_space, stepped)
                            reward = (
                                -math.log2(lat) if math.isfinite(lat) else -60.0
                            )
                            self.loop_actor.record(reward)
                            if lat < best_lat:
                                best_lat, best_cfg = lat, stepped
                                best_sched = loop_space.schedule(stepped)
                                cur = stepped
                finally:
                    # flush even when BudgetExhausted aborts the walk
                    # mid-episode: otherwise the recorded transitions survive
                    # into the next episode and contaminate its policy update
                    # with stale rewards
                    self.loop_actor.update()
        finally:
            # the timeline keeps even budget-cut rounds: the trajectory must
            # account for every measurement the round managed to spend
            self._record_round(layouts, best_lat, top_lats, layout_tag)
        return best_lat, best_cfg, best_sched

    def _record_round(
        self,
        layouts: Dict[str, Layout],
        best_lat: float,
        top_lats: List[float],
        layout_tag: Optional[str],
    ) -> None:
        task = self.task
        task.trace.metrics.counter("tuner.rounds").inc()
        reward = (
            -math.log2(best_lat)
            if math.isfinite(best_lat) and best_lat > 0
            else None
        )
        task.timeline.record(
            stage=self.stage,
            layout=layout_tag if layout_tag is not None else layout_label(layouts),
            round_best=best_lat,
            reward=reward,
            top_k=top_lats,
        )
        # allocation snapshot at the round boundary (a no-op unless the
        # profiler's tracemalloc capture was explicitly started)
        task.profiler.snapshot_memory(
            f"round {len(task.timeline.rounds)} ({self.stage})"
        )

    # -- helpers -----------------------------------------------------------------
    def _step(self, space: ConfigSpace, cfg: Config, actions: np.ndarray) -> Config:
        """Move each parameter one neighbor up/down/stay per actor output."""
        out = dict(cfg)
        for i, p in enumerate(space.params):
            a = float(actions[i]) if i < len(actions) else 0.5
            direction = -1 if a < 1 / 3 else (1 if a > 2 / 3 else 0)
            if direction == 0:
                continue
            try:
                idx = p.choices.index(out[p.name])
            except ValueError:
                continue
            idx = min(max(idx + direction, 0), len(p.choices) - 1)
            out[p.name] = p.choices[idx]
        return out

    def _measure(
        self, layouts: Dict[str, Layout], loop_space: LoopSpace, cfg: Config
    ) -> float:
        try:
            sched = loop_space.schedule(cfg)
            return self.task.measure(layouts, sched)
        except BudgetExhausted:
            raise
        except (LoweringError, LayoutError, ValueError):
            return math.inf

    def _rank(
        self,
        layouts: Dict[str, Layout],
        loop_space: LoopSpace,
        candidates: List[Config],
        n_measure: int,
    ) -> List[Tuple[float, Config, Optional[LoopSchedule]]]:
        """Cost-model ranking; measure only the top-k candidates."""
        schedules: List[Optional[LoopSchedule]] = []
        stages = []
        valid_idx = []
        with self.task.profiler.phase("lower", items=len(candidates)):
            for i, cfg in enumerate(candidates):
                try:
                    sched = loop_space.schedule(cfg)
                    stage = self.task.lower(layouts, sched)
                except (LoweringError, LayoutError, ValueError):
                    schedules.append(None)
                    continue
                schedules.append(sched)
                stages.append(stage)
                valid_idx.append(i)
        if not stages:
            return []
        scores = None
        if self.cost_model is not None and self.cost_model.trained:
            scores = self.cost_model.predict(stages)
            order = np.argsort(-scores, kind="stable")
            top = [int(i) for i in order[:n_measure]]
            # the seed / first heuristic is always worth a measurement: it
            # anchors the layout's assessment even if the model dislikes it.
            # The guaranteed slot belongs to candidate 0 specifically -- when
            # it failed to lower (valid_idx[0] != 0) no stage is the seed and
            # nothing gets anchored (stage index 0 would be an arbitrary
            # candidate, not the seed).
            if valid_idx[0] == 0 and 0 not in top:
                top = [0] + top[: max(n_measure - 1, 0)]
        else:
            # untrained model: measure in candidate order, which leads with
            # the seed and the heuristic sketches
            top = list(range(min(len(stages), n_measure)))
        # one batch for the whole top-k: the measurer evaluates concurrently
        # and merges in submission order, so results (and the budget cut on
        # exhaustion) are identical to measuring one by one
        batch = self.task.measure_batch(
            [(layouts, schedules[valid_idx[j]]) for j in top]
        )
        # diagnostics: the model's predictions for the candidates that were
        # actually measured, tagged with the retrain generation that made
        # them.  Captured *before* the updates below retrain the model, so
        # every (predicted, measured) pair is attributed to the generation
        # that ranked it.
        if scores is not None and batch.latencies:
            self.task.trace.event(
                "cost_model_batch",
                task=self.task.comp.name,
                generation=self.cost_model.generation,
                predicted=[float(scores[j]) for j in top[:len(batch.latencies)]],
                measured=[float(lat) for lat in batch.latencies],
            )
        results = []
        for j, lat in zip(top, batch.latencies):
            i = valid_idx[j]
            if self.cost_model is not None and math.isfinite(lat):
                self.cost_model.update(stages[j], lat)
            results.append((lat, candidates[i], schedules[i]))
        return results


class JointTuner:
    """The full ALT tuner for one complex operator."""

    def __init__(
        self,
        task: TuningTask,
        seed: int = 0,
        searcher: str = "ppo",
        use_cost_model: bool = True,
        pretrained: Optional[Dict] = None,
        loop_rounds_per_layout: int = 2,
        checkpoint: Optional[CheckpointManager] = None,
        cost_model_seed: Optional[Dict] = None,
    ):
        if searcher not in ("ppo", "random"):
            raise ValueError(f"unknown searcher {searcher!r}")
        self.task = task
        self.searcher = searcher
        self.seed = seed
        self.checkpoint = checkpoint
        self.state = _SearchState()
        self.rng = random.Random(seed)
        self.nprng = np.random.default_rng(seed)
        self.loop_rounds_per_layout = loop_rounds_per_layout
        self.cost_model = CostModel() if use_cost_model else None
        if self.cost_model is not None and cost_model_seed:
            # warm-start transfer: a similar task's measured (features,
            # score) pairs give the ranker a trained model from round one
            self.cost_model.seed(cost_model_seed)
        critic = SharedCritic(self.nprng)
        self.layout_actor = PPOActor(critic, self.nprng) if searcher == "ppo" else None
        self.loop_actor = PPOActor(critic, self.nprng) if searcher == "ppo" else None
        if pretrained is not None and self.layout_actor is not None:
            self.layout_actor.load_state_dict(pretrained["layout"])
            self.loop_actor.load_state_dict(pretrained["loop"])
        self._loop_tuner = LoopTuner(
            task, self.rng, self.nprng, self.cost_model, self.loop_actor
        )
        # observability: PPO losses and cost-model retrains record into the
        # run trace's registry (a no-op sink when tracing is disabled)
        metrics = task.trace.metrics
        if self.cost_model is not None:
            self.cost_model.metrics = metrics
            self.cost_model.profiler = task.profiler
        if self.layout_actor is not None:
            self.layout_actor.metrics = metrics
            self.layout_actor.metrics_prefix = "ppo.layout"
            self.layout_actor.trace = task.trace
            self.layout_actor.profiler = task.profiler
        if self.loop_actor is not None:
            self.loop_actor.metrics = metrics
            self.loop_actor.metrics_prefix = "ppo.loop"
            self.loop_actor.trace = task.trace
            self.loop_actor.profiler = task.profiler

    # -- public -----------------------------------------------------------------
    def tune(
        self, joint_budget: int, loop_budget: int, publish: bool = True
    ) -> TuneResult:
        """Run the joint stage then the loop-only stage.

        After :meth:`load_full_state` restored a checkpoint, the call picks
        the search back up at the saved stage/episode instead of starting
        over; same seed, same eventual result.

        ``publish=False`` defers folding the per-task ``measure.*`` counters
        into the run trace's registry: the network scheduler keeps granting
        more budget to the same tuner afterwards and publishes exactly once
        per task at the end (the registry merge is additive, so publishing
        per grant would double-count).
        """
        task = self.task
        with task.profiler.phase("tune"), task.trace.span(
            "tune_task",
            task=task.comp.name,
            machine=task.machine.name,
            budget=(task.budget if task.budget is not None else -1),
        ) as sp:
            # streamed immediately (the tune_task span only lands at end),
            # so a live watcher sees the task and its budget up front
            task.trace.event(
                "task_start", task=task.comp.name,
                budget=(task.budget if task.budget is not None else -1),
                resumed=self.state.phase != "joint",
            )
            if self.state.phase == "joint":
                best = self._joint_stage(joint_budget)
            else:
                best = self.state.best
            best = self._loop_only_stage(loop_budget, best)
            sp.set(
                best_latency=task.best_latency,
                measurements=task.measurements,
            )
        if publish:
            # fold the per-task measure.* counters (incl. fault/recovery
            # telemetry) into the run trace's registry for metrics.json
            task.measurer.publish_metrics()
        return self.result()

    def refine_more(self, budget: int) -> TuneResult:
        """Spend one more budget grant of loop-only refinement.

        The cross-task scheduler's incremental entry point: after
        :meth:`tune` consumed the task's first allocation, every further
        grant continues the random-walk refinement of the incumbent best
        layout from the saved search state (same RNG streams, cost model
        and actors).  The caller must first raise ``task.budget`` by the
        grant size; the work lands in the same ``_SearchState``/task
        bookkeeping, so :meth:`full_state` checkpoints keep covering it.
        """
        task = self.task
        st = self.state
        _, layout_cfg, loop_cfg, layouts, _ = st.best
        if layouts is None:
            # nothing measured yet (degenerate first grant): refine from the
            # best recorded point, or the identity layout as a last resort
            layouts = dict(task.best_record[0]) if task.best_record else {}
        with task.profiler.phase("tune"), task.trace.span(
            "refine_more", task=task.comp.name, budget=budget
        ) as sp:
            self._loop_tuner.stage = "loop"
            start = task.measurements
            lat, cfg, sched = self._refine(layouts, loop_cfg, budget, start, budget)
            if lat < st.best[0]:
                st.best = (lat, layout_cfg, cfg, layouts, sched)
            sp.set(best_latency=task.best_latency, spent=task.measurements - start)
        return self.result()

    def result(self) -> TuneResult:
        """Build a :class:`TuneResult` from the current search state."""
        _, layout_cfg, loop_cfg, layouts, sched = self.state.best
        return TuneResult(
            task_name=self.task.comp.name,
            best_latency=self.task.best_latency,
            best_layouts=(
                self.task.best_record[0] if self.task.best_record else (layouts or {})
            ),
            best_schedule=(
                self.task.best_record[1] if self.task.best_record else sched
            ),
            measurements=self.task.measurements,
            history=list(self.task.history),
            best_layout_config=layout_cfg,
            best_loop_config=loop_cfg,
            telemetry=self.task.measurer.stats.as_dict(),
            timeline=self.task.timeline.snapshot(),
            warm=self._warm_state(),
        )

    def _warm_state(self) -> Optional[Dict]:
        """Transferable search state for warm-starting similar tasks."""
        warm: Dict = {}
        if self.layout_actor is not None and self.loop_actor is not None:
            warm["ppo"] = {
                "layout": self.layout_actor.state_dict(),
                "loop": self.loop_actor.state_dict(),
            }
        if self.cost_model is not None:
            seed = self.cost_model.export_seed()
            if seed is not None:
                warm["cost_model"] = seed
        return warm or None

    # -- stages ---------------------------------------------------------------------
    def _joint_stage(self, budget: int):
        with self.task.trace.span(
            "joint_stage", task=self.task.comp.name, budget=budget
        ) as sp:
            best = self._run_joint(budget, sp)
        # stage boundary: the tail PPO flush above is part of the joint
        # stage's state, so the phase flip checkpoints *after* it
        self.state.phase = "loop"
        if self.checkpoint is not None:
            with self.task.profiler.phase("checkpoint"):
                self.checkpoint.save(self.full_state())
        return best

    def _run_joint(self, budget: int, sp):
        task = self.task
        st = self.state
        layout_space = task.layout_space()
        metrics = task.trace.metrics
        if len(layout_space) == 0:
            # no layout space (simple op): everything goes to loop tuning
            return st.best
        self._loop_tuner.stage = "joint"
        # on resume ``joint_spent`` rebuilds the stage's budget origin from
        # the restored measurement count
        start = task.measurements - st.joint_spent
        try:
            while task.measurements - start < budget and st.stalls < 8:
                before = task.measurements
                layout_cfg, from_actor = self._propose_layout(
                    layout_space, st.best[1]
                )
                st.proposals += 1
                metrics.counter("tuner.layouts_proposed").inc()
                try:
                    with task.profiler.phase("space.build", items=1):
                        layouts = task.layouts_from(layout_cfg)
                        loop_space = task.loop_space_for(layouts)
                except (LayoutError, LoweringError, ValueError):
                    # unbuildable layout: pruned before spending any budget
                    metrics.counter("tuner.layouts_pruned").inc()
                    if self.layout_actor is not None and from_actor:
                        self.layout_actor.record(-60.0)
                    continue
                layout_best = math.inf
                remaining = budget - (task.measurements - start)
                # size per-layout assessment so that at least ~5 candidate
                # layouts (the anchors plus exploration) fit in the joint budget
                per_layout = max(budget // 5, 2)
                per_round = min(
                    TOP_K,
                    max(remaining // self.loop_rounds_per_layout, 1),
                    max(per_layout // self.loop_rounds_per_layout, 1),
                )
                seed_cfg = None
                tag = self._cfg_tag(layout_cfg)
                for _ in range(self.loop_rounds_per_layout):
                    try:
                        lat, cfg, sched = self._loop_tuner.run_round(
                            layouts, loop_space, per_round, seed_cfg,
                            layout_tag=tag,
                        )
                    except BudgetExhausted:
                        break
                    if lat < layout_best:
                        layout_best = lat
                    if cfg is not None:
                        seed_cfg = cfg
                    if lat < st.best[0]:
                        st.best = (lat, layout_cfg, cfg, layouts, sched)
                    sig = layout_space.signature(layout_cfg)
                    prev = st.candidates.get(sig)
                    if prev is None or lat < prev[0]:
                        st.candidates[sig] = (lat, layout_cfg, seed_cfg, layouts)
                reward = (
                    -math.log2(layout_best) if math.isfinite(layout_best) else -60.0
                )
                task.trace.event(
                    "layout_episode",
                    task=task.comp.name,
                    layout=tag,
                    from_actor=from_actor,
                    best=layout_best,
                    reward=reward,
                )
                if self.layout_actor is not None and from_actor:
                    self.layout_actor.record(reward)
                    st.episode += 1
                    if st.episode % 4 == 0:
                        self.layout_actor.update()
                st.stalls = st.stalls + 1 if task.measurements == before else 0
                st.joint_spent = task.measurements - start
                # episode boundary: every loop variable lives in ``st``, so
                # this is a consistent point to snapshot
                if self.checkpoint is not None:
                    with task.profiler.phase("checkpoint"):
                        self.checkpoint.tick(self.full_state)
        finally:
            # flush the tail episodes (episode % 4 != 0) and any trajectory a
            # mid-walk BudgetExhausted left behind, so stale rewards cannot
            # leak into the loop-only stage's updates
            if self.layout_actor is not None:
                self.layout_actor.update()
            st.joint_spent = task.measurements - start
            sp.set(proposals=st.proposals, spent=task.measurements - start)
        return st.best

    def _loop_only_stage(self, budget: int, best):
        with self.task.trace.span(
            "loop_only_stage", task=self.task.comp.name, budget=budget
        ) as sp:
            self._loop_tuner.stage = "loop"
            best = self._run_loop_only(budget, best)
            sp.set(best_latency=best[0])
        return best

    def _run_loop_only(self, budget: int, best):
        """Loop-only tuning by successive halving over the joint stage's
        top layouts: the per-layout assessments in the joint stage are
        noisy (a handful of measurements each), so the runners-up keep a
        small share of the remaining budget before the winner takes all."""
        task = self.task
        st = self.state
        # finalist selection is a pure function of the restored candidate
        # table, so a resumed run recomputes the identical list
        finalists = self._select_finalists(budget, best)
        start = task.measurements - st.loop_spent
        # round 1: each finalist refines with an equal slice (~1/2 budget)
        slice_budget = max(budget // (2 * len(finalists)), TOP_K)
        while st.loop_idx < len(finalists):
            lat_est, l_cfg, seed, lays = finalists[st.loop_idx]
            result = self._refine(lays, seed, slice_budget, start, budget)
            st.loop_refined.append((result[0], l_cfg, result[1], lays, result[2]))
            if result[0] < best[0]:
                best = (result[0], l_cfg, result[1], lays, result[2])
            st.loop_idx += 1
            st.loop_spent = task.measurements - start
            st.best = best
            if self.checkpoint is not None:
                with task.profiler.phase("checkpoint"):
                    self.checkpoint.tick(self.full_state)
        # round 2: the winner takes the rest
        if not st.winner_done:
            refined = sorted(st.loop_refined, key=lambda r: r[0])
            lat_w, cfg_w, loop_w, lays_w, sched_w = refined[0]
            remaining = budget - (task.measurements - start)
            if remaining > 0:
                result = self._refine(lays_w, loop_w, remaining, start, budget)
                if result[0] < best[0]:
                    best = (result[0], cfg_w, result[1], lays_w, result[2])
            st.winner_done = True
            st.loop_spent = task.measurements - start
            st.best = best
            if self.checkpoint is not None:
                with task.profiler.phase("checkpoint"):
                    self.checkpoint.save(self.full_state())
        return best

    def _select_finalists(self, budget: int, best):
        task = self.task
        st = self.state
        _, layout_cfg, loop_cfg, layouts, _ = best
        # how many layouts can afford a meaningful refinement slice
        k = max(1, min(3, budget // 48))
        finalists = sorted(st.candidates.values(), key=lambda c: c[0])[:k]
        # the best *anchor* (a predetermined prior-art layout) always stays
        # in contention: ALT's space contains the baselines' layouts, so its
        # result should never fall below theirs for lack of refinement
        anchors = sorted(
            (v for sig, v in st.candidates.items() if sig in st.anchor_sigs),
            key=lambda c: c[0],
        )
        if (
            k >= 2
            and anchors
            and all(a is not f for a in anchors[:1] for f in finalists)
        ):
            finalists = finalists[: k - 1] + anchors[:1]
        if not finalists:
            if task.template is not None:
                # no joint stage ran: fall back to the packed anchor (the
                # NCHWc-style layout the strongest fixed-layout baselines
                # predetermine)
                space = task.layout_space()
                layout_cfg = self._packed_anchor(space, 16)
                layouts = task.layouts_from(layout_cfg)
            else:
                layouts = {}
            finalists = [(math.inf, layout_cfg, loop_cfg, layouts)]
        return finalists

    def _refine(self, layouts, seed_cfg, slice_budget: int, start: int, budget: int):
        """Run loop rounds on one layout within the stage's global budget."""
        task = self.task
        with task.profiler.phase("space.build", items=1):
            loop_space = task.loop_space_for(layouts)
        best_lat, best_cfg, best_sched = math.inf, seed_cfg, None
        used = 0
        stalls = 0
        while used < slice_budget and task.measurements - start < budget and stalls < 4:
            before = task.measurements
            remaining = min(slice_budget - used, budget - (task.measurements - start))
            try:
                lat, cfg, sched = self._loop_tuner.run_round(
                    layouts, loop_space, min(TOP_K, max(remaining, 1)), best_cfg
                )
            except BudgetExhausted:
                break
            used += task.measurements - before
            stalls = stalls + 1 if task.measurements == before else 0
            if cfg is not None and lat < best_lat:
                best_lat, best_cfg, best_sched = lat, cfg, sched
        return best_lat, best_cfg, best_sched

    # -- layout proposals --------------------------------------------------------------
    def _propose_layout(self, space: ConfigSpace, incumbent: Optional[Config]):
        """Returns ``(config, from_actor)``."""
        st = self.state
        if st.anchor_queue is None:
            # The first episodes evaluate anchor layouts: the template
            # default (small channel tiles), a packed-channel
            # NCHWc-equivalent (what NeoCPU/Ansor predetermine) and a full
            # channel-last NHWO-equivalent.  All three are points of the
            # template space; the joint search then only has to *beat* the
            # prior art's predetermined choices.
            st.anchor_queue = [
                space.default(),
                self._packed_anchor(space, 16),
                self._packed_anchor(space, None),
                self._packed_anchor(space, 1),  # identity: NOHW / KN
            ]
            st.anchor_sigs = {
                space.signature(cfg) for cfg in st.anchor_queue
            }
        if st.anchor_queue:
            return st.anchor_queue.pop(0), False
        if self.layout_actor is None:
            return space.sample(self.rng), False
        if self.rng.random() < 0.25:
            # epsilon exploration keeps the joint stage from collapsing onto
            # the actor's initial prior under small budgets
            return space.sample(self.rng), False
        state = encode_space_state(space, incumbent)
        actions = self.layout_actor.act(state)
        return decode_actions(space, actions), True

    # -- checkpoint state --------------------------------------------------------------
    def full_state(self) -> Dict:
        """Consistent snapshot of the entire search at a loop boundary.

        Covers both RNG streams, the PPO nets with Adam moments and
        unflushed transition buffers (the shared critic serialized once),
        the cost model's training set and forest, the task's budget/cache/
        history/timeline bookkeeping, the measurer telemetry and the
        :class:`_SearchState` cursors.  The payload is pickled immediately
        by the checkpoint writer; it holds live references, not copies.
        """
        return {
            "task_name": self.task.comp.name,
            "machine": self.task.machine.name,
            "budget": self.task.budget,
            "searcher": self.searcher,
            "seed": self.seed,
            "rng": self.rng.getstate(),
            "nprng": self.nprng.bit_generator.state,
            "cost_model": (
                self.cost_model.full_state()
                if self.cost_model is not None
                else None
            ),
            "critic": (
                self.layout_actor.critic.full_state()
                if self.layout_actor is not None
                else None
            ),
            "layout_actor": (
                self.layout_actor.full_state()
                if self.layout_actor is not None
                else None
            ),
            "loop_actor": (
                self.loop_actor.full_state()
                if self.loop_actor is not None
                else None
            ),
            "task": self.task.full_state(),
            "search": self.state,
        }

    def load_full_state(self, payload: Dict) -> None:
        """Restore a :meth:`full_state` snapshot in place.

        Mutates the existing objects (nets, cost model, task) rather than
        replacing them, so the :class:`LoopTuner`'s shared references stay
        valid.  Raises :class:`CheckpointError` when the snapshot belongs
        to a different task/seed/configuration -- resuming it here would
        silently produce garbage.
        """
        for key, mine in (
            ("task_name", self.task.comp.name),
            ("machine", self.task.machine.name),
            ("budget", self.task.budget),
            ("searcher", self.searcher),
            ("seed", self.seed),
        ):
            if payload.get(key) != mine:
                raise CheckpointError(
                    f"checkpoint {key} mismatch: saved "
                    f"{payload.get(key)!r}, this run has {mine!r}"
                )
        self.rng.setstate(payload["rng"])
        self.nprng.bit_generator.state = payload["nprng"]
        if self.cost_model is not None and payload["cost_model"] is not None:
            self.cost_model.load_full_state(payload["cost_model"])
        if self.layout_actor is not None and payload["layout_actor"] is not None:
            self.layout_actor.critic.load_full_state(payload["critic"])
            self.layout_actor.load_full_state(payload["layout_actor"])
            self.loop_actor.load_full_state(payload["loop_actor"])
        self.task.load_full_state(payload["task"])
        self.state = payload["search"]

    @staticmethod
    def _cfg_tag(cfg: Optional[Config]) -> str:
        """Readable layout-config identity for timeline/trace records."""
        if not cfg:
            return "identity"
        return ",".join(
            f"{k.rsplit('.', 1)[-1]}={v}" for k, v in sorted(cfg.items())
        )

    @staticmethod
    def _packed_anchor(space: ConfigSpace, channel_tile: Optional[int]) -> Config:
        """A classic layout as a template-space point: no spatial tiling and
        channel tiles of ``channel_tile`` (NCHWc) or the full dimension
        (``None`` -> channel-last NHWO/NDHWO)."""
        cfg: Config = {}
        for p in space.params:
            name = p.name.rsplit(".", 1)[-1]
            if name in ("ot", "it", "kot", "kit", "mt", "nt", "kt"):
                if channel_tile is None:
                    cfg[p.name] = max(p.choices)
                else:
                    cfg[p.name] = min(p.choices, key=lambda c: abs(c - channel_tile))
            elif name == "co":
                cfg[p.name] = 1 if channel_tile is not None else 0
            elif name.endswith("2"):
                cfg[p.name] = 1
            else:
                cfg[p.name] = p.default
        return cfg
