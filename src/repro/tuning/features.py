"""Program feature extraction for the learned cost model.

Following Ansor's recipe: a fixed-length numeric vector summarizing loop
structure and per-access memory behaviour of a lowered stage.  Features are
computed from the program alone (no measurement), so the cost model can rank
thousands of candidates before any "on-device" run.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..ir.expr import affine_coefficients
from ..ir.nest import PARALLEL, UNROLL, VECTORIZE, Stage

#: number of access slots encoded (stage reads beyond this are aggregated)
_N_ACCESS_SLOTS = 4
_PER_ACCESS = 5
N_FEATURES = 12 + _N_ACCESS_SLOTS * _PER_ACCESS


def _log(x: float) -> float:
    return math.log2(max(float(x), 1.0))


def stage_features(stage: Stage) -> np.ndarray:
    """Fixed-length feature vector of one lowered stage."""
    loops = stage.loops
    total = stage.trip_count()
    inner = loops[-1]

    parallel_extent = 1
    for l in loops:
        if l.kind == PARALLEL:
            parallel_extent *= l.extent
        else:
            break
    reduce_extent = 1
    for l in loops:
        if l.var in stage.reduce_vars:
            reduce_extent *= l.extent

    feats: List[float] = [
        _log(total),
        float(len(loops)),
        _log(inner.extent),
        1.0 if inner.kind == VECTORIZE else 0.0,
        1.0 if any(l.kind == UNROLL for l in loops) else 0.0,
        _log(parallel_extent),
        _log(reduce_extent),
        float(len(stage.reads())),
        _log(stage.out.nbytes),
        1.0 if stage.reduce_op else 0.0,
        _log(stage.annotations.get("flops", total)),
        float(sum(1 for l in loops if l.extent == 1)),
    ]

    # Per-access features: innermost stride class, touched bytes, locality.
    accesses = list(stage.reads()) + [None]  # None marks the write
    slots = []
    for acc in accesses[: _N_ACCESS_SLOTS]:
        if acc is None:
            buffer, indices = stage.out, stage.out_indices
        else:
            buffer, indices = acc.buffer, acc.indices
        flat = buffer.flat_index(indices)
        coeffs = affine_coefficients(flat) or {}
        inner_stride = coeffs.get(inner.var, None if not coeffs else 0)
        if inner_stride is None:
            stride_class = 3.0  # irregular
        elif inner_stride == 0:
            stride_class = 0.0  # broadcast
        elif abs(inner_stride) == 1:
            stride_class = 1.0  # contiguous
        else:
            stride_class = 2.0  # strided
        # bytes touched in the innermost 3 loops (register/L1 tile proxy)
        tile_bytes = buffer.itemsize
        for l in loops[-3:]:
            s = coeffs.get(l.var, 0) if coeffs else None
            if s is None:
                tile_bytes *= l.extent
            elif s != 0:
                tile_bytes *= l.extent
        reuse = sum(1 for l in loops if coeffs.get(l.var, 1 if not coeffs else 0) == 0)
        slots.append(
            [
                stride_class,
                _log(buffer.nbytes),
                _log(tile_bytes),
                float(reuse),
                _log(abs(inner_stride)) if inner_stride else 0.0,
            ]
        )
    while len(slots) < _N_ACCESS_SLOTS:
        slots.append([0.0] * _PER_ACCESS)
    for s in slots:
        feats.extend(s)
    return np.asarray(feats, dtype=np.float64)
