"""Tuning-record serialization (the equivalent of Ansor's log files).

A :class:`TuneRecord` captures everything needed to re-apply a tuning
result without re-searching: the operator's task signature, the layout
primitive sequences per tensor, and the loop schedule.  Records round-trip
through JSON, so a tuned model can be shipped, cached, or inspected.

Layout primitives serialize by constructor name + arguments; schedules by
their directive lists.  ``apply_record`` rebuilds ``(layouts, schedule)``
against a compatible operator.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.log import log

from ..ir.compute import ComputeDef
from ..layout.layout import Layout
from ..layout.primitives import Fuse, Pad, Primitive, Reorder, Split, StoreAt, Unfold
from ..loops.schedule import LoopSchedule


class RecordError(ValueError):
    pass


# -- primitive (de)serialization -------------------------------------------------

def primitive_to_dict(prim: Primitive) -> Dict:
    if isinstance(prim, Split):
        return {"op": "split", "dim": prim.dim, "factors": list(prim.factors)}
    if isinstance(prim, Reorder):
        return {"op": "reorder", "perm": list(prim.perm)}
    if isinstance(prim, Fuse):
        return {"op": "fuse", "start": prim.start, "count": prim.count}
    if isinstance(prim, Unfold):
        return {
            "op": "unfold", "dim": prim.dim,
            "tile_size": prim.tile_size, "stride": prim.stride,
        }
    if isinstance(prim, Pad):
        return {"op": "pad", "dim": prim.dim, "before": prim.before, "after": prim.after}
    if isinstance(prim, StoreAt):
        return {"op": "store_at", "host": prim.host, "host_dim": prim.host_dim}
    raise RecordError(f"cannot serialize primitive {prim!r}")


def primitive_from_dict(d: Dict) -> Primitive:
    op = d.get("op")
    if op == "split":
        return Split(d["dim"], d["factors"])
    if op == "reorder":
        return Reorder(d["perm"])
    if op == "fuse":
        return Fuse(d["start"], d["count"])
    if op == "unfold":
        return Unfold(d["dim"], d["tile_size"], d["stride"])
    if op == "pad":
        return Pad(d["dim"], d["before"], d["after"])
    if op == "store_at":
        return StoreAt(d["host"], d["host_dim"])
    raise RecordError(f"unknown primitive kind {op!r}")


def layout_to_dict(layout: Layout) -> Dict:
    return {
        "shape": list(layout.logical_shape),
        "names": list(layout.logical_names),
        "primitives": [primitive_to_dict(p) for p in layout.primitives],
    }


def layout_from_dict(d: Dict) -> Layout:
    lay = Layout(d["shape"], d.get("names"))
    for pd in d["primitives"]:
        lay = lay._extend(primitive_from_dict(pd))
    return lay


# -- schedule (de)serialization ---------------------------------------------------

def schedule_to_dict(sched: LoopSchedule) -> Dict:
    return {
        "splits": [[var, list(factors)] for var, factors in sched.splits],
        "order": sched.order,
        "vectorize": sched.vectorize_var,
        "unroll": list(sched.unroll_vars),
        "parallel": list(sched.parallel_vars),
        "fuse_group": sched.fuse_group,
    }


def schedule_from_dict(d: Dict) -> LoopSchedule:
    sched = LoopSchedule()
    for var, factors in d.get("splits", []):
        sched.split(var, factors)
    if d.get("order") is not None:
        sched.reorder(d["order"])
    if d.get("vectorize"):
        sched.vectorize(d["vectorize"])
    for v in d.get("unroll", []):
        sched.unroll(v)
    for v in d.get("parallel", []):
        sched.parallel(v)
    if d.get("fuse_group"):
        sched.set_fuse_group(d["fuse_group"])
    return sched


# -- records ------------------------------------------------------------------------

@dataclass
class TuneRecord:
    """One tuned operator: task identity + layouts + schedule + metadata."""

    task: Tuple
    machine: str
    latency_s: float
    layouts: Dict[str, Dict]
    schedule: Optional[Dict]
    measurements: int = 0
    #: measurement-engine telemetry captured at record time (optional)
    telemetry: Optional[Dict] = None
    #: warm-start payload for *similar* tasks: PPO actor weights and a cost
    #: model training-set sample, both JSON-ready (see repro.tuning.database)
    warm: Optional[Dict] = None

    def key(self) -> Tuple:
        return (self.task, self.machine)

    def to_json(self) -> str:
        d = {
            "task": _jsonable(self.task),
            "machine": self.machine,
            "latency_s": self.latency_s,
            "layouts": self.layouts,
            "schedule": self.schedule,
            "measurements": self.measurements,
            "telemetry": self.telemetry,
        }
        if self.warm is not None:
            d["warm"] = self.warm
        return json.dumps(d)

    @staticmethod
    def from_json(text: str) -> "TuneRecord":
        d = json.loads(text)
        if not isinstance(d, dict):
            raise RecordError(f"record line is not a JSON object: {text[:40]!r}")
        try:
            return TuneRecord(
                task=_tupled(d["task"]),
                machine=d["machine"],
                latency_s=d["latency_s"],
                layouts=d["layouts"],
                schedule=d.get("schedule"),
                measurements=d.get("measurements", 0),
                telemetry=d.get("telemetry"),
                warm=d.get("warm"),
            )
        except KeyError as exc:
            raise RecordError(f"record line misses field {exc}") from exc


#: list-vs-tuple disambiguation sentinel in the JSON task encoding
_TUPLE_SENTINEL = "__tuple__"
_ESCAPE = "\\"


def _needs_escape(s: str) -> bool:
    """Strings that would collide with (an escaped form of) the sentinel."""
    return s.lstrip(_ESCAPE) == _TUPLE_SENTINEL


def _jsonable(x):
    if isinstance(x, tuple):
        return [_TUPLE_SENTINEL] + [_jsonable(v) for v in x]
    if isinstance(x, list):
        return [_jsonable(v) for v in x]
    if isinstance(x, str) and _needs_escape(x):
        # a *literal* "__tuple__" (or an already-escaped form) in the data
        # gains one escape level, so it can never masquerade as the marker
        return _ESCAPE + x
    return x


def _tupled(x):
    if isinstance(x, list):
        if x and x[0] == _TUPLE_SENTINEL:
            return tuple(_tupled(v) for v in x[1:])
        return [_tupled(v) for v in x]
    if isinstance(x, str) and x.startswith(_ESCAPE) and _needs_escape(x):
        return x[len(_ESCAPE):]
    return x


def record_from_result(
    comp: ComputeDef, machine_name: str, result, warm: bool = False
) -> TuneRecord:
    """Build a record from a :class:`~repro.tuning.explorer.TuneResult`.

    ``warm=True`` additionally embeds the tuner's transferable search state
    (PPO weights + a cost-model training sample) so the record can
    warm-start *similar* tasks; see :mod:`repro.tuning.database`.
    """
    from ..pipeline import task_signature

    warm_payload = None
    if warm and getattr(result, "warm", None):
        from .database import encode_warm

        warm_payload = encode_warm(result.warm)
    return TuneRecord(
        task=task_signature(comp),
        machine=machine_name,
        latency_s=result.best_latency,
        layouts={
            name: layout_to_dict(lay) for name, lay in result.best_layouts.items()
        },
        schedule=(
            schedule_to_dict(result.best_schedule)
            if result.best_schedule is not None
            else None
        ),
        measurements=result.measurements,
        telemetry=getattr(result, "telemetry", None),
        warm=warm_payload,
    )


def apply_record(
    record: TuneRecord, comp: ComputeDef
) -> Tuple[Dict[str, Layout], Optional[LoopSchedule]]:
    """Rebuild (layouts, schedule) for an operator matching the record.

    Tensor names are matched positionally (output first, then inputs), so a
    record taken from one instance applies to any identically-shaped clone.
    """
    from ..pipeline import task_signature

    if task_signature(comp) != record.task:
        raise RecordError(
            f"record was tuned for a different task than {comp.name}"
        )
    layouts: Dict[str, Layout] = {}
    # positional remap: the recorded dict preserves insertion order (output
    # first, then inputs), so tensors sharing a shape consume their bucket's
    # entries in position order -- deterministic, and stable across clones
    tensors = [comp.output] + comp.inputs
    by_shape: Dict[Tuple[int, ...], List[str]] = {}
    for name, lay_d in record.layouts.items():
        by_shape.setdefault(tuple(lay_d["shape"]), []).append(name)
    for t in tensors:
        bucket = by_shape.get(t.shape)
        if bucket:
            layouts[t.name] = layout_from_dict(record.layouts[bucket.pop(0)])
    unmatched = [name for bucket in by_shape.values() for name in bucket]
    if unmatched:
        # a recorded layout whose shape fits no remaining tensor: silently
        # dropping it would compile the operator with a half-applied record
        raise RecordError(
            f"record layouts {unmatched} match no tensor of {comp.name} "
            "(shape mismatch -- record does not fit this operator)"
        )
    schedule = (
        schedule_from_dict(record.schedule) if record.schedule is not None else None
    )
    return layouts, schedule


class RecordStore:
    """A simple JSONL store of tuning records keyed by (task, machine)."""

    def __init__(self):
        self._records: Dict[Tuple, TuneRecord] = {}

    def add(self, record: TuneRecord) -> bool:
        """Keep-best insert; returns True when the record was kept."""
        key = record.key()
        existing = self._records.get(key)
        if existing is None or record.latency_s < existing.latency_s:
            self._records[key] = record
            return True
        return False

    def lookup(self, comp: ComputeDef, machine_name: str) -> Optional[TuneRecord]:
        from ..pipeline import task_signature

        return self._records.get((task_signature(comp), machine_name))

    def records(self) -> List[TuneRecord]:
        return list(self._records.values())

    def merge(self, other: "RecordStore") -> int:
        """Keep-best merge of another store; returns records absorbed."""
        return sum(1 for rec in other.records() if self.add(rec))

    def __len__(self) -> int:
        return len(self._records)

    def dump(self, path: str, mode: str = "replace") -> None:
        """Atomically persist the store as JSONL.

        The file is written next to ``path`` and moved into place with
        ``os.replace``, so a crash mid-write can never truncate an existing
        store and concurrent dumpers serialize on the rename (last writer
        wins a whole file, not interleaved lines).  ``mode="merge"``
        keep-best-merges with whatever is already on disk first, so two
        concurrent runs lose nothing but duplicate work.
        """
        if mode not in ("replace", "merge"):
            raise ValueError(f"dump mode must be replace|merge, got {mode!r}")
        out = self
        if mode == "merge" and os.path.exists(path):
            out = RecordStore.load(path)
            out.merge(self)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                for record in out._records.values():
                    f.write(record.to_json() + "\n")
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @staticmethod
    def load(path: str) -> "RecordStore":
        """Load a JSONL store, skipping corrupt/truncated lines.

        A torn tail line (crashed appender) or a corrupted record must not
        take the whole store down with it -- bad lines are dropped with one
        summary warning, mirroring the trace reader's unknown-record policy.
        """
        store = RecordStore()
        bad = 0
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    store.add(TuneRecord.from_json(line))
                except (ValueError, TypeError, RecordError):
                    bad += 1
        if bad:
            log.warning(
                "%s: skipped %d corrupt record line(s) while loading "
                "(torn append or incompatible format)", path, bad,
            )
        return store
