"""Tuning-record serialization (the equivalent of Ansor's log files).

A :class:`TuneRecord` captures everything needed to re-apply a tuning
result without re-searching: the operator's task signature, the layout
primitive sequences per tensor, and the loop schedule.  Records round-trip
through JSON, so a tuned model can be shipped, cached, or inspected.

Layout primitives serialize by constructor name + arguments; schedules by
their directive lists.  ``apply_record`` rebuilds ``(layouts, schedule)``
against a compatible operator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.compute import ComputeDef
from ..layout.layout import Layout
from ..layout.primitives import Fuse, Pad, Primitive, Reorder, Split, StoreAt, Unfold
from ..loops.schedule import LoopSchedule


class RecordError(ValueError):
    pass


# -- primitive (de)serialization -------------------------------------------------

def primitive_to_dict(prim: Primitive) -> Dict:
    if isinstance(prim, Split):
        return {"op": "split", "dim": prim.dim, "factors": list(prim.factors)}
    if isinstance(prim, Reorder):
        return {"op": "reorder", "perm": list(prim.perm)}
    if isinstance(prim, Fuse):
        return {"op": "fuse", "start": prim.start, "count": prim.count}
    if isinstance(prim, Unfold):
        return {
            "op": "unfold", "dim": prim.dim,
            "tile_size": prim.tile_size, "stride": prim.stride,
        }
    if isinstance(prim, Pad):
        return {"op": "pad", "dim": prim.dim, "before": prim.before, "after": prim.after}
    if isinstance(prim, StoreAt):
        return {"op": "store_at", "host": prim.host, "host_dim": prim.host_dim}
    raise RecordError(f"cannot serialize primitive {prim!r}")


def primitive_from_dict(d: Dict) -> Primitive:
    op = d.get("op")
    if op == "split":
        return Split(d["dim"], d["factors"])
    if op == "reorder":
        return Reorder(d["perm"])
    if op == "fuse":
        return Fuse(d["start"], d["count"])
    if op == "unfold":
        return Unfold(d["dim"], d["tile_size"], d["stride"])
    if op == "pad":
        return Pad(d["dim"], d["before"], d["after"])
    if op == "store_at":
        return StoreAt(d["host"], d["host_dim"])
    raise RecordError(f"unknown primitive kind {op!r}")


def layout_to_dict(layout: Layout) -> Dict:
    return {
        "shape": list(layout.logical_shape),
        "names": list(layout.logical_names),
        "primitives": [primitive_to_dict(p) for p in layout.primitives],
    }


def layout_from_dict(d: Dict) -> Layout:
    lay = Layout(d["shape"], d.get("names"))
    for pd in d["primitives"]:
        lay = lay._extend(primitive_from_dict(pd))
    return lay


# -- schedule (de)serialization ---------------------------------------------------

def schedule_to_dict(sched: LoopSchedule) -> Dict:
    return {
        "splits": [[var, list(factors)] for var, factors in sched.splits],
        "order": sched.order,
        "vectorize": sched.vectorize_var,
        "unroll": list(sched.unroll_vars),
        "parallel": list(sched.parallel_vars),
        "fuse_group": sched.fuse_group,
    }


def schedule_from_dict(d: Dict) -> LoopSchedule:
    sched = LoopSchedule()
    for var, factors in d.get("splits", []):
        sched.split(var, factors)
    if d.get("order") is not None:
        sched.reorder(d["order"])
    if d.get("vectorize"):
        sched.vectorize(d["vectorize"])
    for v in d.get("unroll", []):
        sched.unroll(v)
    for v in d.get("parallel", []):
        sched.parallel(v)
    if d.get("fuse_group"):
        sched.set_fuse_group(d["fuse_group"])
    return sched


# -- records ------------------------------------------------------------------------

@dataclass
class TuneRecord:
    """One tuned operator: task identity + layouts + schedule + metadata."""

    task: Tuple
    machine: str
    latency_s: float
    layouts: Dict[str, Dict]
    schedule: Optional[Dict]
    measurements: int = 0
    #: measurement-engine telemetry captured at record time (optional)
    telemetry: Optional[Dict] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "task": _jsonable(self.task),
                "machine": self.machine,
                "latency_s": self.latency_s,
                "layouts": self.layouts,
                "schedule": self.schedule,
                "measurements": self.measurements,
                "telemetry": self.telemetry,
            }
        )

    @staticmethod
    def from_json(text: str) -> "TuneRecord":
        d = json.loads(text)
        return TuneRecord(
            task=_tupled(d["task"]),
            machine=d["machine"],
            latency_s=d["latency_s"],
            layouts=d["layouts"],
            schedule=d.get("schedule"),
            measurements=d.get("measurements", 0),
            telemetry=d.get("telemetry"),
        )


def _jsonable(x):
    if isinstance(x, tuple):
        return ["__tuple__"] + [_jsonable(v) for v in x]
    if isinstance(x, list):
        return [_jsonable(v) for v in x]
    return x


def _tupled(x):
    if isinstance(x, list):
        if x and x[0] == "__tuple__":
            return tuple(_tupled(v) for v in x[1:])
        return [_tupled(v) for v in x]
    return x


def record_from_result(comp: ComputeDef, machine_name: str, result) -> TuneRecord:
    """Build a record from a :class:`~repro.tuning.explorer.TuneResult`."""
    from ..pipeline import task_signature

    return TuneRecord(
        task=task_signature(comp),
        machine=machine_name,
        latency_s=result.best_latency,
        layouts={
            name: layout_to_dict(lay) for name, lay in result.best_layouts.items()
        },
        schedule=(
            schedule_to_dict(result.best_schedule)
            if result.best_schedule is not None
            else None
        ),
        measurements=result.measurements,
        telemetry=getattr(result, "telemetry", None),
    )


def apply_record(
    record: TuneRecord, comp: ComputeDef
) -> Tuple[Dict[str, Layout], Optional[LoopSchedule]]:
    """Rebuild (layouts, schedule) for an operator matching the record.

    Tensor names are matched positionally (output first, then inputs), so a
    record taken from one instance applies to any identically-shaped clone.
    """
    from ..pipeline import task_signature

    if task_signature(comp) != record.task:
        raise RecordError(
            f"record was tuned for a different task than {comp.name}"
        )
    recorded_names = list(record.layouts)
    layouts: Dict[str, Layout] = {}
    # positional remap: the recorded dict preserves insertion order
    tensors = [comp.output] + comp.inputs
    by_shape: Dict[Tuple[int, ...], List[str]] = {}
    for name, lay_d in record.layouts.items():
        by_shape.setdefault(tuple(lay_d["shape"]), []).append(name)
    for t in tensors:
        bucket = by_shape.get(t.shape)
        if bucket:
            layouts[t.name] = layout_from_dict(record.layouts[bucket.pop(0)])
    schedule = (
        schedule_from_dict(record.schedule) if record.schedule is not None else None
    )
    return layouts, schedule


class RecordStore:
    """A simple JSONL store of tuning records keyed by (task, machine)."""

    def __init__(self):
        self._records: Dict[Tuple, TuneRecord] = {}

    def add(self, record: TuneRecord) -> None:
        key = (record.task, record.machine)
        existing = self._records.get(key)
        if existing is None or record.latency_s < existing.latency_s:
            self._records[key] = record

    def lookup(self, comp: ComputeDef, machine_name: str) -> Optional[TuneRecord]:
        from ..pipeline import task_signature

        return self._records.get((task_signature(comp), machine_name))

    def __len__(self) -> int:
        return len(self._records)

    def dump(self, path: str) -> None:
        with open(path, "w") as f:
            for record in self._records.values():
                f.write(record.to_json() + "\n")

    @staticmethod
    def load(path: str) -> "RecordStore":
        store = RecordStore()
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    store.add(TuneRecord.from_json(line))
        return store
