"""Table 2: profiled L1 data-cache misses -- layout tiling vs. loop tiling.

The paper loads a ``512 x T`` float32 block on a Cortex-A76 two ways:

1. elements stored *contiguously* (layout-tiling case) -- the hardware
   prefetcher turns every miss into ~4 fetched lines, so misses are about
   ``lines / 4``;
2. elements stored *row by row* inside a larger array (loop-tiling case,
   data placement unchanged) -- short rows defeat the sequential prefetcher
   and misses rise sharply.

Paper's measurements (A76, 64 B lines): tile 512x4 -> 32 vs 208 misses;
512x16 -> 96 vs 262; 512x64 -> 501 vs 785; 512x256 -> 2037 vs 2952.
We replay the same traces through the simulated A76-like L1.
"""

import pytest

from repro.machine.cache import Cache
from repro.machine.spec import CacheLevel

from conftest import print_table

TILES = [4, 16, 64, 256]
ROWS = 512
LINE = 64
FLOAT = 4
#: the larger array's row length for the loop-tiling case (elements); an
#: arbitrary feature-map width, deliberately not a multiple of the prefetch
#: block, as real widths are
BIG_ROW = 1040

PAPER = {4: (32, 208), 16: (96, 262), 64: (501, 785), 256: (2037, 2952)}


def a76_l1() -> Cache:
    return Cache(CacheLevel("L1", 64 * 1024, LINE, 4, 4, prefetch_lines=4))


def misses_contiguous(tile: int) -> int:
    """Function 1: the 512 x tile block stored contiguously."""
    cache = a76_l1()
    for elem in range(ROWS * tile):
        cache.access_addr(elem * FLOAT)
    return cache.stats.misses


def misses_strided(tile: int) -> int:
    """Function 2: same block, rows strided inside a larger row-major array."""
    cache = a76_l1()
    for r in range(ROWS):
        base = r * BIG_ROW * FLOAT
        for c in range(tile):
            cache.access_addr(base + c * FLOAT)
    return cache.stats.misses


def run_table2():
    rows = []
    results = {}
    for tile in TILES:
        m1 = misses_contiguous(tile)
        m2 = misses_strided(tile)
        predicted = (ROWS * tile) // (16 * 4)  # lines / prefetch degree
        paper1, paper2 = PAPER[tile]
        rows.append(
            [f"512 x {tile}", m1, predicted, m2, paper1, paper2]
        )
        results[tile] = (m1, m2, predicted)
    print_table(
        "Table 2: L1 misses -- layout tiling vs loop tiling",
        ["tile", "#mis (1st F, ours)", "pred.", "#mis (2nd F, ours)",
         "paper 1st", "paper 2nd"],
        rows,
    )
    return results


def test_table2_prefetch(benchmark):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    for tile, (m1, m2, predicted) in results.items():
        # layout tiling matches the lines/prefetch prediction exactly
        assert m1 == predicted, (tile, m1, predicted)
        # loop tiling misses strictly more, as in the paper
        assert m2 > m1, (tile, m1, m2)
    # the small-tile regime shows the big prefetch win (paper: 32 vs 208)
    m1_small, m2_small, _ = results[4]
    assert m2_small / m1_small >= 4
