"""Fig. 11: efficiency of layout-tuning search methods on the first C2D of
ResNet-18 -- Random sampling vs PPO without pretraining vs pretrained PPO.

Paper result: PPO-Pret reaches the best final performance and gets to a
given quality with ~2x less budget than random; pretraining transfers
knowledge from other workloads (paper: +online data efficiency).

We reproduce the *curves* (best-so-far vs budget) on a scaled variant of
the same operator (the paper's: N=1, I=3, H=W=230, O=64, K=7, stride 2).
"""

import math

import pytest

from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.tuning.baselines import tune_alt, tune_random_layout
from repro.tuning.pretrain import pretrain

from conftest import PAPER_SCALE, budget, fmt_ms, print_table

BUDGET = budget(96, 1000)
CHECKPOINTS = [BUDGET // 4, BUDGET // 2, 3 * BUDGET // 4, BUDGET]


def first_resnet_conv():
    if PAPER_SCALE:
        inp = Tensor("r18i", (1, 3, 230, 230))
        ker = Tensor("r18k", (64, 3, 7, 7))
    else:
        inp = Tensor("r18i", (1, 3, 118, 118))
        ker = Tensor("r18k", (32, 3, 7, 7))
    return conv2d(inp, ker, stride=2, name="r18conv1")


def best_at(history, checkpoint):
    best = math.inf
    for n, b in history:
        if n <= checkpoint:
            best = min(best, b)
    return best


def run_fig11(machine_name):
    machine = get_machine(machine_name)
    comp = first_resnet_conv()
    pre_state = pretrain(machine, budget_per_workload=budget(48, 256), seed=0)

    curves = {}
    for method, run in {
        "Random": lambda s: tune_random_layout(
            comp, machine, budget=BUDGET, joint_fraction=0.6, seed=s
        ),
        "PPO-woPret": lambda s: tune_alt(
            comp, machine, budget=BUDGET, joint_fraction=0.6, seed=s
        ),
        "PPO-Pret": lambda s: tune_alt(
            comp, machine, budget=BUDGET, joint_fraction=0.6, seed=s,
            pretrained=pre_state,
        ),
    }.items():
        histories = [run(seed).history for seed in (0, 1)]
        curves[method] = [
            min(best_at(h, cp) for h in histories) for cp in CHECKPOINTS
        ]

    rows = [
        [method] + [fmt_ms(v) for v in vals] for method, vals in curves.items()
    ]
    print_table(
        f"Fig.11 best-so-far latency (ms) vs budget on {machine_name}",
        ["method"] + [f"@{cp}" for cp in CHECKPOINTS],
        rows,
    )
    return curves


@pytest.mark.parametrize("machine_name", ["intel_cpu"])
def test_fig11_search_methods(benchmark, machine_name):
    curves = benchmark.pedantic(
        run_fig11, args=(machine_name,), rounds=1, iterations=1
    )
    final = {m: v[-1] for m, v in curves.items()}
    # every method converges to something finite and reasonable
    assert all(math.isfinite(v) for v in final.values())
    # the pretrained PPO is never the worst method at the end (paper: best)
    assert final["PPO-Pret"] <= max(final.values())
    # and it is competitive with random search at the half-budget mark
    assert curves["PPO-Pret"][1] <= curves["Random"][1] * 1.25
