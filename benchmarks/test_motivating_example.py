"""Section 2's motivating example (Fig. 2 / Fig. 3): the overlapped-tiling
layout ``N 2 2 O/ot H/2 W/2 ot`` lies *outside* the ``N O/ot H W ot``
(NeoCPU/NCHWc) tuning space and, in the paper, beats it by 32.4%.

We build the same layout class with the ``unfold`` primitive -- input tiles
of ``H/2 + KH - 1`` overlapping by ``KH - 1`` -- and compare against the
best NCHWc point under equal loop-tuning budget.  The reproduction checks
that (a) the exotic layout is *expressible and correct* through the layout
primitives alone, and (b) it is competitive with the packed-channel space
it extends (winning on the platforms/shapes where overlap pays).
"""

import numpy as np
import pytest

from repro.exec.reference import conv2d_ref
from repro.exec.single_op import run_compute
from repro.ir.tensor import Tensor
from repro.layout.presets import conv_scheme_layouts
from repro.layout.templates import template_for
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.tuning.baselines import _loop_only
from repro.tuning.task import TuningTask

from conftest import budget, fmt_ms, print_table

BUDGET = budget(80, 1000)


def motivating_conv():
    inp = Tensor("mi", (1, 32, 34, 34))
    ker = Tensor("mk", (32, 32, 3, 3))
    return conv2d(inp, ker, stride=1, name="motiv")


def overlapped_layouts(comp):
    """The Fig. 2 layout through the template: spatial tiles of H/2, W/2."""
    tpl = template_for(comp)
    oh = comp.output.shape[2]
    ow = comp.output.shape[3]
    cfg = tpl.space().default()
    cfg.update({
        "motiv.ht": oh // 2, "motiv.wt": ow // 2,
        "motiv.ot": 8, "motiv.it": 8, "motiv.kot": 8, "motiv.kit": 8,
        "motiv.co": 0,
    })
    return tpl.instantiate(cfg)


def test_overlapped_layout_is_correct():
    """The generated program (Fig. 3) computes the right convolution."""
    comp = motivating_conv()
    layouts = overlapped_layouts(comp)
    # physical input must carry the (H/2 + KH - 1) overlapped tiles
    in_lay = layouts[comp.inputs[0].name]
    assert any(".t" in d.name for d in in_lay.dims)
    assert in_lay.expansion_ratio() > 1.0
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 32, 34, 34))
    k = rng.standard_normal((32, 32, 3, 3))
    got = run_compute(comp, {"mi": x, "mk": k}, layouts)
    assert np.allclose(got, conv2d_ref(x, k, 1))


def run_comparison(machine_name):
    machine = get_machine(machine_name)
    comp = motivating_conv()
    results = {}
    for name, layouts in {
        "N O/ot H W ot (NCHWc)": conv_scheme_layouts(comp, "NCHWc", ot=8),
        "overlapped spatial tiling": overlapped_layouts(comp),
    }.items():
        task = TuningTask(comp, machine, budget=BUDGET)
        res = _loop_only(task, dict(layouts), BUDGET, 0,
                         use_cost_model=True, use_ppo_walk=False)
        results[name] = res.best_latency
    rows = [[n, fmt_ms(v)] for n, v in results.items()]
    print_table(
        f"Motivating example (Sec. 2) on {machine_name}",
        ["layout", "latency ms"],
        rows,
    )
    return results


@pytest.mark.parametrize("machine_name", ["arm_cpu"])
def test_motivating_example(benchmark, machine_name):
    results = benchmark.pedantic(
        run_comparison, args=(machine_name,), rounds=1, iterations=1
    )
    vals = list(results.values())
    # the overlapped layout lowers, tunes and lands in the same league as
    # the packed space it extends (the paper's point is expressiveness +
    # the tuner deciding per-workload which one wins)
    assert max(vals) <= 5 * min(vals)
