"""Fig. 10: end-to-end inference, ALT vs baselines and the ALT-OL / ALT-WP
ablations, on the paper's networks (scaled-down variants of ResNet-18,
MobileNet-V2, BERT and ResNet3D-18).

Expected qualitative outcomes (paper Section 7.2):

- ALT >= Ansor-like on every network (paper: 1.4-1.5x geomean);
- ALT-OL ~ Ansor (both are loop tuning on a fixed layout);
- ALT >= ALT-WP >= ALT-OL on nets where layouts get transformed (layout
  replication preserves fusion; without it, fusion conflicts cost).
"""

import math

import pytest

from repro.graph.models import bert, mobilenet_v2, resnet18, resnet3d18
from repro.machine.spec import get_machine
from repro.pipeline import CompileOptions, compile_graph

from conftest import PAPER_SCALE, budget, fmt_ms, print_table

TOTAL_BUDGET = budget(280, 20000)
MODES = ["vendor", "ansor", "alt", "alt-ol", "alt-wp"]


def networks():
    if PAPER_SCALE:
        return {
            "R18-b1": lambda: resnet18(batch=1),
            "MV2-b1": lambda: mobilenet_v2(batch=1),
            "BB-b1": lambda: bert(batch=1, seq=128, hidden=768, layers=12, heads=12, ff=3072),
            "R3D-b1": lambda: resnet3d18(batch=1),
        }
    return {
        "R18-b1": lambda: resnet18(batch=1, image=64, width=32, num_classes=100),
        "MV2-b1": lambda: mobilenet_v2(batch=1, image=64, width_mult=0.5, num_classes=100),
        "BT-b1": lambda: bert(batch=1, seq=32, hidden=128, layers=2, heads=2, ff=256,
                              name="bert_tiny"),
        "R3D-b1": lambda: resnet3d18(batch=1, frames=8, image=32, width=16,
                                     num_classes=50),
    }


def run_fig10(machine_name):
    machine = get_machine(machine_name)
    nets = networks()
    results = {}
    for net_name, build in nets.items():
        lats = {}
        extras = {}
        for mode in MODES:
            graph = build()
            model = compile_graph(
                graph, machine,
                CompileOptions(mode=mode, total_budget=TOTAL_BUDGET, seed=0),
            )
            lats[mode] = model.latency_s
            extras[mode] = (model.n_conversions, len(model.fuse_groups))
        results[net_name] = (lats, extras)

    rows = []
    for net_name, (lats, extras) in results.items():
        rows.append(
            [net_name]
            + [fmt_ms(lats[m]) for m in MODES]
            + [f"{lats['ansor'] / lats['alt']:.2f}x"]
        )
    print_table(
        f"Fig.10 end-to-end latency (ms) on {machine_name}",
        ["net"] + MODES + ["ansor/alt"],
        rows,
    )
    fusion_rows = [
        [net_name] + [f"{extras[m][1]}/{extras[m][0]}" for m in MODES]
        for net_name, (_, extras) in results.items()
    ]
    print_table(
        "fused-stages / inserted-conversions per mode",
        ["net"] + MODES,
        fusion_rows,
    )
    return results


@pytest.mark.parametrize("machine_name", ["intel_cpu"])
def test_fig10_end_to_end(benchmark, machine_name):
    results = benchmark.pedantic(
        run_fig10, args=(machine_name,), rounds=1, iterations=1
    )
    ratios = []
    for net_name, (lats, _) in results.items():
        assert all(math.isfinite(v) and v > 0 for v in lats.values()), net_name
        # ALT within noise of -- or better than -- the Ansor baseline
        assert lats["alt"] <= lats["ansor"] * 1.35, (net_name, lats)
        ratios.append(lats["ansor"] / lats["alt"])
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print(f"\nALT speedup over Ansor-like, geomean: {geomean:.2f}x")
    assert geomean >= 0.97
