"""Fig. 9: single-operator performance, ALT vs vendor / AutoTVM /
FlexTensor / Ansor, over the paper's nine layout-sensitive operators:
C2D, GRP, DIL, DEP, C3D, C1D, GMM, T2D, T3D.

The paper samples 10 random configurations per operator per platform and
normalizes by the worst latency of each test case; here we use one to two
representative configurations per operator (scaled shapes) and the same
normalization.  Expected qualitative outcome: ALT at the top (paper: 1.6x
over Ansor on Intel CPU geomean), Ansor second among auto-tuners,
FlexTensor noisy (no cost model), AutoTVM limited (restricted template).
"""

import math
import os

import pytest

from repro.ir.tensor import Tensor
from repro.lower.lower import lower_compute
from repro.machine.latency import estimate_program
from repro.machine.spec import get_machine
from repro.ir.nest import Program
from repro.ops.conv import conv1d, conv2d, conv3d, depthwise_conv2d
from repro.ops.gemm import gemm
from repro.ops.transposed import transposed_conv2d, transposed_conv3d
from repro.pipeline import default_schedule
from repro.tuning.baselines import (
    tune_alt,
    tune_ansor_like,
    tune_autotvm_like,
    tune_flextensor_like,
    vendor_library,
)

from conftest import budget, print_table

BUDGET = budget(72, 1000)
MACHINES = ["intel_cpu"] + (
    ["nvidia_gpu", "arm_cpu"] if os.environ.get("REPRO_BENCH_ALL_PLATFORMS") else []
)

TUNERS = {
    "vendor": lambda comp, m: vendor_library(comp, m),
    "autotvm": lambda comp, m: tune_autotvm_like(comp, m, budget=BUDGET),
    "flextensor": lambda comp, m: tune_flextensor_like(comp, m, budget=BUDGET),
    "ansor": lambda comp, m: tune_ansor_like(comp, m, budget=BUDGET),
    "alt": lambda comp, m: tune_alt(comp, m, budget=BUDGET),
}


def make_operators():
    """One representative configuration per operator family."""
    ops = {}
    ops["C2D"] = [conv2d(Tensor("c2i", (1, 64, 30, 30)), Tensor("c2k", (64, 64, 3, 3)),
                         name="C2D")]
    ops["GRP"] = [conv2d(Tensor("gri", (1, 64, 30, 30)), Tensor("grk", (64, 16, 3, 3)),
                         groups=4, name="GRP")]
    ops["DIL"] = [conv2d(Tensor("dii", (1, 32, 34, 34)), Tensor("dik", (64, 32, 3, 3)),
                         dilation=2, name="DIL")]
    ops["DEP"] = [depthwise_conv2d(Tensor("dei", (1, 96, 34, 34)), Tensor("dek", (96, 3, 3)),
                                   name="DEP")]
    ops["C3D"] = [conv3d(Tensor("c3i", (1, 16, 10, 18, 18)), Tensor("c3k", (32, 16, 3, 3, 3)),
                         name="C3D")]
    ops["C1D"] = [conv1d(Tensor("c1i", (1, 64, 130)), Tensor("c1k", (128, 64, 3)),
                         name="C1D")]
    ops["GMM"] = [gemm(Tensor("gma", (256, 256)), Tensor("gmb", (256, 256)), name="GMM")]
    ops["T2D"] = transposed_conv2d(
        Tensor("t2i", (1, 32, 16, 16)), Tensor("t2k", (32, 32, 4, 4)), stride=2,
        pad=1, name="T2D",
    )
    ops["T3D"] = transposed_conv3d(
        Tensor("t3i", (1, 16, 6, 8, 8)), Tensor("t3k", (16, 16, 2, 4, 4)), stride=2,
        name="T3D",
    )
    return ops


def composite_latency(comps, machine, tuner):
    """Tune the complex operator of a composite; price the whole chain."""
    stages = []
    tuned_lat = None
    for comp in comps:
        if comp.is_complex:
            res = tuner(comp, machine)
            tuned_lat = res.best_latency
            if res.best_schedule is not None:
                stages.append(
                    lower_compute(comp, res.best_layouts, res.best_schedule)
                )
                continue
        bare = lower_compute(comp, {})
        stages.append(lower_compute(comp, {}, default_schedule(bare, machine)))
    total = estimate_program(Program(stages), machine)
    # the tuned latency includes the expansion penalty; use the larger of
    # the two so composites cannot under-report
    return max(total, tuned_lat or 0.0)


def run_fig9(machine_name):
    machine = get_machine(machine_name)
    ops = make_operators()
    results = {}
    for op_name, comps in ops.items():
        lats = {}
        for tuner_name, tuner in TUNERS.items():
            lats[tuner_name] = composite_latency(comps, machine, tuner)
        results[op_name] = lats

    rows = []
    norm_scores = {t: [] for t in TUNERS}
    for op_name, lats in results.items():
        worst = max(lats.values())
        rows.append(
            [op_name] + [f"{worst / lats[t]:.2f}" for t in TUNERS]
        )
        for t in TUNERS:
            norm_scores[t].append(worst / lats[t])
    geo = {
        t: math.exp(sum(math.log(x) for x in xs) / len(xs))
        for t, xs in norm_scores.items()
    }
    rows.append(["GEOMEAN"] + [f"{geo[t]:.2f}" for t in TUNERS])
    print_table(
        f"Fig.9 single-operator normalized perf on {machine_name} "
        "(higher = better, worst case = 1.0)",
        ["op"] + list(TUNERS),
        rows,
    )
    return results, geo


@pytest.mark.parametrize("machine_name", MACHINES)
def test_fig9_single_operator(benchmark, machine_name):
    results, geo = benchmark.pedantic(
        run_fig9, args=(machine_name,), rounds=1, iterations=1
    )
    # ALT must lead the geomean (the paper's headline single-op claim)
    best_tuner = max(geo, key=geo.get)
    assert geo["alt"] >= geo["ansor"] * 0.97, geo
    assert geo["alt"] >= geo["autotvm"] * 0.97, geo
    # and must never be catastrophically worse on any single operator
    for op_name, lats in results.items():
        assert lats["alt"] <= 2.0 * min(lats.values()), (op_name, lats)
