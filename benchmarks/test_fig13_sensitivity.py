"""Fig. 13: parameter sensitivity -- search-space size vs budget.

Three settings, as in Section 7.3.3:

1. two-level layout-tiling templates at the base budget;
2. two-level templates at 1.5x the budget;
3. one-level templates at the base budget (the default).

Paper result: at equal budget, one-level wins (~15% better than two-level
at 2e4); extra budget narrows the gap (two-level at 3e4 within ~6%); given
even more budget two-level eventually wins since one-level is a subspace.
The reproduction checks the trade-off direction on a small CNN.
"""

import math

import pytest

from repro.graph.builder import GraphBuilder
from repro.machine.spec import get_machine
from repro.pipeline import CompileOptions, compile_graph

from conftest import budget, fmt_ms, print_table

BASE_BUDGET = budget(300, 20000)


def small_net():
    b = GraphBuilder("sens_net")
    x = b.input((1, 16, 34, 34))
    x = b.conv_bn_act(x, 32, 3)
    x = b.conv_bn_act(x, 32, 3, stride=2)
    x = b.conv_bn_act(x, 64, 3)
    x = b.global_avg_pool(x)
    x = b.dense(x, 10)
    return b.build()


def run_fig13(machine_name):
    machine = get_machine(machine_name)
    settings = {
        "two-level @1.0x": dict(levels=2, total_budget=BASE_BUDGET),
        "two-level @1.5x": dict(levels=2, total_budget=int(BASE_BUDGET * 1.5)),
        "one-level @1.0x": dict(levels=1, total_budget=BASE_BUDGET),
    }
    lats = {}
    spaces = {}
    for name, kw in settings.items():
        model = compile_graph(
            small_net(), machine, CompileOptions(mode="alt", seed=0, **kw)
        )
        lats[name] = model.latency_s
        # record one task's layout-space size for the report
        from repro.layout.templates import template_for

        rep = next(iter(model.task_results.values()))
        spaces[name] = kw["levels"]
    baseline = lats["one-level @1.0x"]
    rows = [
        [name, fmt_ms(lat), f"{baseline / lat:.2f}x"]
        for name, lat in lats.items()
    ]
    print_table(
        f"Fig.13 template sensitivity on {machine_name} "
        "(speedup relative to one-level @1.0x)",
        ["setting", "latency (ms)", "vs one-level"],
        rows,
    )
    return lats


@pytest.mark.parametrize("machine_name", ["intel_cpu"])
def test_fig13_sensitivity(benchmark, machine_name):
    lats = benchmark.pedantic(
        run_fig13, args=(machine_name,), rounds=1, iterations=1
    )
    one = lats["one-level @1.0x"]
    two = lats["two-level @1.0x"]
    two_big = lats["two-level @1.5x"]
    assert all(math.isfinite(v) for v in lats.values())
    # extra budget must not hurt the two-level space
    assert two_big <= two * 1.05
    # at equal budget the leaner one-level space is competitive or better
    # (the paper's 15% observation); allow wide tolerance for small budgets
    assert one <= two * 1.3
