"""Ablations of the design choices DESIGN.md calls out.

Not a single paper figure, but the knobs the paper discusses and the repo
exposes:

- **cost model on/off** (Section 5.2.3 vs FlexTensor's no-model design):
  with the model, only the predicted top-k of each 64-candidate batch is
  measured, so the same budget covers ~8x more candidates;
- **searcher class** (Section 5.2: PPO vs heuristic GA vs random) on the
  *joint* space, where layout changes reconstruct the loop space and
  invalidate population knowledge;
- **layout propagation mode** (Section 4.2): full ALT vs ALT-WP
  (no replication -> fusion conflicts) vs conversion-only.
"""

import math

import pytest

from repro.graph.builder import GraphBuilder
from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.pipeline import CompileOptions, compile_graph
from repro.tuning.baselines import tune_alt, tune_random_layout
from repro.tuning.genetic import tune_genetic

from conftest import budget, fmt_ms, print_table

BUDGET = budget(96, 1000)


def workload():
    inp = Tensor("abi", (1, 32, 30, 30))
    ker = Tensor("abk", (64, 32, 3, 3))
    return conv2d(inp, ker, name="ablate")


def run_cost_model_ablation(machine):
    rows = []
    out = {}
    for label, use_model in (("with cost model", True), ("without", False)):
        lats = [
            tune_alt(workload(), machine, budget=BUDGET, seed=s,
                     use_cost_model=use_model).best_latency
            for s in (0, 1)
        ]
        out[label] = min(lats)
        rows.append([label, fmt_ms(min(lats)), fmt_ms(max(lats))])
    print_table("ablation: cost model", ["setting", "best ms", "worst seed ms"], rows)
    return out


def run_searcher_ablation(machine):
    rows = []
    out = {}
    for label, fn in (
        ("PPO (ALT)", lambda s: tune_alt(workload(), machine, budget=BUDGET, seed=s)),
        ("genetic", lambda s: tune_genetic(workload(), machine, budget=BUDGET, seed=s)),
        ("random", lambda s: tune_random_layout(workload(), machine, budget=BUDGET,
                                                joint_fraction=0.4, seed=s)),
    ):
        lats = [fn(s).best_latency for s in (0, 1)]
        out[label] = min(lats)
        rows.append([label, fmt_ms(min(lats)), fmt_ms(max(lats))])
    print_table("ablation: joint-space searcher", ["searcher", "best ms", "worst seed ms"], rows)
    return out


def run_propagation_ablation(machine):
    def net():
        b = GraphBuilder("prop_net")
        x = b.input((1, 16, 18, 18))
        x = b.conv_bn_act(x, 32, 3)
        x = b.conv_bn_act(x, 32, 3)
        x = b.global_avg_pool(x)
        return b.build()

    rows = []
    out = {}
    for mode in ("alt", "alt-wp", "alt-ol"):
        model = compile_graph(
            net(), machine, CompileOptions(mode=mode, total_budget=BUDGET, seed=0)
        )
        out[mode] = (model.latency_s, len(model.fuse_groups))
        rows.append([mode, fmt_ms(model.latency_s), len(model.fuse_groups)])
    print_table("ablation: propagation mode", ["mode", "latency ms", "fused stages"], rows)
    return out


def test_ablations(benchmark):
    machine = get_machine("intel_cpu")

    def run():
        return (
            run_cost_model_ablation(machine),
            run_searcher_ablation(machine),
            run_propagation_ablation(machine),
        )

    cost_model, searchers, propagation = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # the cost model never hurts the achievable quality materially
    assert cost_model["with cost model"] <= cost_model["without"] * 1.5
    # PPO is competitive with GA and random on the joint space
    assert searchers["PPO (ALT)"] <= 1.5 * min(searchers.values())
    # replication preserves at least as much fusion as its absence
    assert propagation["alt"][1] >= propagation["alt-wp"][1]
    assert all(math.isfinite(v[0]) for v in propagation.values())
