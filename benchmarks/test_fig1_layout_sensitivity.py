"""Fig. 1: operator latency under different *predetermined* data layouts.

The paper's motivation experiment: loop-tune a C2D under NOHW / NHWO / HWON
and a GMM under KN / NK / NKn, per configuration and platform.  The headline
numbers to reproduce qualitatively:

- the best layout beats the worst substantially (paper: 55.9% avg C2D
  improvement on Intel CPU, 87.2% on GPU; 20.6% / 24.8% for GMM);
- *which* layout wins flips across operator configurations and platforms,
  so no fixed choice is safe -- the argument for joint tuning.
"""

import math

import pytest

from repro.ir.tensor import Tensor
from repro.layout.presets import fixed_scheme_layouts
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.ops.gemm import gemm
from repro.tuning.baselines import _loop_only
from repro.tuning.task import TuningTask

from conftest import budget, fmt_ms, print_table

BUDGET = budget(36, 1000)

C2D_CONFIGS = [
    # (batch, in_ch, hw, out_ch, kernel, stride)
    (1, 3, 66, 32, 3, 1),
    (1, 16, 34, 64, 3, 1),
    (1, 64, 30, 64, 3, 1),
    (1, 32, 30, 128, 3, 2),
    (16, 64, 16, 64, 1, 1),
]

GMM_CONFIGS = [(64, 64, 64), (128, 256, 128), (512, 512, 512)]


def tune_fixed(comp, machine, scheme, seed=0):
    task = TuningTask(comp, machine, budget=BUDGET)
    layouts = fixed_scheme_layouts(comp, scheme)
    res = _loop_only(task, layouts, BUDGET, seed, use_cost_model=True, use_ppo_walk=False)
    return res.best_latency


def run_c2d(machine_name):
    machine = get_machine(machine_name)
    rows = []
    improvements = []
    winners = set()
    for i, (n, c, hw, o, k, s) in enumerate(C2D_CONFIGS):
        inp = Tensor(f"I{i}", (n, c, hw, hw))
        ker = Tensor(f"K{i}", (o, c, k, k))
        comp = conv2d(inp, ker, stride=s, name=f"c2d{i}")
        lats = {
            scheme: tune_fixed(comp, machine, scheme)
            for scheme in ("NOHW", "NHWO", "HWON")
        }
        best = min(lats, key=lats.get)
        worst = max(lats.values())
        winners.add(best)
        improvements.append(worst / lats[best] - 1.0)
        rows.append(
            [f"cfg{i}", fmt_ms(lats["NOHW"]), fmt_ms(lats["NHWO"]),
             fmt_ms(lats["HWON"]), best]
        )
    print_table(
        f"Fig.1 C2D layout sensitivity on {machine_name} (latency ms)",
        ["config", "NOHW", "NHWO", "HWON", "best"],
        rows,
    )
    avg_improvement = sum(improvements) / len(improvements)
    print(f"avg best-over-worst improvement: {avg_improvement * 100:.1f}%")
    return avg_improvement, winners


def run_gmm(machine_name):
    machine = get_machine(machine_name)
    rows = []
    improvements = []
    for i, (m, k, n) in enumerate(GMM_CONFIGS):
        a = Tensor(f"A{i}", (m, k))
        b = Tensor(f"B{i}", (k, n))
        comp = gemm(a, b, name=f"gmm{i}")
        lats = {
            scheme: tune_fixed(comp, machine, scheme)
            for scheme in ("KN", "NK", "NKn")
        }
        best = min(lats, key=lats.get)
        improvements.append(max(lats.values()) / lats[best] - 1.0)
        rows.append(
            [f"{m}x{k}x{n}", fmt_ms(lats["KN"]), fmt_ms(lats["NK"]),
             fmt_ms(lats["NKn"]), best]
        )
    print_table(
        f"Fig.1 GMM layout sensitivity on {machine_name} (latency ms)",
        ["M x K x N", "KN", "NK", "NKn", "best"],
        rows,
    )
    avg = sum(improvements) / len(improvements)
    print(f"avg best-over-worst improvement: {avg * 100:.1f}%")
    return avg


@pytest.mark.parametrize("machine_name", ["intel_cpu"])
def test_fig1_c2d(benchmark, machine_name):
    avg, winners = benchmark.pedantic(
        run_c2d, args=(machine_name,), rounds=1, iterations=1
    )
    # layout choice must matter: best beats worst by a sizable margin
    assert avg > 0.15, f"layouts indistinguishable on {machine_name}"


@pytest.mark.parametrize("machine_name", ["nvidia_gpu"])
def test_fig1_gmm(benchmark, machine_name):
    avg = benchmark.pedantic(run_gmm, args=(machine_name,), rounds=1, iterations=1)
    assert avg > 0.05, f"GMM layouts indistinguishable on {machine_name}"
