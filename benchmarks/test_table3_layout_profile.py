"""Table 3: trace-profiled counters for the first ResNet-18 layer under
several layouts -- ``padding -> C2D(7x7, stride 2) -> bias -> ReLU``.

The paper profiles #instructions, L1 loads/misses/stores and latency for
NHWO&rsIO, NOHW&OIrs, NCHWc (``N O/ot H W ot``) and the searched
``N H/ht W/wt O/ot ht wt ot`` layout.  Its findings, which we reproduce in
shape (scaled to keep the trace simulation fast):

- channel-last layouts (everything except NOHW) vectorize and reuse input
  values, so they execute *fewer instructions* than NOHW;
- the searched spatially-tiled layout has the *fewest L1 misses* (paper:
  ~2% miss rate) thanks to contiguous intra-tile storage, and the lowest
  latency.
"""

import math

import pytest

from repro.graph.builder import GraphBuilder
from repro.layout.layout import Layout
from repro.layout.presets import conv_scheme_layouts
from repro.layout.propagation import PropagationEngine
from repro.layout.templates import template_for
from repro.lower.lower import lower_compute
from repro.machine.latency import estimate_program, estimate_stage
from repro.machine.spec import get_machine
from repro.ir.nest import Program
from repro.machine.trace import profile_program
from repro.pipeline import default_schedule
from repro.tuning.baselines import _loop_only, tune_alt
from repro.tuning.task import TuningTask

from conftest import budget, print_table

BUDGET = budget(100, 1000)
# scaled: paper uses I=3, H=W=230, O=64, K=7x7, stride 2
IN_SHAPE = (1, 3, 114, 114)
OUT_CH = 8


def first_layer():
    b = GraphBuilder("r18_layer1")
    x = b.input(IN_SHAPE)
    x = b.conv2d(x, OUT_CH, 7, stride=2, pad=3)
    x = b.bias_add(x, "channel")
    x = b.relu(x)
    return b.build()


def assemble(machine, conv_layouts, tuned_schedule=None):
    """Assign conv layouts, propagate, lower the whole 4-op chain."""
    g = first_layer()
    conv = next(n for n in g.nodes if "conv" in n.tags)
    engine = PropagationEngine(g)
    remapped = {}
    for name, lay in conv_layouts.items():
        remapped[name] = lay
    engine.assign_operator_layouts(conv, remapped)
    stages = []
    for node in g.nodes:
        sched = None
        if node is conv and tuned_schedule is not None:
            sched = tuned_schedule
        if sched is None:
            bare = lower_compute(node, engine.state.layouts)
            sched = default_schedule(bare, machine)
        stages.append(lower_compute(node, engine.state.layouts, sched))
    return g, Program(stages)


def layout_settings(machine):
    g = first_layer()
    conv = next(n for n in g.nodes if "conv" in n.tags)

    def keyed(preset):
        return {
            conv.output.name: preset[conv.output.name],
            conv.inputs[0].name: preset[conv.inputs[0].name],
            conv.inputs[1].name: preset[conv.inputs[1].name],
        }

    settings = {
        "NHWO & rsIO": (keyed(conv_scheme_layouts(conv, "NHWO")), None),
        "NOHW & OIrs": (keyed(conv_scheme_layouts(conv, "NOHW")), None),
        "N O/ot H W ot": (keyed(conv_scheme_layouts(conv, "NCHWc", ot=8)), None),
    }
    # searched: joint-tune the conv, keep its layouts and schedule
    res = tune_alt(conv, machine, budget=BUDGET, seed=0)
    searched = {
        k: v.replay_onto(Layout(v.logical_shape)) for k, v in res.best_layouts.items()
    }
    settings["searched (tiled)"] = (searched, res.best_schedule)
    # loop-tune the fixed settings so the comparison is fair
    for name in ("NHWO & rsIO", "NOHW & OIrs", "N O/ot H W ot"):
        lays, _ = settings[name]
        task = TuningTask(conv, machine, budget=BUDGET // 2)
        r = _loop_only(task, lays, BUDGET // 2, 0, use_cost_model=True,
                       use_ppo_walk=False)
        settings[name] = (lays, r.best_schedule)
    return settings


def run_table3(machine_name):
    machine = get_machine(machine_name)
    settings = layout_settings(machine)
    rows = []
    metrics = {}
    for name, (lays, sched) in settings.items():
        graph, program = assemble(machine, lays, sched)
        conv_stage = next(s for s in program.stages if "conv" in s.name)
        conv_lat = machine.cycles_to_seconds(
            estimate_stage(conv_stage, machine).total_cycles
        )
        profs = profile_program(program, machine)
        total_inst = sum(
            estimate_stage(s, machine).instructions for s in program.stages
        )
        l1_loads = sum(p.l1_loads for p in profs.values())
        l1_miss = sum(p.l1_misses for p in profs.values())
        stores = sum(p.stores for p in profs.values())
        lat = estimate_program(program, machine)
        metrics[name] = dict(
            inst=total_inst, loads=l1_loads, miss=l1_miss, stores=stores,
            lat=lat, conv_lat=conv_lat,
        )
        rows.append([
            name,
            f"{total_inst / 1e6:.1f}",
            f"{l1_loads / 1e6:.2f}",
            f"{l1_miss / 1e3:.1f}",
            f"{stores / 1e6:.2f}",
            f"{lat * 1e3:.4f}",
            f"{conv_lat * 1e3:.4f}",
        ])
    print_table(
        f"Table 3 (scaled): layout profile on {machine_name}",
        ["layout", "#inst (1e6)", "#L1-lds (1e6)", "#L1-mis (1e3)",
         "#L1-sts (1e6)", "chain ms", "conv ms"],
        rows,
    )
    return metrics


@pytest.mark.parametrize("machine_name", ["intel_cpu"])
def test_table3_layout_profile(benchmark, machine_name):
    metrics = benchmark.pedantic(
        run_table3, args=(machine_name,), rounds=1, iterations=1
    )
    nohw = metrics["NOHW & OIrs"]
    searched = metrics["searched (tiled)"]
    # channel-last layouts vectorize: fewer dynamic instructions than NOHW
    assert metrics["NHWO & rsIO"]["inst"] < nohw["inst"]
    # the searched layout wins on the operator it was tuned for (the C2D
    # stage -- paper Table 3 profiles this layer for the conv's benefit);
    # whole-chain latency at this tiny scale is dominated by the pad/bias
    # stages and is reported in the table for context only
    best_conv = min(m["conv_lat"] for m in metrics.values())
    # 15% tolerance: at the reduced search budget the joint tuner's anchor
    # assessment is a handful of measurements, so near-ties can break for
    # either channel-last variant
    assert searched["conv_lat"] <= best_conv * 1.15, metrics
