"""Shared helpers for the reproduction benchmarks.

Every file regenerates one table or figure of the paper.  Shapes and search
budgets are scaled down so the whole suite runs in minutes on a laptop; set
``REPRO_BENCH_SCALE=paper`` to use the paper's budgets (hours).  Absolute
latencies come from the simulated machine model, so only *relative* numbers
(who wins, by what factor) are comparable with the paper -- see
EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import pytest

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper"


def budget(small: int, paper: int) -> int:
    return paper if PAPER_SCALE else small


def print_table(title: str, header: Sequence[str], rows: List[Sequence]) -> None:
    """Uniform plain-text tables for the benchmark logs."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.4f}"


@pytest.fixture
def table():
    return print_table
