"""Fig. 12: layout propagation overhead between two complex operators.

Subgraph: ``pad -> C2D(3x3) -> C2D(1x1)``.  Three strategies:

- **ALT-FP**: tune the 3x3 conv jointly, *forward-propagate* its output
  layout onto the 1x1 conv's input (no conversion; the 1x1 conv consumes a
  layout chosen for someone else);
- **ALT-BP**: tune the 1x1 conv jointly, *backward-propagate* its input
  layout onto the 3x3 conv's output (the 3x3 conv must produce it);
- **ALT**: tune each conv independently and insert a conversion operator
  between them (Algorithm 1's constraint 2).

Paper result: ALT wins -- the best layout of one conv is sub-optimal for
the other, and the conversion overhead is tiny compared to the gain (2 us
GPU / 8 us CPU in the paper).  Ansor (fixed layouts) is the reference.
"""

import math

import pytest

from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.lower.lower import lower_compute
from repro.machine.latency import estimate_stage
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.ops.transform import layout_conversion
from repro.tuning.baselines import _loop_only, tune_alt, tune_ansor_like
from repro.tuning.task import TuningTask

from conftest import budget, print_table

BUDGET = budget(96, 1000)

SUBGRAPHS = {
    # (channels in, channels mid, channels out, height/width)
    "Sg#1": (64, 64, 64, 9),    # paper: 512ch, hw 7 (+pad 1 -> 9)
    "Sg#2": (64, 64, 128, 16),  # paper: 512ch -> 2048, hw 14
}


def make_convs(tag, c_in, c_mid, c_out, hw):
    inp = Tensor(f"{tag}.x", (1, c_in, hw, hw))
    k1 = Tensor(f"{tag}.k1", (c_mid, c_in, 3, 3))
    conv1 = conv2d(inp, k1, name=f"{tag}.conv3x3")
    k2 = Tensor(f"{tag}.k2", (c_out, c_mid, 1, 1))
    conv2 = conv2d(conv1.output, k2, name=f"{tag}.conv1x1")
    return conv1, conv2


def stage_latency(machine, comp, layouts, schedule):
    stage = lower_compute(comp, layouts, schedule)
    return machine.cycles_to_seconds(estimate_stage(stage, machine).total_cycles)


def loop_tune_with(machine, comp, layouts, seed=0):
    task = TuningTask(comp, machine, budget=BUDGET // 2)
    res = _loop_only(task, layouts, BUDGET // 2, seed,
                     use_cost_model=True, use_ppo_walk=False)
    return res


def conversion_latency(machine, tensor, src_layout, dst_layout):
    comp = layout_conversion(tensor, name=f"convert.{tensor.name}")
    layouts = {
        tensor.name: src_layout.replay_onto(Layout(tensor.shape)),
        comp.output.name: dst_layout.replay_onto(Layout(comp.output.shape)),
    }
    from repro.pipeline import default_schedule

    bare = lower_compute(comp, layouts)
    sched = default_schedule(bare, machine)
    return stage_latency(machine, comp, layouts, sched)


def run_fig12(machine_name):
    machine = get_machine(machine_name)
    rows = []
    summary = {}
    for tag, (c_in, c_mid, c_out, hw) in SUBGRAPHS.items():
        # --- reference: Ansor with fixed layouts -------------------------------
        conv1, conv2 = make_convs(tag + ".ansor", c_in, c_mid, c_out, hw)
        a1 = tune_ansor_like(conv1, machine, budget=BUDGET // 2).best_latency
        a2 = tune_ansor_like(conv2, machine, budget=BUDGET // 2).best_latency

        # --- independent joint tuning of both convs -----------------------------
        conv1, conv2 = make_convs(tag, c_in, c_mid, c_out, hw)
        r1 = tune_alt(conv1, machine, budget=BUDGET)
        r2 = tune_alt(conv2, machine, budget=BUDGET)
        lat1 = r1.best_latency
        lat2 = r2.best_latency
        out1_lay = r1.best_layouts.get(conv1.output.name, Layout(conv1.output.shape))
        in2_lay = r2.best_layouts.get(conv2.inputs[0].name, Layout(conv2.inputs[0].shape))

        # ALT: conversion operator between the two
        conv_lat = conversion_latency(machine, conv1.output, out1_lay, in2_lay)
        alt_total = lat1 + conv_lat + lat2

        # ALT-FP: conv2 consumes conv1's output layout directly
        fp_in = out1_lay.replay_onto(Layout(conv2.inputs[0].shape))
        fp_res = loop_tune_with(machine, conv2, {conv2.inputs[0].name: fp_in})
        fp_total = lat1 + fp_res.best_latency

        # ALT-BP: conv1 must produce conv2's tuned input layout
        if in2_lay.has_nontrivial_advanced():
            # an unfold input layout cannot be an output layout; fall back
            # to the basic part (everything except the advanced primitives)
            bp_out = Layout(conv1.output.shape)
        else:
            bp_out = in2_lay.replay_onto(Layout(conv1.output.shape))
        bp_res = loop_tune_with(machine, conv1, {conv1.output.name: bp_out})
        bp_total = bp_res.best_latency + lat2

        rows.append([
            f"{tag}-{machine_name}",
            f"{(a1 + a2) * 1e6:.1f}",
            f"{fp_total * 1e6:.1f}",
            f"{bp_total * 1e6:.1f}",
            f"{alt_total * 1e6:.1f}",
            f"{conv_lat * 1e6:.2f}",
        ])
        summary[tag] = dict(
            ansor=a1 + a2, fp=fp_total, bp=bp_total, alt=alt_total,
            conversion=conv_lat,
        )
    print_table(
        f"Fig.12 propagation overhead on {machine_name} (microseconds)",
        ["subgraph", "Ansor", "ALT-FP", "ALT-BP", "ALT", "conversion op"],
        rows,
    )
    return summary


@pytest.mark.parametrize("machine_name", ["intel_cpu"])
def test_fig12_propagation_overhead(benchmark, machine_name):
    summary = benchmark.pedantic(
        run_fig12, args=(machine_name,), rounds=1, iterations=1
    )
    ratios_sharing = []
    ratios_ansor = []
    for tag, vals in summary.items():
        # conversion overhead is small relative to the whole subgraph
        assert vals["conversion"] < 0.5 * vals["alt"], (tag, vals)
        ratios_sharing.append(vals["alt"] / min(vals["fp"], vals["bp"]))
        ratios_ansor.append(vals["alt"] / vals["ansor"])
    # on average, independent tuning + conversion keeps up with forced
    # layout sharing (the paper's point: conversions are cheap enough that
    # per-operator layout freedom pays) and with the fixed-layout reference.
    # At these scaled shapes the conversion is relatively larger than at the
    # paper's 512-channel subgraphs, hence the generous bound.
    assert sum(ratios_sharing) / len(ratios_sharing) <= 2.2, summary
    assert sum(ratios_ansor) / len(ratios_ansor) <= 1.4, summary
