"""End-to-end behaviour of the tuners (ALT + baselines)."""

import math

import pytest

from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d, depthwise_conv2d
from repro.ops.gemm import gemm
from repro.tuning.baselines import (
    tune_alt,
    tune_alt_ol,
    tune_ansor_like,
    tune_autotvm_like,
    tune_flextensor_like,
    tune_random_layout,
    vendor_library,
)
from repro.tuning.pretrain import pretrain

BUDGET = 64


@pytest.fixture(scope="module")
def machine():
    return get_machine("intel_cpu")


@pytest.fixture(scope="module")
def conv_op():
    inp = Tensor("I", (1, 16, 20, 20))
    ker = Tensor("K", (16, 16, 3, 3))
    return conv2d(inp, ker, name="c")


@pytest.mark.parametrize(
    "tuner",
    [tune_alt, tune_alt_ol, tune_ansor_like, tune_autotvm_like,
     tune_flextensor_like, tune_random_layout],
)
def test_tuner_returns_finite_result(tuner, machine, conv_op):
    res = tuner(conv_op, machine, budget=BUDGET, seed=0)
    assert math.isfinite(res.best_latency) and res.best_latency > 0
    assert res.measurements <= BUDGET
    assert res.best_schedule is not None
    bests = [b for _, b in res.history]
    assert all(x >= y for x, y in zip(bests, bests[1:]))


def test_vendor_library(machine, conv_op):
    res = vendor_library(conv_op, machine)
    assert math.isfinite(res.best_latency)
    assert res.measurements <= 64


def test_alt_layouts_are_recorded(machine, conv_op):
    res = tune_alt(conv_op, machine, budget=BUDGET, seed=0)
    assert res.best_layouts  # layout assignments for the conv tensors
    assert any(name == conv_op.output.name for name in res.best_layouts)


def test_alt_beats_or_matches_fixed_layout_baseline(machine):
    """ALT's space contains the baselines' layouts, so with the same budget
    it must land within a small factor of Ansor (and usually at or below)."""
    inp = Tensor("I2", (1, 32, 30, 30))
    ker = Tensor("K2", (32, 32, 3, 3))
    comp = conv2d(inp, ker, name="c2")
    alt = tune_alt(comp, machine, budget=150, seed=0).best_latency
    ansor = tune_ansor_like(comp, machine, budget=150, seed=0).best_latency
    assert alt <= ansor * 1.15


def test_gemm_tuning(machine):
    a = Tensor("A", (64, 32))
    b = Tensor("B", (32, 48))
    comp = gemm(a, b, "g")
    res = tune_alt(comp, machine, budget=BUDGET, seed=0)
    assert math.isfinite(res.best_latency)


def test_depthwise_tuning(machine):
    inp = Tensor("I3", (1, 16, 18, 18))
    ker = Tensor("K3", (16, 3, 3))
    comp = depthwise_conv2d(inp, ker, name="d")
    res = tune_alt(comp, machine, budget=BUDGET, seed=0)
    assert math.isfinite(res.best_latency)


def test_random_layout_searcher(machine, conv_op):
    res = tune_random_layout(conv_op, machine, budget=BUDGET, joint_fraction=0.5, seed=1)
    assert math.isfinite(res.best_latency)


def test_pretrain_produces_loadable_state(machine, conv_op):
    state = pretrain(machine, budget_per_workload=24, seed=0)
    assert "layout" in state and "loop" in state
    res = tune_alt(conv_op, machine, budget=BUDGET, seed=0, pretrained=state)
    assert math.isfinite(res.best_latency)


def test_gpu_and_arm_targets(conv_op):
    for name in ("nvidia_gpu", "arm_cpu"):
        res = tune_alt(conv_op, get_machine(name), budget=48, seed=0)
        assert math.isfinite(res.best_latency), name
