"""Compute definitions and the operator library vs. numpy references."""

import numpy as np
import pytest

from repro.exec.reference import (
    avg_pool2d_ref,
    conv1d_ref,
    conv2d_ref,
    conv3d_ref,
    depthwise_conv2d_ref,
    evaluate_compute,
    layer_norm_last_ref,
    max_pool2d_ref,
    pad_spatial_ref,
    softmax_last_ref,
    zero_stuff_ref,
)
from repro.ir.compute import Access, Axis, ComputeDef, ConstF
from repro.ir.expr import Var
from repro.ir.tensor import Tensor
from repro.ops import elementwise as ew
from repro.ops.conv import conv1d, conv2d, conv3d, depthwise_conv2d
from repro.ops.gemm import batch_gemm, dense, gemm
from repro.ops.pool import avg_pool2d, global_avg_pool, max_pool2d
from repro.ops.reduce import layer_norm_last, softmax_last
from repro.ops.transform import layout_conversion, pad_spatial, zero_stuff

rng = np.random.default_rng(42)


def run_chain(comps, inputs):
    values = dict(inputs)
    for comp in comps:
        values[comp.output.name] = evaluate_compute(
            comp, {t.name: values[t.name] for t in comp.inputs}
        )
    return values[comps[-1].output.name]


class TestTensor:
    def test_properties(self):
        t = Tensor("x", (2, 3, 4))
        assert t.size == 24 and t.nbytes == 96 and t.ndim == 3

    def test_bad_role(self):
        with pytest.raises(ValueError):
            Tensor("x", (2,), role="wat")

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            Tensor("x", (0, 3))


class TestComputeDefValidation:
    def test_axis_extent_mismatch(self):
        out = Tensor("o", (4,))
        with pytest.raises(ValueError, match="extent"):
            ComputeDef("bad", out, [Axis("i", 5)], [], ConstF(0.0))

    def test_unknown_variable(self):
        src = Tensor("s", (4,))
        out = Tensor("o", (4,))
        comp = ComputeDef(
            "bad", out, [Axis("i", 4)], [], Access(src, [Var("zz")])
        )
        with pytest.raises(ValueError, match="unknown variables"):
            comp.validate()

    def test_out_of_bounds_access(self):
        src = Tensor("s", (4,))
        out = Tensor("o", (4,))
        comp = ComputeDef(
            "bad", out, [Axis("i", 4)], [], Access(src, [Var("i") + 1])
        )
        with pytest.raises(ValueError, match="out of bounds"):
            comp.validate()

    def test_reduce_axes_require_op(self):
        src = Tensor("s", (4,))
        out = Tensor("o", (4,))
        with pytest.raises(ValueError, match="without reduce_op"):
            ComputeDef(
                "bad", out, [Axis("i", 4)], [Axis("r", 2)],
                Access(src, [Var("i")]),
            )

    def test_flops_positive(self):
        inp = Tensor("i", (1, 2, 6, 6))
        ker = Tensor("k", (4, 2, 3, 3))
        comp = conv2d(inp, ker)
        assert comp.flops() > 0
        assert comp.iteration_count() == 1 * 4 * 4 * 4 * 2 * 3 * 3


class TestConvolutions:
    @pytest.mark.parametrize("stride,dilation", [(1, 1), (2, 1), (1, 2), (2, 2)])
    def test_conv2d(self, stride, dilation):
        x = rng.standard_normal((2, 3, 12, 12))
        k = rng.standard_normal((4, 3, 3, 3))
        comp = conv2d(Tensor("x", x.shape), Tensor("k", k.shape), stride, dilation)
        got = evaluate_compute(comp, {"x": x, "k": k})
        assert np.allclose(got, conv2d_ref(x, k, stride, dilation))

    def test_grouped(self):
        x = rng.standard_normal((1, 8, 9, 9))
        k = rng.standard_normal((8, 4, 3, 3))
        comp = conv2d(Tensor("x", x.shape), Tensor("k", k.shape), groups=2)
        got = evaluate_compute(comp, {"x": x, "k": k})
        assert np.allclose(got, conv2d_ref(x, k, groups=2))

    def test_group_divisibility_check(self):
        with pytest.raises(ValueError, match="groups"):
            conv2d(Tensor("x", (1, 7, 9, 9)), Tensor("k", (8, 3, 3, 3)), groups=2)

    def test_depthwise(self):
        x = rng.standard_normal((2, 5, 10, 10))
        k = rng.standard_normal((5, 3, 3))
        comp = depthwise_conv2d(Tensor("x", x.shape), Tensor("k", k.shape), 2)
        got = evaluate_compute(comp, {"x": x, "k": k})
        assert np.allclose(got, depthwise_conv2d_ref(x, k, 2))

    def test_conv1d(self):
        x = rng.standard_normal((2, 4, 16))
        k = rng.standard_normal((6, 4, 5))
        comp = conv1d(Tensor("x", x.shape), Tensor("k", k.shape), 2)
        got = evaluate_compute(comp, {"x": x, "k": k})
        assert np.allclose(got, conv1d_ref(x, k, 2))

    def test_conv3d(self):
        x = rng.standard_normal((1, 2, 6, 7, 7))
        k = rng.standard_normal((3, 2, 2, 3, 3))
        comp = conv3d(Tensor("x", x.shape), Tensor("k", k.shape))
        got = evaluate_compute(comp, {"x": x, "k": k})
        assert np.allclose(got, conv3d_ref(x, k))

    def test_window_too_large(self):
        with pytest.raises(ValueError):
            conv2d(Tensor("x", (1, 2, 2, 2)), Tensor("k", (3, 2, 3, 3)))


class TestGemm:
    def test_gemm(self):
        a = rng.standard_normal((7, 5))
        b = rng.standard_normal((5, 9))
        comp = gemm(Tensor("a", a.shape), Tensor("b", b.shape))
        assert np.allclose(evaluate_compute(comp, {"a": a, "b": b}), a @ b)

    def test_batch_gemm(self):
        a = rng.standard_normal((3, 4, 5))
        b = rng.standard_normal((3, 5, 6))
        comp = batch_gemm(Tensor("a", a.shape), Tensor("b", b.shape))
        assert np.allclose(evaluate_compute(comp, {"a": a, "b": b}), a @ b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gemm(Tensor("a", (3, 4)), Tensor("b", (5, 6)))

    def test_dense_tagged(self):
        comp = dense(Tensor("a", (3, 4)), Tensor("b", (4, 6)))
        assert "dense" in comp.tags and comp.is_complex


class TestElementwise:
    def test_relu_sigmoid_tanh_gelu(self):
        x = rng.standard_normal((2, 3, 4, 5))
        t = Tensor("x", x.shape)
        assert np.allclose(
            evaluate_compute(ew.relu(t), {"x": x}), np.maximum(x, 0)
        )
        assert np.allclose(
            evaluate_compute(ew.sigmoid(t), {"x": x}), 1 / (1 + np.exp(-x))
        )
        assert np.allclose(evaluate_compute(ew.tanh(t), {"x": x}), np.tanh(x))
        from math import erf

        gelu_ref = 0.5 * x * (1 + np.vectorize(erf)(x / np.sqrt(2)))
        assert np.allclose(evaluate_compute(ew.gelu(t), {"x": x}), gelu_ref)

    def test_relu6(self):
        x = rng.standard_normal((3, 4)) * 10
        got = evaluate_compute(ew.relu6(Tensor("x", x.shape)), {"x": x})
        assert np.allclose(got, np.clip(x, 0, 6))

    def test_scale_shift(self):
        x = rng.standard_normal((2, 3, 4, 4))
        s = rng.standard_normal(3)
        h = rng.standard_normal(3)
        comp = ew.scale_shift(Tensor("x", x.shape), Tensor("s", (3,)), Tensor("h", (3,)))
        got = evaluate_compute(comp, {"x": x, "s": s, "h": h})
        assert np.allclose(got, x * s[None, :, None, None] + h[None, :, None, None])

    def test_bias_add_variants(self):
        x = rng.standard_normal((2, 3, 4, 4))
        bias = rng.standard_normal(3)
        comp = ew.bias_add_channel(Tensor("x", x.shape), Tensor("b", (3,)))
        got = evaluate_compute(comp, {"x": x, "b": bias})
        assert np.allclose(got, x + bias[None, :, None, None])

        y = rng.standard_normal((5, 7))
        bias2 = rng.standard_normal(7)
        comp2 = ew.bias_add_last(Tensor("y", y.shape), Tensor("b2", (7,)))
        assert np.allclose(
            evaluate_compute(comp2, {"y": y, "b2": bias2}), y + bias2
        )

    def test_add_multiply(self):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((3, 4))
        ta, tb = Tensor("a", a.shape), Tensor("b", b.shape)
        assert np.allclose(
            evaluate_compute(ew.add(ta, tb), {"a": a, "b": b}), a + b
        )
        assert np.allclose(
            evaluate_compute(ew.multiply(ta, tb), {"a": a, "b": b}), a * b
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ew.add(Tensor("a", (3, 4)), Tensor("b", (4, 3)))


class TestDataMovement:
    def test_pad_spatial(self):
        x = rng.standard_normal((1, 2, 5, 5))
        comp = pad_spatial(Tensor("x", x.shape), (2, 1))
        got = evaluate_compute(comp, {"x": x})
        ref = np.pad(x, [(0, 0), (0, 0), (2, 2), (1, 1)])
        assert np.allclose(got, ref)

    def test_zero_stuff(self):
        x = rng.standard_normal((1, 2, 3, 4))
        comp = zero_stuff(Tensor("x", x.shape), 3)
        got = evaluate_compute(comp, {"x": x})
        assert np.allclose(got, zero_stuff_ref(x, 3))

    def test_zero_stuff_stride1_is_copy(self):
        x = rng.standard_normal((1, 2, 3, 3))
        comp = zero_stuff(Tensor("x", x.shape), 1)
        assert np.allclose(evaluate_compute(comp, {"x": x}), x)

    def test_layout_conversion_is_identity(self):
        x = rng.standard_normal((2, 3, 4))
        comp = layout_conversion(Tensor("x", x.shape))
        assert np.allclose(evaluate_compute(comp, {"x": x}), x)
        assert "conversion" in comp.tags and comp.is_elementwise


class TestPooling:
    def test_max_pool(self):
        x = rng.standard_normal((1, 2, 8, 8))
        comp = max_pool2d(Tensor("x", x.shape), 2, 2)
        assert np.allclose(
            evaluate_compute(comp, {"x": x}), max_pool2d_ref(x, 2, 2)
        )

    def test_avg_pool(self):
        x = rng.standard_normal((1, 2, 9, 9))
        comp = avg_pool2d(Tensor("x", x.shape), 3, 2)
        assert np.allclose(
            evaluate_compute(comp, {"x": x}), avg_pool2d_ref(x, 3, 2)
        )

    def test_global_avg_pool(self):
        x = rng.standard_normal((2, 3, 5, 5))
        comp = global_avg_pool(Tensor("x", x.shape))
        assert np.allclose(
            evaluate_compute(comp, {"x": x}), x.mean(axis=(2, 3))
        )


class TestComposites:
    def test_softmax(self):
        x = rng.standard_normal((3, 7))
        comps = softmax_last(Tensor("x", x.shape))
        got = run_chain(comps, {"x": x})
        assert np.allclose(got, softmax_last_ref(x))

    def test_softmax_3d(self):
        x = rng.standard_normal((2, 3, 5))
        comps = softmax_last(Tensor("x", x.shape))
        assert np.allclose(run_chain(comps, {"x": x}), softmax_last_ref(x))

    def test_layer_norm(self):
        x = rng.standard_normal((4, 6))
        g = rng.standard_normal(6)
        beta = rng.standard_normal(6)
        comps = layer_norm_last(
            Tensor("x", x.shape), Tensor("g", (6,)), Tensor("be", (6,))
        )
        got = run_chain(comps, {"x": x, "g": g, "be": beta})
        assert np.allclose(got, layer_norm_last_ref(x, g, beta), atol=1e-6)
