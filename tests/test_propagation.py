"""Layout propagation: Algorithm 1's absorption, replication, constraints."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.layout.layout import Layout
from repro.layout.propagation import PropagationEngine, PropagationState


def pad_conv_relu():
    """padding -> C2D -> bias -> ReLU (the paper's running example)."""
    b = GraphBuilder("g")
    x = b.input((1, 4, 8, 8))
    x = b.conv2d(x, 8, 3)       # inserts a pad node
    x = b.bias_add(x, "channel")
    x = b.relu(x)
    return b.build()


def graph_pieces(graph):
    conv = next(n for n in graph.nodes if "conv" in n.tags)
    pad = graph.producer_of(conv.inputs[0].name)
    return conv, pad


def tiled_layout(shape):
    names = ["N", "O", "H", "W"]
    lay = Layout(shape, names)
    return lay.split("O", [shape[1] // 2, 2]).reorder(["N", "O.0", "H", "W", "O.1"])


class TestAbsorption:
    def test_pad_absorbs_input_layout(self):
        """Fig. 5b: the padding producer yields the new layout directly --
        no conversion operator appears."""
        g = pad_conv_relu()
        conv, pad = graph_pieces(g)
        n_nodes = len(g.nodes)
        engine = PropagationEngine(g)
        in_t = conv.inputs[0]
        lay = Layout(in_t.shape).split(1, [2, 2]).reorder([0, 1, 2, 3, 4])
        engine.assign_operator_layouts(conv, {in_t.name: lay})
        assert len(g.nodes) == n_nodes  # nothing inserted
        assert engine.state.layouts[in_t.name].signature() == lay.signature()
        assert in_t.name in engine.state.locked

    def test_const_weight_relaid_offline(self):
        g = pad_conv_relu()
        conv, _ = graph_pieces(g)
        ker = conv.inputs[1]
        engine = PropagationEngine(g)
        lay = Layout(ker.shape).reorder([2, 3, 1, 0])
        engine.assign_operator_layouts(conv, {ker.name: lay})
        assert not engine.state.conversions
        assert engine.state.layouts[ker.name].signature() == lay.signature()

    def test_locked_input_gets_conversion(self):
        """A graph input (no producer) cannot absorb: Fig. 5a conversion."""
        b = GraphBuilder("g2")
        x = b.input((1, 4, 6, 6))
        x = b.conv2d(x, 8, 1, pad=0)  # no padding node -> conv reads input
        g = b.build()
        conv = next(n for n in g.nodes if "conv" in n.tags)
        in_t = conv.inputs[0]
        engine = PropagationEngine(g)
        lay = Layout(in_t.shape).reorder([0, 2, 3, 1])
        n_nodes = len(g.nodes)
        engine.assign_operator_layouts(conv, {in_t.name: lay})
        assert len(g.nodes) == n_nodes + 1
        assert len(engine.state.conversions) == 1
        conv_node = g.node(engine.state.conversions[0])
        # consumer now reads the converted tensor with the new layout
        assert conv_node.output.name in {t.name for t in conv.inputs}
        assert (
            engine.state.layouts[conv_node.output.name].signature()
            == lay.signature()
        )

    def test_absorption_disabled_forces_conversion(self):
        g = pad_conv_relu()
        conv, _ = graph_pieces(g)
        in_t = conv.inputs[0]
        engine = PropagationEngine(g, enable_absorption=False)
        lay = Layout(in_t.shape).reorder([0, 2, 3, 1])
        engine.assign_operator_layouts(conv, {in_t.name: lay})
        assert len(engine.state.conversions) == 1


class TestReplication:
    def test_output_layout_replicates_downstream(self):
        """Fig. 7: bias and relu reconstruct the same loop nest, so fusion
        alignment survives the conv's output layout change."""
        g = pad_conv_relu()
        conv, _ = graph_pieces(g)
        engine = PropagationEngine(g)
        lay = tiled_layout(conv.output.shape)
        engine.assign_operator_layouts(conv, {conv.output.name: lay})
        bias = g.consumers_of(conv.output.name)[0]
        relu = g.consumers_of(bias.output.name)[0]
        for node in (bias, relu):
            assert (
                engine.state.layouts[node.output.name].signature()
                == lay.signature()
            ), node.name
            assert engine.state.replicated.get(node.output.name) is not None

    def test_replication_disabled_alt_wp(self):
        g = pad_conv_relu()
        conv, _ = graph_pieces(g)
        engine = PropagationEngine(g, enable_replication=False)
        lay = tiled_layout(conv.output.shape)
        engine.assign_operator_layouts(conv, {conv.output.name: lay})
        bias = g.consumers_of(conv.output.name)[0]
        assert bias.output.name not in engine.state.layouts

    def test_stops_at_complex_consumer(self):
        """Constraint 2 / line 10: propagation crosses simple ops but stops
        silently at the next complex operator."""
        b = GraphBuilder("g3")
        x = b.input((1, 4, 10, 10))
        x = b.conv2d(x, 8, 3, pad=0)
        x = b.relu(x)
        y = b.conv2d(x, 8, 1, pad=0)
        g = b.build()
        convs = [n for n in g.nodes if "conv" in n.tags]
        relu = next(n for n in g.nodes if n.name.startswith("relu"))
        engine = PropagationEngine(g)
        lay = tiled_layout(convs[0].output.shape)
        engine.assign_operator_layouts(convs[0], {convs[0].output.name: lay})
        assert engine.state.layouts[relu.output.name].signature() == lay.signature()
        assert convs[1].output.name not in engine.state.layouts
        assert not engine.state.conversions

    def test_nontrivial_advanced_not_replicated(self):
        """Constraint 1: overlapped unfold layouts never propagate."""
        g = pad_conv_relu()
        conv, _ = graph_pieces(g)
        engine = PropagationEngine(g)
        shape = conv.output.shape
        lay = Layout(shape, ["N", "O", "H", "W"]).unfold("H", 4, 2)
        engine.assign_operator_layouts(conv, {conv.output.name: lay})
        bias = g.consumers_of(conv.output.name)[0]
        assert bias.output.name not in engine.state.layouts

    def test_shape_mismatch_not_replicated(self):
        """Constraint 3: primitive parameters are shape-dependent."""
        b = GraphBuilder("g4")
        x = b.input((1, 4, 10, 10))
        x = b.conv2d(x, 8, 3, pad=0)
        x = b.max_pool2d(x, 2, 2)  # not elementwise, different shape
        g = b.build()
        conv = next(n for n in g.nodes if "conv" in n.tags)
        pool = g.consumers_of(conv.output.name)[0]
        engine = PropagationEngine(g)
        lay = tiled_layout(conv.output.shape)
        engine.assign_operator_layouts(conv, {conv.output.name: lay})
        assert pool.output.name not in engine.state.layouts

    def test_identity_layout_not_replicated(self):
        g = pad_conv_relu()
        conv, _ = graph_pieces(g)
        engine = PropagationEngine(g)
        engine.assign_operator_layouts(
            conv, {conv.output.name: Layout(conv.output.shape)}
        )
        bias = g.consumers_of(conv.output.name)[0]
        assert bias.output.name not in engine.state.replicated


class TestConflicts:
    def test_two_convs_same_layout_no_conflict(self):
        g = pad_conv_relu()
        conv, _ = graph_pieces(g)
        engine = PropagationEngine(g)
        lay = tiled_layout(conv.output.shape)
        engine.assign_operator_layouts(conv, {conv.output.name: lay})
        # assigning the same signature again is a no-op
        engine.assign_operator_layouts(
            conv, {conv.output.name: lay.replay_onto(Layout(conv.output.shape))}
        )

    def test_conflicting_output_layout_raises(self):
        g = pad_conv_relu()
        conv, _ = graph_pieces(g)
        engine = PropagationEngine(g)
        engine.assign_operator_layouts(
            conv, {conv.output.name: tiled_layout(conv.output.shape)}
        )
        other = Layout(conv.output.shape).reorder([0, 2, 3, 1])
        with pytest.raises(ValueError, match="locked"):
            engine.assign_operator_layouts(conv, {conv.output.name: other})
