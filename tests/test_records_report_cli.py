"""Tuning-record serialization, the report module, the CLI, and the GA."""

import json
import math

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.graph.builder import GraphBuilder
from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.loops.schedule import LoopSchedule
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.pipeline import CompileOptions, compile_graph
from repro.report import full_report, layout_report, stage_cost_report, tuning_report
from repro.tuning.baselines import tune_alt
from repro.tuning.genetic import tune_genetic
from repro.tuning.records import (
    RecordError,
    RecordStore,
    TuneRecord,
    apply_record,
    layout_from_dict,
    layout_to_dict,
    record_from_result,
    schedule_from_dict,
    schedule_to_dict,
)

MACHINE = get_machine("intel_cpu")


def small_conv(name="c"):
    inp = Tensor(f"{name}.i", (1, 8, 12, 12))
    ker = Tensor(f"{name}.k", (8, 8, 3, 3))
    return conv2d(inp, ker, name=name)


class TestRecords:
    def test_layout_roundtrip(self):
        lay = (
            Layout((4, 8, 6), ["A", "B", "C"])
            .split("B", [2, 4])
            .reorder(["A", "B.0", "C", "B.1"])
            .pad("C", after=2)
        )
        back = layout_from_dict(layout_to_dict(lay))
        assert back.signature() == lay.signature()
        assert back.physical_shape() == lay.physical_shape()

    def test_unfold_and_store_at_roundtrip(self):
        lay = Layout((10,), ["H"]).unfold("H", 6, 4)
        back = layout_from_dict(layout_to_dict(lay))
        assert back.signature() == lay.signature()
        lay2 = Layout((8,)).store_at("W", 0)
        back2 = layout_from_dict(layout_to_dict(lay2))
        assert back2.store_at_binding().host == "W"

    def test_schedule_roundtrip(self):
        sched = (
            LoopSchedule()
            .split("s2", [3, 2])
            .reorder(["s0", "s1", "s2.0", "ri", "rh", "rw", "s2.1", "s3"])
            .parallel("s0")
            .vectorize("s3")
            .unroll("s2.1")
        )
        back = schedule_from_dict(schedule_to_dict(sched))
        assert back.signature() == sched.signature()

    def test_record_json_roundtrip_and_apply(self):
        comp = small_conv("rc")
        res = tune_alt(comp, MACHINE, budget=48, seed=0)
        record = record_from_result(comp, MACHINE.name, res)
        back = TuneRecord.from_json(record.to_json())
        assert back.task == record.task
        layouts, sched = apply_record(back, small_conv("rc2"))
        # re-applied layouts reproduce the recorded physical shapes
        for name, lay in layouts.items():
            assert any(
                tuple(d["shape"]) == lay.logical_shape
                for d in record.layouts.values()
            )
        # and the result is measurable at the recorded latency
        from repro.tuning.task import TuningTask

        task = TuningTask(small_conv("rc3"), MACHINE)
        relayouts, resched = apply_record(back, task.comp)
        lat = task.measure(relayouts, resched)
        assert lat == pytest.approx(res.best_latency, rel=1e-9)

    def test_apply_to_wrong_task_rejected(self):
        comp = small_conv("rw")
        res = tune_alt(comp, MACHINE, budget=32, seed=0)
        record = record_from_result(comp, MACHINE.name, res)
        other = conv2d(
            Tensor("oi", (1, 4, 12, 12)), Tensor("ok", (4, 4, 3, 3)), name="other"
        )
        with pytest.raises(RecordError):
            apply_record(record, other)

    def test_store_keeps_best(self, tmp_path):
        comp = small_conv("rs")
        r1 = record_from_result(comp, "m", tune_alt(comp, MACHINE, budget=24, seed=0))
        r2 = TuneRecord(r1.task, "m", r1.latency_s / 2, r1.layouts, r1.schedule)
        store = RecordStore()
        store.add(r1)
        store.add(r2)
        assert len(store) == 1
        assert store.lookup(comp, "m").latency_s == r2.latency_s
        path = tmp_path / "records.jsonl"
        store.dump(str(path))
        loaded = RecordStore.load(str(path))
        assert len(loaded) == 1


class TestGenetic:
    def test_ga_finds_finite_result(self):
        comp = small_conv("g")
        res = tune_genetic(comp, MACHINE, budget=64, seed=0)
        assert math.isfinite(res.best_latency)
        assert res.measurements <= 64

    def test_ga_respects_budget(self):
        comp = small_conv("g2")
        res = tune_genetic(comp, MACHINE, budget=20, seed=1)
        assert res.measurements <= 20


class TestReport:
    @pytest.fixture(scope="class")
    def model(self):
        b = GraphBuilder("report_net")
        x = b.input((1, 8, 14, 14))
        x = b.conv_bn_act(x, 8, 3)
        x = b.global_avg_pool(x)
        graph = b.build()
        return compile_graph(
            graph, MACHINE, CompileOptions(mode="alt", total_budget=64, seed=0)
        )

    def test_layout_report(self, model):
        text = layout_report(model)
        assert "layouts for report_net" in text

    def test_stage_cost_report(self, model):
        text = stage_cost_report(model)
        assert "total" in text and "conv2d" in text

    def test_tuning_report(self, model):
        text = tuning_report(model)
        assert "measurements" in text

    def test_full_report(self, model):
        text = full_report(model)
        assert text.count("\n") > 5


class TestCLI:
    def test_machines(self, capsys):
        assert cli_main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "intel_cpu" in out and "nvidia_gpu" in out

    def test_models(self, capsys):
        assert cli_main(["models"]) == 0
        assert "resnet18" in capsys.readouterr().out

    def test_tune(self, capsys):
        rc = cli_main(["tune", "gmm", "--budget", "24", "--size", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best latency" in out

    def test_compile(self, capsys):
        rc = cli_main([
            "compile", "resnet18", "--budget", "48", "--image", "32",
            "--width", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stage costs" in out

    def test_unknown_model(self):
        with pytest.raises(SystemExit):
            cli_main(["compile", "alexnet"])


class TestInversePrimitives:
    def test_fold_undoes_unfold(self):
        base = Layout((10,), ["H"])
        unfolded = base.unfold("H", 6, 4)
        folded = unfolded.fold()
        assert folded.physical_shape() == base.physical_shape()
        assert folded.signature() == base.signature()

    def test_unpad_undoes_pad(self):
        lay = Layout((8,), ["A"]).pad("A", after=4)
        assert lay.unpad().physical_shape() == (8,)

    def test_decouple_at(self):
        lay = Layout((8,)).store_at("W", 0)
        assert lay.decouple_at().store_at_binding() is None

    def test_wrong_inverse_rejected(self):
        from repro.layout.primitives import LayoutError

        lay = Layout((8,), ["A"]).split("A", [2, 4])
        with pytest.raises(LayoutError):
            lay.fold()
        with pytest.raises(LayoutError):
            Layout((8,)).unpad()

    def test_inverse_preserves_earlier_chain(self):
        lay = Layout((8, 10), ["A", "B"]).split("A", [2, 4]).pad("B", after=2)
        back = lay.unpad()
        assert back.physical_shape() == (2, 4, 10)


class TestRecordReuseInCompile:
    def test_compile_reuses_records(self):
        store = RecordStore()

        def net():
            b = GraphBuilder("reuse_net")
            x = b.input((1, 8, 14, 14))
            x = b.conv_bn_act(x, 8, 3)
            return b.build()

        opts = CompileOptions(mode="alt", total_budget=64, seed=0, records=store)
        first = compile_graph(net(), MACHINE, opts)
        assert len(store) >= 1
        opts2 = CompileOptions(mode="alt", total_budget=64, seed=0, records=store)
        second = compile_graph(net(), MACHINE, opts2)
        # the second compile resolves every conv task from the cache
        assert all(r.measurements == 0 for r in second.task_results.values())
        assert second.latency_s == pytest.approx(first.latency_s, rel=0.2)
