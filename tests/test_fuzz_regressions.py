"""Regression pins from the first fuzz sweeps.

Every entry here is a bug the generated-workload fuzzer (or bringing it
up) actually caught, reduced to its minimal replayable spec.  The specs
are pinned as literal dicts -- NOT regenerated from seeds -- so a future
generator change cannot silently rewrite what these tests assert.

The initial 500-seed numerics+propagation sweep and 200-seed tuned sweep
came back clean after these fixes; the sentinel seeds at the bottom keep
a cross-family slice of that sweep permanently in tier 1.
"""

import pytest

from repro.testing import GraphSpec, generate_spec, run_oracle
from repro.testing.oracle import (
    OracleOptions,
    _tiled_layout,
    check_numerics,
    check_propagation,
)

FAST = OracleOptions(compile_budget=16, tune_budget=24)


def test_global_avg_pool_rank_collapse():
    """Found by the generator's first image-family sweep: the shape oracle
    predicted a 4-D (N, C, 1, 1) output for global_avg_pool while the real
    op emits 2-D (N, C).  Follow-on ops drawn for the phantom 4-D shape
    (channel bias, depthwise convs) produced specs that crashed at build
    time instead of fuzzing anything.  The generator now tracks the rank
    collapse and draws last-dim elementwise ops after it."""
    spec = GraphSpec(seed=42, family="image", input_shape=(1, 6, 8, 8), ops=[
        {"kind": "conv2d", "out_channels": 5, "kernel": 3, "stride": 1,
         "pad": 1, "groups": 1, "dilation": 1},
        {"kind": "global_avg_pool"},
        {"kind": "bias", "dim": "last"},
        {"kind": "act", "fn": "gelu"},
    ])
    graph = spec.build()
    (head,) = [n for n in graph.nodes if "pool" in n.tags]
    assert len(head.output.shape) == 2
    assert check_numerics(spec, FAST) == []


def test_rank_collapsed_specs_generate_valid_followups():
    """Seeds whose image chain passes through global_avg_pool must keep
    generating buildable ops for the 2-D tail, never 4-D-only ones."""
    hit = 0
    for seed in range(200):
        spec = generate_spec(seed, families=["image"])
        if any(op["kind"] == "global_avg_pool" for op in spec.ops[:-1]):
            hit += 1
            spec.build()  # raises SpecError on a bad follow-up draw
    assert hit > 0  # the pattern actually occurs in the pinned range


def test_ops_namespace_does_not_shadow_gemm_submodule():
    """Creating the flat ``repro.ops`` namespace re-exported the ``gemm``
    *function*, shadowing the ``repro.ops.gemm`` submodule that the graph
    builder imports (``from ..ops import gemm as gemm_ops``) -- every
    dense/batch_gemm build then died with ``'function' object has no
    attribute 'dense'``.  The function stays out of the flat namespace."""
    import types

    from repro import ops
    from repro.ops import gemm

    assert isinstance(gemm, types.ModuleType)
    assert callable(gemm.dense) and callable(gemm.gemm)
    assert not hasattr(ops, "gemm") or isinstance(ops.gemm, types.ModuleType)
    # the builder path that tripped the original crash
    spec = GraphSpec(seed=7, family="matrix", input_shape=(4, 6), ops=[
        {"kind": "dense", "units": 8, "bias": True, "act": None},
    ])
    spec.build()


def test_tiled_layout_probe_on_prime_shapes():
    """The propagation probe addressed dims through ``Layout.dims`` (Dim
    objects whose str is 'name:extent'), so every split raised LayoutError
    and the check silently probed nothing.  It now uses ``dim_names()``;
    prime-heavy shapes must still yield a usable non-identity layout via
    the reorder fallback."""
    for shape in [(7, 11, 13), (1, 5, 7, 7), (4, 6, 9, 9), (3, 5)]:
        lay = _tiled_layout(shape)
        assert lay is not None, shape
        assert lay.signature() != ""  # non-identity transformation applied
        import numpy as np

        arr = np.arange(int(np.prod(shape)), dtype=np.float64).reshape(shape)
        assert np.array_equal(lay.unmaterialize(lay.materialize(arr)), arr)
    assert _tiled_layout((13,)) is None  # 1-D prime: nothing to probe


def test_propagation_probe_actually_fires():
    """Companion pin: on a conv + elementwise-chain spec the propagation
    check must evaluate at least one anchor (a silent no-op probe was the
    failure mode of the Layout.dims bug)."""
    spec = GraphSpec(seed=9, family="image", input_shape=(1, 4, 8, 8), ops=[
        {"kind": "conv2d", "out_channels": 4, "kernel": 3, "stride": 1,
         "pad": 1, "groups": 1, "dilation": 1},
        {"kind": "act", "fn": "relu"},
        {"kind": "scale", "factor": 0.5},
    ])
    graph = spec.build()
    anchor = graph.complex_nodes()[0]
    assert _tiled_layout(anchor.output.shape) is not None
    assert check_propagation(spec, FAST) == []


@pytest.mark.parametrize("seed", [1, 4, 12, 19, 33, 57, 88, 131])
def test_sweep_sentinels_numerics_propagation(seed):
    """A cross-family slice of the clean 500-seed sweep, pinned forever."""
    report = run_oracle(generate_spec(seed),
                        checks=("numerics", "propagation"), options=FAST)
    assert report.ok, [f.to_dict() for f in report.failures]


@pytest.mark.slow
@pytest.mark.parametrize("seed", [6, 27, 64])
def test_sweep_sentinels_tuned(seed):
    report = run_oracle(generate_spec(seed), checks=("tuned",),
                        options=OracleOptions(tune_budget=48))
    assert report.ok, [f.to_dict() for f in report.failures]
